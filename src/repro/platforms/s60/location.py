"""JSR-179 style location stack.

The shape and the *gaps* both matter:

* ``LocationProvider.get_instance(criteria)`` selects a provider by
  accuracy/response-time criteria; an unsatisfiable request returns
  ``None`` and an out-of-service platform raises the checked
  :class:`~repro.platforms.s60.exceptions.LocationException`.
* ``add_proximity_listener(listener, coordinates, radius)`` is **one-shot**
  (removed after the first enter event), has **no exit events** and **no
  expiration** — Figure 2(b) of the paper shows the application-side code
  needed to paper over exactly these gaps, and the S60 Location M-Proxy
  moves that code into the binding.
* Listener-style updates use ``set_location_listener(listener, interval,
  timeout, max_age)`` with the magic ``-1`` defaults.

Java mapping: ``proximityEvent`` → :meth:`ProximityListener.proximity_event`,
``locationUpdated`` → :meth:`LocationListener.location_updated`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING

from repro.device.gps import GpsFix, TOPIC_FIX
from repro.platforms.s60.exceptions import (
    IllegalArgumentException,
    LocationException,
    NullPointerException,
    SecurityException,
)
from repro.util.geo import haversine_m

if TYPE_CHECKING:  # pragma: no cover
    from repro.platforms.s60.platform import S60Platform

#: MIDP permission string guarding the location API.
PERMISSION_LOCATION = "javax.microedition.location.Location"

#: The accuracy (metres) the simulated GPS provider can satisfy.
PROVIDER_BEST_ACCURACY_M = 10.0


class Coordinates:
    """JSR-179 coordinate triple with Java-style accessors."""

    def __init__(self, latitude: float, longitude: float, altitude: float = 0.0) -> None:
        if not -90.0 <= latitude <= 90.0:
            raise IllegalArgumentException(f"latitude {latitude} out of range")
        if not -180.0 <= longitude <= 180.0:
            raise IllegalArgumentException(f"longitude {longitude} out of range")
        self._latitude = latitude
        self._longitude = longitude
        self._altitude = altitude

    def get_latitude(self) -> float:
        return self._latitude

    def get_longitude(self) -> float:
        return self._longitude

    def get_altitude(self) -> float:
        return self._altitude

    def distance(self, other: "Coordinates") -> float:
        """Great-circle distance in metres (Java: ``Coordinates.distance``)."""
        return haversine_m(
            self._latitude, self._longitude, other.get_latitude(), other.get_longitude()
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Coordinates({self._latitude:.6f}, {self._longitude:.6f})"


class Criteria:
    """Provider-selection constraints (JSR-179 ``Criteria``).

    The paper's binding plane lists ``preferredResponseTime`` as an
    S60-specific property with a default and allowed values — it enters the
    platform through this object.
    """

    #: Java: Criteria.NO_REQUIREMENT
    NO_REQUIREMENT = 0

    #: Java: Criteria.POWER_USAGE_*
    POWER_USAGE_LOW = 1
    POWER_USAGE_MEDIUM = 2
    POWER_USAGE_HIGH = 3

    def __init__(self) -> None:
        self._horizontal_accuracy = self.NO_REQUIREMENT
        self._vertical_accuracy = self.NO_REQUIREMENT
        self._preferred_response_time = self.NO_REQUIREMENT
        self._preferred_power_consumption = self.NO_REQUIREMENT

    def set_horizontal_accuracy(self, accuracy_m: int) -> None:
        if accuracy_m < 0:
            raise IllegalArgumentException("accuracy cannot be negative")
        self._horizontal_accuracy = accuracy_m

    def get_horizontal_accuracy(self) -> int:
        return self._horizontal_accuracy

    def set_vertical_accuracy(self, accuracy_m: int) -> None:
        if accuracy_m < 0:
            raise IllegalArgumentException("accuracy cannot be negative")
        self._vertical_accuracy = accuracy_m

    def get_vertical_accuracy(self) -> int:
        return self._vertical_accuracy

    def set_preferred_response_time(self, time_ms: int) -> None:
        if time_ms < 0:
            raise IllegalArgumentException("response time cannot be negative")
        self._preferred_response_time = time_ms

    def get_preferred_response_time(self) -> int:
        return self._preferred_response_time

    def set_preferred_power_consumption(self, level: int) -> None:
        if level not in (
            self.NO_REQUIREMENT,
            self.POWER_USAGE_LOW,
            self.POWER_USAGE_MEDIUM,
            self.POWER_USAGE_HIGH,
        ):
            raise IllegalArgumentException(f"bad power consumption level {level}")
        self._preferred_power_consumption = level

    def get_preferred_power_consumption(self) -> int:
        return self._preferred_power_consumption


class S60Location:
    """A JSR-179 ``Location`` result object."""

    def __init__(
        self,
        coordinates: Coordinates,
        timestamp_ms: float,
        speed_mps: float = 0.0,
        valid: bool = True,
    ) -> None:
        self._coordinates = coordinates
        self._timestamp_ms = timestamp_ms
        self._speed_mps = speed_mps
        self._valid = valid

    def get_qualified_coordinates(self) -> Coordinates:
        return self._coordinates

    def get_timestamp(self) -> float:
        return self._timestamp_ms

    def get_speed(self) -> float:
        return self._speed_mps

    def is_valid(self) -> bool:
        return self._valid

    @classmethod
    def from_fix(cls, fix: GpsFix) -> "S60Location":
        return cls(
            Coordinates(fix.point.latitude, fix.point.longitude, fix.point.altitude),
            timestamp_ms=fix.timestamp_ms,
            speed_mps=fix.speed_mps,
        )


class ProximityListener:
    """JSR-179 proximity callback interface (abstract)."""

    def proximity_event(self, coordinates: Coordinates, location: S60Location) -> None:
        """Called **once** when the terminal enters the registered region."""
        raise NotImplementedError

    def monitoring_state_changed(self, is_monitoring_active: bool) -> None:
        """Called when proximity monitoring is activated/deactivated."""


class LocationListener:
    """JSR-179 periodic-update callback interface (abstract)."""

    def location_updated(self, provider: "LocationProvider", location: S60Location) -> None:
        raise NotImplementedError

    def provider_state_changed(self, provider: "LocationProvider", new_state: int) -> None:
        """Called on provider availability changes."""


@dataclass
class _ProximityRegistration:
    listener: ProximityListener
    coordinates: Coordinates
    radius_m: float
    fired: bool = False


@dataclass
class _ListenerRegistration:
    listener: LocationListener
    interval_ms: float


class LocationProvider:
    """A selected location provider instance.

    Instances come from :meth:`LocationProviderStatics.get_instance`, never
    direct construction — matching the J2ME factory idiom.
    """

    #: Java: LocationProvider.AVAILABLE / OUT_OF_SERVICE
    AVAILABLE = 1
    TEMPORARILY_UNAVAILABLE = 2
    OUT_OF_SERVICE = 3

    def __init__(self, statics: "LocationProviderStatics", criteria: Optional[Criteria]) -> None:
        self._statics = statics
        self._criteria = criteria
        self._listener_reg: Optional[_ListenerRegistration] = None
        self._listener_task = None

    @property
    def criteria(self) -> Optional[Criteria]:
        return self._criteria

    def get_state(self) -> int:
        return (
            self.OUT_OF_SERVICE
            if self._statics.out_of_service
            else self.AVAILABLE
        )

    def get_location(self, timeout_s: int) -> S60Location:
        """Blocking position read (Java: ``getLocation(int timeout)``).

        Charges native latency; raises ``LocationException`` when the
        provider is out of service or the (virtual) fix would exceed
        ``timeout_s``.
        """
        self._statics.check_permission("getLocation")
        if timeout_s == 0 or timeout_s < -1:
            raise IllegalArgumentException(f"bad timeout {timeout_s}")
        if self._statics.out_of_service:
            raise LocationException("provider out of service")
        platform = self._statics.platform
        charged_ms = platform.charge_native("s60.getLocation")
        if timeout_s != -1 and charged_ms > timeout_s * 1000.0:
            raise LocationException(f"timed out after {timeout_s}s")
        self._statics.ensure_gps_powered()
        fix = platform.device.gps.last_fix
        if fix is not None:
            return S60Location.from_fix(fix)
        point = platform.device.gps.ground_truth()
        return S60Location(
            Coordinates(point.latitude, point.longitude, point.altitude),
            timestamp_ms=platform.clock.now_ms,
        )

    def set_location_listener(
        self,
        listener: Optional[LocationListener],
        interval_s: int,
        timeout_s: int,
        max_age_s: int,
    ) -> None:
        """Register (or with ``None`` clear) a periodic update listener.

        The ``-1`` magic values mean "platform default" as in JSR-179.
        """
        self._statics.check_permission("setLocationListener")
        if self._listener_task is not None:
            self._listener_task.cancel()
            self._listener_task = None
        self._listener_reg = None
        if listener is None:
            return
        platform = self._statics.platform
        interval_ms = 5_000.0 if interval_s == -1 else max(1.0, interval_s * 1000.0)
        self._listener_reg = _ListenerRegistration(listener, interval_ms)
        self._statics.ensure_gps_powered()

        def poll() -> None:
            fix = platform.device.gps.last_fix
            if fix is not None and self._listener_reg is not None:
                self._listener_reg.listener.location_updated(
                    self, S60Location.from_fix(fix)
                )

        self._listener_task = platform.scheduler.call_every(
            interval_ms, poll, name="s60-location-listener"
        )


class LocationProviderStatics:
    """The static side of JSR-179's ``LocationProvider`` class.

    Accessed as ``platform.location_provider`` (Python has no class statics
    bound to a platform instance).  Holds the platform-wide proximity
    registration table.
    """

    def __init__(self, platform: "S60Platform") -> None:
        self.platform = platform
        self.out_of_service = False
        self._proximity: List[_ProximityRegistration] = []
        self._gps_subscribed = False
        self._suite_name: Optional[str] = None

    def bind_suite(self, suite_name: str) -> None:
        """Attribute subsequent permission checks to a MIDlet suite."""
        self._suite_name = suite_name

    def check_permission(self, what: str) -> None:
        if self._suite_name is None:
            return  # unbound: platform-internal use
        if not self.platform.suite_has_permission(self._suite_name, PERMISSION_LOCATION):
            raise SecurityException(
                f"suite {self._suite_name!r} lacks {PERMISSION_LOCATION} for {what}"
            )

    # -- Java: LocationProvider.getInstance(criteria) -------------------------

    def get_instance(self, criteria: Optional[Criteria]) -> Optional[LocationProvider]:
        """Select a provider for ``criteria``.

        Returns ``None`` when no provider can meet the criteria (JSR-179
        contract) and raises ``LocationException`` when all providers are
        out of service.
        """
        if self.out_of_service:
            raise LocationException("all location providers out of service")
        if criteria is not None:
            accuracy = criteria.get_horizontal_accuracy()
            if accuracy != Criteria.NO_REQUIREMENT and accuracy < PROVIDER_BEST_ACCURACY_M:
                return None  # unsatisfiable precision request
        return LocationProvider(self, criteria)

    # -- Java: LocationProvider.addProximityListener(...) ----------------------

    def add_proximity_listener(
        self,
        listener: ProximityListener,
        coordinates: Coordinates,
        proximity_radius: float,
    ) -> None:
        """Register a **one-shot** proximity listener.

        Fires ``proximity_event`` exactly once, on entry, then the platform
        auto-removes the registration.  No exit events, no expiration.
        """
        self.check_permission("addProximityListener")
        if listener is None or coordinates is None:
            raise NullPointerException("listener and coordinates are required")
        if proximity_radius <= 0.0:
            raise IllegalArgumentException(
                f"radius must be positive, got {proximity_radius}"
            )
        self.platform.charge_native("s60.addProximityListener")
        self._proximity.append(
            _ProximityRegistration(listener, coordinates, proximity_radius)
        )
        self.ensure_gps_powered()
        listener.monitoring_state_changed(True)

    def remove_proximity_listener(self, listener: ProximityListener) -> None:
        """Remove every registration of ``listener``."""
        removed = [r for r in self._proximity if r.listener is listener]
        self._proximity = [r for r in self._proximity if r.listener is not listener]
        for registration in removed:
            registration.listener.monitoring_state_changed(False)

    @property
    def proximity_registration_count(self) -> int:
        return len(self._proximity)

    # -- internals ---------------------------------------------------------------

    def ensure_gps_powered(self) -> None:
        gps = self.platform.device.gps
        if not gps.powered:
            gps.power_on()
        if not self._gps_subscribed:
            self.platform.device.bus.subscribe(TOPIC_FIX, self._on_fix)
            self._gps_subscribed = True

    def _on_fix(self, topic: str, fix: GpsFix) -> None:
        location = S60Location.from_fix(fix)
        for registration in list(self._proximity):
            distance = haversine_m(
                fix.point.latitude,
                fix.point.longitude,
                registration.coordinates.get_latitude(),
                registration.coordinates.get_longitude(),
            )
            if distance <= registration.radius_m and not registration.fired:
                registration.fired = True
                # JSR-179: one-shot — remove before delivering.
                self._proximity.remove(registration)
                registration.listener.proximity_event(
                    registration.coordinates, location
                )
