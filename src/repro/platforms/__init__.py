"""Platform middleware substrates.

Three deliberately heterogeneous platform stacks, mirroring the paper's
implementation targets:

``repro.platforms.android``
    Android-like: Context + system services, Intent/IntentReceiver
    broadcast callbacks, Activity lifecycle, ``SecurityException``-style
    permission failures, and an SDK-version switch (m5-rc15 vs 1.0).
``repro.platforms.s60``
    Nokia S60 / J2ME-like: MIDlet lifecycle, Criteria-based
    ``LocationProvider`` acquisition, one-shot ``ProximityListener``,
    checked ``LocationException``, single-jar MIDlet-suite packaging.
``repro.platforms.webview``
    Android WebView-like: a JavaScript object domain bridged to Java via
    ``add_javascript_interface`` with the real constraint that callbacks
    cannot cross the bridge.

The disagreement between these APIs is the phenomenon the paper studies;
it is fixed behaviour under test, not an accident to be cleaned up.
"""

from repro.platforms.base import PlatformBase

__all__ = ["PlatformBase"]
