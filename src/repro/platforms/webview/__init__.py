"""Android WebView-like platform substrate.

Models the piece of WebView the paper's JavaScript proxies are built on:
``add_javascript_interface`` injects a Java object into the page's global
namespace, and JS code may call its methods — **but only primitive values
cross the bridge in either direction**.  JS functions can never be handed
to Java, so asynchronous results must flow through a Java-side
:class:`NotificationTable` that the JS side polls on a timer.  Java
exceptions do not propagate as JS exceptions either; they surface as
:class:`JsBridgeError` carrying the Java class name (MobiVine's wrappers
turn them into stable error codes instead).

A WebView runs *on top of* an Android platform: the Java side of every
bridge object ultimately calls the Android substrate.
"""

from repro.platforms.webview.exceptions import (
    BridgeMarshalError,
    JsBridgeError,
    JsError,
)
from repro.platforms.webview.notifications import Notification, NotificationTable
from repro.platforms.webview.bridge import JavascriptBridge, JsBridgeObject
from repro.platforms.webview.webview import JsWindow, WebView
from repro.platforms.webview.platform import WebViewPlatform

__all__ = [
    "BridgeMarshalError",
    "JavascriptBridge",
    "JsBridgeError",
    "JsBridgeObject",
    "JsError",
    "JsWindow",
    "Notification",
    "NotificationTable",
    "WebView",
    "WebViewPlatform",
]
