"""The JS ↔ Java bridge with WebView marshalling rules.

``add_javascript_interface(obj, "SmsWrapperFactory")`` exposes a Java-side
object to the page.  JS calls are mediated by :class:`JsBridgeObject`:

* only ``str``/``int``/``float``/``bool``/``None`` arguments may cross;
* only those types may be returned;
* a Java exception surfaces as an untyped :class:`JsBridgeError`;
* every crossing charges the platform's bridge latency for that method.

These rules are the load-bearing constraint behind the paper's
Notification Table design — the substrate enforces them instead of
trusting implementers to remember.
"""

from __future__ import annotations

from typing import Any, Dict, TYPE_CHECKING

from repro.platforms.webview.exceptions import BridgeMarshalError, JsBridgeError

if TYPE_CHECKING:  # pragma: no cover
    from repro.platforms.webview.platform import WebViewPlatform

#: Types allowed to cross the bridge in either direction.
_BRIDGE_PRIMITIVES = (str, int, float, bool, type(None))


def _check_crossing(value: Any, direction: str, method: str) -> None:
    if not isinstance(value, _BRIDGE_PRIMITIVES):
        raise BridgeMarshalError(
            f"{type(value).__name__} cannot cross the JS/Java bridge "
            f"({direction} {method!r}); only primitives may cross"
        )


class _BridgeMethod:
    """A callable JS stub for one Java method."""

    def __init__(
        self,
        platform: "WebViewPlatform",
        java_object: Any,
        method_name: str,
    ) -> None:
        self._platform = platform
        self._java_object = java_object
        self._method_name = method_name

    def __call__(self, *args: Any) -> Any:
        tracer = self._platform.device.obs.tracer
        if not tracer.enabled:
            return self._cross(args)
        with tracer.span(
            f"bridge:{self._method_name}", direction="js->java"
        ):
            return self._cross(args)

    def _cross(self, args: tuple) -> Any:
        for arg in args:
            _check_crossing(arg, "into", self._method_name)
        self._platform.charge_bridge(self._method_name)
        faults = getattr(self._platform.device, "faults", None)
        if faults is not None and faults.active:
            if faults.decide("webview.bridge") is not None:
                # The crossing itself is lost: JS sees an untyped bridge
                # error, exactly as a real WebView surfaces a dead bridge.
                raise JsBridgeError(
                    "BridgeFault",
                    f"injected fault: bridge crossing {self._method_name!r} lost",
                )
        java_method = getattr(self._java_object, self._method_name)
        try:
            result = java_method(*args)
        except (BridgeMarshalError, JsBridgeError):
            raise
        except Exception as exc:  # Java exception escaping to JS: untyped
            raise JsBridgeError(type(exc).__name__, str(exc)) from exc
        _check_crossing(result, "out of", self._method_name)
        return result


class JsBridgeObject:
    """The JS-visible face of an injected Java object.

    Attribute access yields bridge-method stubs; there is no property
    access across the bridge (matching ``addJavascriptInterface``, which
    exposes methods only).
    """

    def __init__(self, platform: "WebViewPlatform", java_object: Any, js_name: str) -> None:
        self._platform = platform
        self._java_object = java_object
        self._js_name = js_name

    def __getattr__(self, name: str) -> _BridgeMethod:
        if name.startswith("_"):
            raise AttributeError(name)
        target = getattr(self._java_object, name, None)
        if not callable(target):
            raise BridgeMarshalError(
                f"{self._js_name}.{name} is not a bridged method "
                "(only public Java methods are exposed)"
            )
        return _BridgeMethod(self._platform, self._java_object, name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"JsBridgeObject({self._js_name!r})"


class JavascriptBridge:
    """The per-WebView registry of injected Java objects."""

    def __init__(self, platform: "WebViewPlatform") -> None:
        self._platform = platform
        self._objects: Dict[str, JsBridgeObject] = {}

    def add_javascript_interface(self, java_object: Any, js_name: str) -> None:
        """Java API: expose ``java_object`` to the page as ``js_name``."""
        if not js_name or not js_name.isidentifier():
            raise ValueError(f"bad JS global name {js_name!r}")
        self._objects[js_name] = JsBridgeObject(self._platform, java_object, js_name)

    def lookup(self, js_name: str) -> JsBridgeObject:
        """JS side: resolve an injected global."""
        try:
            return self._objects[js_name]
        except KeyError:
            raise JsBridgeError(
                "ReferenceError", f"{js_name} is not defined"
            ) from None

    def names(self) -> list:
        return sorted(self._objects)
