"""WebView/JS-domain exception set."""


class JsError(Exception):
    """Root of errors raised in the JavaScript domain."""


class BridgeMarshalError(JsError):
    """A value that cannot cross the JS/Java bridge was passed or returned.

    Raising (rather than silently dropping, as real WebViews sometimes do)
    makes the constraint explicit — the constraint that motivates the
    paper's Notification Table + polling design.
    """


class JsBridgeError(JsError):
    """A Java exception escaped during a bridge call.

    JS code only sees the Java exception's class name and message as
    strings; it cannot catch a typed Java exception.  The MobiVine wrapper
    classes convert Java exceptions into stable numeric error codes
    *before* they reach the bridge, precisely to avoid this.
    """

    def __init__(self, java_class: str, message: str) -> None:
        super().__init__(f"{java_class}: {message}")
        self.java_class = java_class
        self.java_message = message
