"""The Java-side Notification Table (paper Figure 6).

Callbacks cannot cross the JS/Java bridge, so a Java ``Callback object``
stores every asynchronous result here under a *notification id*; the JS
side polls the table (through a bridge method that returns JSON — a
string, hence bridge-legal) and dispatches to its local JS callbacks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.util.identifiers import IdGenerator

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultInjector


@dataclass(frozen=True)
class Notification:
    """One asynchronous result destined for the JS domain.

    ``payload`` must be JSON-serializable primitives only; the table is on
    the Java side of the bridge and everything in it eventually crosses.
    """

    notification_id: str
    kind: str
    payload: Dict[str, Any]
    posted_at_ms: float


class NotificationTable:
    """Maps notification id → queued notifications.

    ``new_id`` mints the identifier a Java wrapper returns from the
    originating call (e.g. ``sendTextMessage``); ``post`` appends results;
    ``drain_json`` is what the JS polling loop calls through the bridge.
    """

    def __init__(self, *, injector: Optional["FaultInjector"] = None) -> None:
        self._ids = IdGenerator()
        self._queues: Dict[str, List[Notification]] = {}
        self._posted_count = 0
        self._faults = injector
        #: Fault-plane observability: results silently lost before queueing.
        self.dropped = 0

    def new_id(self) -> str:
        """Mint a fresh notification id and create its (empty) queue."""
        notification_id = self._ids.next("notif")
        self._queues[notification_id] = []
        return notification_id

    def post(self, notification_id: str, kind: str, payload: Dict[str, Any], now_ms: float) -> None:
        """Queue a result for ``notification_id``.

        Payload values are validated as JSON-serializable immediately so a
        bad producer fails at post time, not at poll time.
        """
        if notification_id not in self._queues:
            raise KeyError(f"unknown notification id {notification_id!r}")
        json.dumps(payload)  # raises TypeError on non-primitive content
        if self._faults is not None and self._faults.active:
            if self._faults.decide("webview.notification") is not None:
                # The async result evaporates before reaching the table —
                # the JS poller simply never sees it.
                self.dropped += 1
                return
        self._queues[notification_id].append(
            Notification(notification_id, kind, dict(payload), now_ms)
        )
        self._posted_count += 1

    def pending(self, notification_id: str) -> int:
        """Queued-but-undrained count for an id."""
        return len(self._queues.get(notification_id, []))

    def drain(self, notification_id: str) -> List[Notification]:
        """Remove and return all queued notifications for an id (FIFO)."""
        queue = self._queues.get(notification_id, [])
        drained, queue[:] = list(queue), []
        return drained

    def drain_json(self, notification_id: str) -> str:
        """Bridge-legal drain: the queued notifications as a JSON string."""
        drained = self.drain(notification_id)
        return json.dumps(
            [
                {"kind": n.kind, "payload": n.payload, "posted_at_ms": n.posted_at_ms}
                for n in drained
            ]
        )

    def close(self, notification_id: str) -> None:
        """Forget an id once its JS consumer is done polling."""
        self._queues.pop(notification_id, None)

    @property
    def total_posted(self) -> int:
        return self._posted_count
