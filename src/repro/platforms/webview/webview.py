"""The WebView host and the page's ``window`` object.

A "page" in this substrate is a Python callable that receives a
:class:`JsWindow` — the analogue of HTML+JavaScript loaded into the view.
The window gives the page timers (``set_interval`` drives the paper's
notification polling), a console, and access to the Java objects injected
via the bridge.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

from repro.platforms.webview.bridge import JavascriptBridge, JsBridgeObject
from repro.platforms.webview.exceptions import JsError
from repro.util.clock import ScheduledTask

if TYPE_CHECKING:  # pragma: no cover
    from repro.platforms.webview.platform import WebViewPlatform


class JsWindow:
    """The page-global object handed to page scripts.

    JS mapping: ``setTimeout`` → :meth:`set_timeout`, ``setInterval`` →
    :meth:`set_interval`, ``clearInterval``/``clearTimeout`` →
    :meth:`clear_interval`, ``console.log`` → :meth:`log`.
    """

    def __init__(self, platform: "WebViewPlatform", bridge: JavascriptBridge) -> None:
        self._platform = platform
        self._bridge = bridge
        self._timers: Dict[int, ScheduledTask] = {}
        self._next_timer_id = 1
        self.console: List[str] = []
        self._globals: Dict[str, Any] = {}

    # -- injected Java objects ------------------------------------------------

    def bridge_object(self, js_name: str) -> JsBridgeObject:
        """Resolve a Java object injected with ``add_javascript_interface``."""
        return self._bridge.lookup(js_name)

    @property
    def platform(self) -> "WebViewPlatform":
        """The owning WebView platform, for device-level wiring (in-page
        proxies reach the device observability hub through it)."""
        return self._platform

    # -- page globals (plain JS values, never bridged) ---------------------------

    def set_global(self, name: str, value: Any) -> None:
        self._globals[name] = value

    def get_global(self, name: str) -> Any:
        if name in self._globals:
            return self._globals[name]
        raise JsError(f"ReferenceError: {name} is not defined")

    # -- timers ----------------------------------------------------------------

    def set_timeout(self, fn: Callable[[], None], delay_ms: float) -> int:
        """One-shot timer; returns a timer id."""
        timer_id = self._allocate_timer_id()
        task = self._platform.scheduler.call_later(
            delay_ms, fn, name=f"js-timeout-{timer_id}"
        )
        self._timers[timer_id] = task
        return timer_id

    def set_interval(self, fn: Callable[[], None], period_ms: float) -> int:
        """Repeating timer; returns a timer id usable with clear_interval."""
        timer_id = self._allocate_timer_id()
        task = self._platform.scheduler.call_every(
            period_ms, fn, name=f"js-interval-{timer_id}"
        )
        self._timers[timer_id] = task
        return timer_id

    def clear_interval(self, timer_id: int) -> None:
        """Cancel a timer (also serves as ``clearTimeout``).  Idempotent."""
        task = self._timers.pop(timer_id, None)
        if task is not None:
            task.cancel()

    def active_timer_count(self) -> int:
        return sum(1 for t in self._timers.values() if not t.cancelled)

    def _allocate_timer_id(self) -> int:
        timer_id = self._next_timer_id
        self._next_timer_id += 1
        return timer_id

    # -- console -------------------------------------------------------------------

    def log(self, message: str) -> None:
        """JS: ``console.log``."""
        self.console.append(str(message))


class WebView:
    """A browser surface hosting one page at a time.

    The Java side configures it (``add_javascript_interface``) *before*
    loading the page, exactly as real WebView requires.
    """

    def __init__(self, platform: "WebViewPlatform") -> None:
        self._platform = platform
        self.bridge = JavascriptBridge(platform)
        self._window: Optional[JsWindow] = None
        self._page_loaded = False

    # -- Java-side API -----------------------------------------------------------

    def add_javascript_interface(self, java_object: Any, js_name: str) -> None:
        """Inject ``java_object`` into the (future) page as ``js_name``."""
        self.bridge.add_javascript_interface(java_object, js_name)

    def load_page(self, page: Callable[[JsWindow], None]) -> JsWindow:
        """Load a page script: build a fresh window and run the script.

        Returns the window so tests can poke at page state.  Loading a new
        page tears down the previous window's timers.
        """
        if self._window is not None:
            for timer_id in list(self._window._timers):
                self._window.clear_interval(timer_id)
        self._window = JsWindow(self._platform, self.bridge)
        self._platform.active_window = self._window
        page(self._window)
        self._page_loaded = True
        return self._window

    @property
    def window(self) -> Optional[JsWindow]:
        return self._window

    @property
    def page_loaded(self) -> bool:
        return self._page_loaded
