"""The WebView platform object.

A WebView platform *contains* an Android platform: page JS reaches device
capabilities only through Java objects that themselves call the Android
substrate.  Its own latency model covers the bridge crossings; calibration
for Figure 10 decomposes the paper's WebView bars into (Android native
cost) + (bridge cost per method).
"""

from __future__ import annotations

from typing import Optional

from repro.device.device import MobileDevice
from repro.platforms.android.platform import AndroidPlatform
from repro.platforms.base import PlatformBase
from repro.platforms.webview.notifications import NotificationTable
from repro.platforms.webview.webview import WebView
from repro.util.latency import LatencyModel

#: Default per-crossing bridge latencies (ms), shaped so that
#: android-native + bridge matches the paper's WebView bars:
#: addProximityAlert 53.6+24.8≈78.4, getLocation 15.5+104.5≈120,
#: sendSMS 52.7+38.9≈91.6.
DEFAULT_BRIDGE_LATENCY = LatencyModel(
    mean_ms={
        "webview.bridge.add_proximity_alert": 24.8,
        "webview.bridge.get_location": 104.5,
        "webview.bridge.send_text_message": 38.9,
    },
    default_ms=2.0,
)


class WebViewPlatform(PlatformBase):
    """An Android WebView runtime mounted on one device."""

    platform_name = "webview"

    def __init__(
        self,
        device: MobileDevice,
        *,
        android: Optional[AndroidPlatform] = None,
        latency: Optional[LatencyModel] = None,
        notification_table: Optional[NotificationTable] = None,
    ) -> None:
        super().__init__(device, latency=latency or DEFAULT_BRIDGE_LATENCY)
        if android is not None and android.device is not device:
            raise ValueError("android platform must be mounted on the same device")
        self.android = android or AndroidPlatform(device)
        # ``notification_table`` accepts any object with the table's API —
        # the distrib tier passes a ReplicatedNotificationTable so Figure
        # 6's Java-side store spans regions (docs/DISTRIBUTION.md).
        self.notification_table = notification_table or NotificationTable(
            injector=getattr(device, "faults", None)
        )
        #: The window of the most recently loaded page (set by
        #: :meth:`WebView.load_page`); lets factory-constructed JS proxies
        #: find their page context.
        self.active_window = None

    def charge_bridge(self, method_name: str) -> float:
        """Charge one JS→Java bridge crossing for ``method_name``."""
        return self.charge_native(f"webview.bridge.{method_name}")

    def new_webview(self) -> WebView:
        """Create a browser surface on this platform."""
        return WebView(self)
