"""Simulated data network and HTTP service fabric.

The paper's workforce-management application talks to a server-side
component over HTTP.  :class:`SimulatedNetwork` hosts named virtual servers
(plain request handlers) and models per-round-trip latency and scriptable
loss, all on the virtual clock.  Both synchronous and asynchronous request
styles are provided because the three platform HTTP stacks differ on
exactly this point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.util.clock import Scheduler
from repro.util.identifiers import IdGenerator
from repro.util.idempotency import current_chain
from repro.util.latency import LatencyModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.distrib.idempotency import IdempotencyStore
    from repro.faults.injector import FaultInjector, InjectedFault

#: Methods whose handlers are assumed idempotent — never deduplicated.
_SAFE_METHODS = frozenset({"GET", "HEAD", "OPTIONS"})


class NetworkError(SimulationError):
    """A request could not complete (no route, injected loss, bad host)."""


class NetworkTimeout(NetworkError):
    """A request stalled past its hold time with no response."""


@dataclass(frozen=True)
class HttpRequest:
    """A network-level HTTP request."""

    method: str
    host: str
    path: str
    headers: Tuple[Tuple[str, str], ...] = ()
    body: str = ""

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Case-insensitive header lookup."""
        lowered = name.lower()
        for key, value in self.headers:
            if key.lower() == lowered:
                return value
        return default


@dataclass(frozen=True)
class HttpResponse:
    """A network-level HTTP response."""

    status: int
    body: str = ""
    headers: Tuple[Tuple[str, str], ...] = ()

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


Handler = Callable[[HttpRequest], HttpResponse]


@dataclass
class _Route:
    method: str
    path: str
    handler: Handler


class VirtualServer:
    """A routed HTTP handler registered under a hostname."""

    def __init__(self, host: str) -> None:
        self.host = host
        self._routes: List[_Route] = []
        self.request_log: List[HttpRequest] = []

    def route(self, method: str, path: str, handler: Handler) -> None:
        """Register ``handler`` for exact (method, path) matches."""
        self._routes.append(_Route(method.upper(), path, handler))

    def handle(self, request: HttpRequest) -> HttpResponse:
        """Dispatch a request; 404 when no route matches."""
        self.request_log.append(request)
        for entry in self._routes:
            if entry.method == request.method.upper() and entry.path == request.path:
                return entry.handler(request)
        return HttpResponse(status=404, body=f"no route for {request.path}")


class SimulatedNetwork:
    """The data bearer connecting devices to virtual servers.

    Round-trip latency is drawn from a :class:`LatencyModel` under the
    operation name ``"http.roundtrip"``; loss is scripted with
    :meth:`fail_next`.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        *,
        latency: Optional[LatencyModel] = None,
        injector: Optional["FaultInjector"] = None,
    ) -> None:
        self._scheduler = scheduler
        self._latency = latency or LatencyModel(mean_ms={"http.roundtrip": 120.0})
        self._servers: Dict[str, VirtualServer] = {}
        self._fail_queue: List[str] = []
        self._ids = IdGenerator()
        self._faults = injector
        self._idempotency: Optional["IdempotencyStore"] = None

    def attach_idempotency(self, store: "IdempotencyStore") -> None:
        """Share an idempotency store (the distrib tier's, usually).

        Without one the network lazily creates a private store the first
        time a non-idempotent request dispatches inside an attempt
        chain; sharing just folds the dedup counters into the tier's
        metrics.
        """
        self._idempotency = store

    def _dedup_store(self) -> "IdempotencyStore":
        if self._idempotency is None:
            from repro.distrib.idempotency import IdempotencyStore

            self._idempotency = IdempotencyStore(label="network")
        return self._idempotency

    def add_server(self, host: str) -> VirtualServer:
        """Create (or return the existing) virtual server for ``host``."""
        if host not in self._servers:
            self._servers[host] = VirtualServer(host)
        return self._servers[host]

    def server(self, host: str) -> VirtualServer:
        try:
            return self._servers[host]
        except KeyError:
            raise NetworkError(f"unknown host {host!r}") from None

    def fail_next(self, reason: str = "injected loss") -> None:
        """Make the next request fail with ``reason`` (FIFO if called twice)."""
        self._fail_queue.append(reason)

    def round_trip_latency_ms(self) -> float:
        """Draw the latency the next request would experience."""
        return self._latency.draw("http.roundtrip")

    def request(self, request: HttpRequest) -> HttpResponse:
        """Synchronous request: advances the virtual clock by the round trip.

        Used by the blocking HTTP stacks (S60's ``HttpConnection``).

        Non-idempotent methods (anything outside GET/HEAD/OPTIONS)
        dispatched inside an open attempt chain are **exactly-once**:
        an ``ack_lost`` fault lets the server apply the request and then
        loses the response, and the resilience layer's retry replays the
        recorded response instead of re-applying the write.
        """
        self._precheck(request)
        fault = self._consult_faults()
        if fault is not None and fault.kind == "timeout":
            self._scheduler.clock.advance(fault.rule.hold_ms)
            raise NetworkTimeout(
                f"injected fault: no response after {fault.rule.hold_ms:.0f}ms"
            )
        self._scheduler.clock.advance(self.round_trip_latency_ms())
        if fault is not None and fault.kind == "drop":
            raise NetworkError("injected fault: request dropped")
        if fault is not None and fault.kind == "http_error":
            return HttpResponse(
                status=fault.rule.status, body="injected server error"
            )
        response = self._dispatch_deduped(request)
        if fault is not None and fault.kind == "ack_lost":
            raise NetworkError(
                "injected fault: request applied but response lost"
            )
        return response

    def request_async(
        self,
        request: HttpRequest,
        on_response: Callable[[HttpResponse], None],
        on_error: Optional[Callable[[NetworkError], None]] = None,
    ) -> str:
        """Asynchronous request: response delivered via the scheduler.

        Returns a request id.  Failures route to ``on_error`` when given,
        otherwise raise at delivery time.
        """
        request_id = self._ids.next("http")

        def deliver() -> None:
            try:
                self._precheck(request)
                fault = self._consult_faults()
                if fault is not None and fault.kind == "timeout":
                    self._scheduler.clock.advance(fault.rule.hold_ms)
                    raise NetworkTimeout(
                        f"injected fault: no response after "
                        f"{fault.rule.hold_ms:.0f}ms"
                    )
                if fault is not None and fault.kind == "drop":
                    raise NetworkError("injected fault: request dropped")
                if fault is not None and fault.kind == "ack_lost":
                    self._dispatch_deduped(request)
                    raise NetworkError(
                        "injected fault: request applied but response lost"
                    )
            except NetworkError as exc:
                if on_error is None:
                    raise
                on_error(exc)
                return
            if fault is not None and fault.kind == "http_error":
                on_response(
                    HttpResponse(status=fault.rule.status, body="injected server error")
                )
                return
            on_response(self._dispatch_deduped(request))

        self._scheduler.call_later(
            self.round_trip_latency_ms(), deliver, name=f"http-{request_id}"
        )
        return request_id

    def _consult_faults(self) -> Optional["InjectedFault"]:
        if self._faults is None:
            return None
        return self._faults.decide("network.request")

    def _precheck(self, request: HttpRequest) -> None:
        if self._fail_queue:
            reason = self._fail_queue.pop(0)
            raise NetworkError(reason)
        if request.host not in self._servers:
            raise NetworkError(f"unknown host {request.host!r}")

    def _dispatch(self, request: HttpRequest) -> HttpResponse:
        return self._servers[request.host].handle(request)

    def _dispatch_deduped(self, request: HttpRequest) -> HttpResponse:
        """Dispatch exactly once per attempt chain for unsafe methods.

        Safe (idempotent) methods and chain-less dispatches go straight
        through; a replayed chain key returns the recorded response
        without touching the server.
        """
        method = request.method.upper()
        chain = current_chain()
        if chain is None or method in _SAFE_METHODS:
            return self._dispatch(request)
        key = f"http:{chain.key}:{method}:{request.host}{request.path}"
        return self._dedup_store().execute(
            key,
            lambda: self._dispatch(request),
            site="network.request",
            method=method,
            path=request.path,
        )
