"""Device capability profiles.

The paper's Section 6 enumerates three diversity axes — hardware, software
platform, and environment.  A :class:`DeviceProfile` captures the hardware
axis so the substrates can vary screen geometry, memory and input modes the
way 2009-era handsets did.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet


class InputMode(enum.Enum):
    """Primary input hardware of a handset."""

    KEYPAD = "keypad"
    QWERTY = "qwerty"
    TOUCH = "touch"
    TOUCH_AND_KEYPAD = "touch+keypad"


@dataclass(frozen=True)
class DeviceProfile:
    """Static hardware description of a simulated handset."""

    name: str
    screen_width_px: int = 320
    screen_height_px: int = 480
    color_depth_bits: int = 16
    memory_mb: int = 128
    input_mode: InputMode = InputMode.TOUCH
    has_gps: bool = True
    has_camera: bool = True
    connectivity: FrozenSet[str] = field(
        default_factory=lambda: frozenset({"gprs", "bluetooth"})
    )
    max_app_binary_kb: int = 10_240

    def __post_init__(self) -> None:
        if self.screen_width_px <= 0 or self.screen_height_px <= 0:
            raise ValueError("screen dimensions must be positive")
        if self.memory_mb <= 0:
            raise ValueError("memory must be positive")
        if self.max_app_binary_kb <= 0:
            raise ValueError("max binary size must be positive")

    @property
    def aspect_ratio(self) -> float:
        """Width / height of the display."""
        return self.screen_width_px / self.screen_height_px

    def supports(self, bearer: str) -> bool:
        """Whether the handset has the named connectivity bearer."""
        return bearer in self.connectivity


#: Profiles loosely modelled on the handset classes of the paper's era.
ANDROID_DEV_PHONE = DeviceProfile(
    name="android-dev-phone-1",
    screen_width_px=320,
    screen_height_px=480,
    memory_mb=192,
    input_mode=InputMode.TOUCH_AND_KEYPAD,
    connectivity=frozenset({"gprs", "3g", "wifi", "bluetooth"}),
)

NOKIA_S60_HANDSET = DeviceProfile(
    name="nokia-n95",
    screen_width_px=240,
    screen_height_px=320,
    memory_mb=128,
    input_mode=InputMode.KEYPAD,
    connectivity=frozenset({"gprs", "3g", "wifi", "bluetooth", "ir"}),
    max_app_binary_kb=4_096,
)
