"""Personal-information-management store: the device's contact book.

Substrate for the paper's future-work item ("extend MobiVine ... to cover
other platform interfaces like those related to calendaring and contact
list information").  One store per device; the platform substrates expose
it through their own (heterogeneous) PIM APIs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.util.identifiers import IdGenerator


@dataclass(frozen=True)
class ContactRecord:
    """One address-book entry (immutable; updates replace the record)."""

    contact_id: str
    display_name: str
    phone_numbers: Tuple[str, ...] = ()
    email: str = ""

    def with_number(self, number: str) -> "ContactRecord":
        if number in self.phone_numbers:
            return self
        return replace(self, phone_numbers=self.phone_numbers + (number,))


class ContactStore:
    """The device-level contact book."""

    def __init__(self) -> None:
        self._ids = IdGenerator()
        self._records: Dict[str, ContactRecord] = {}
        #: Monotone revision, bumped on every mutation (lets platform
        #: observers notice changes without content diffing).
        self.revision = 0

    def add(
        self,
        display_name: str,
        phone_numbers: Tuple[str, ...] = (),
        email: str = "",
    ) -> ContactRecord:
        """Create a record; returns it (with its new id)."""
        if not display_name:
            raise ValueError("display_name must be non-empty")
        record = ContactRecord(
            contact_id=self._ids.next("contact"),
            display_name=display_name,
            phone_numbers=tuple(phone_numbers),
            email=email,
        )
        self._records[record.contact_id] = record
        self.revision += 1
        return record

    def update(self, record: ContactRecord) -> None:
        """Replace an existing record (matched by id)."""
        if record.contact_id not in self._records:
            raise SimulationError(f"unknown contact {record.contact_id!r}")
        self._records[record.contact_id] = record
        self.revision += 1

    def remove(self, contact_id: str) -> None:
        """Delete a record; unknown ids raise."""
        if contact_id not in self._records:
            raise SimulationError(f"unknown contact {contact_id!r}")
        del self._records[contact_id]
        self.revision += 1

    def get(self, contact_id: str) -> ContactRecord:
        try:
            return self._records[contact_id]
        except KeyError:
            raise SimulationError(f"unknown contact {contact_id!r}") from None

    def all(self) -> List[ContactRecord]:
        """Every record, ordered by display name then id (deterministic)."""
        return sorted(
            self._records.values(), key=lambda r: (r.display_name, r.contact_id)
        )

    def find_by_name(self, fragment: str) -> List[ContactRecord]:
        """Case-insensitive substring search over display names."""
        needle = fragment.lower()
        return [r for r in self.all() if needle in r.display_name.lower()]

    def find_by_number(self, number: str) -> Optional[ContactRecord]:
        for record in self.all():
            if number in record.phone_numbers:
                return record
        return None

    def __len__(self) -> int:
        return len(self._records)
