"""Battery model with per-operation drain accounting.

The substrates charge the battery for expensive operations (GPS fixes,
radio transmissions).  The model is an accounting device, not an
electro-chemical simulation: it lets tests assert that, e.g., the S60
polling-based location stack costs more energy than Android's event-driven
one — a real fragmentation consequence the proxies cannot hide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.util.events import TypedSignal


@dataclass
class Battery:
    """A capacity counter in milliwatt-hours with a low-level signal."""

    capacity_mwh: float = 4_000.0
    level_mwh: float = 4_000.0
    low_threshold_fraction: float = 0.15

    def __post_init__(self) -> None:
        if self.capacity_mwh <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 < self.low_threshold_fraction < 1.0:
            raise ValueError("low threshold must be in (0, 1)")
        self.level_mwh = min(self.level_mwh, self.capacity_mwh)
        self.on_low = TypedSignal("battery-low")
        self._drain_by_op: Dict[str, float] = {}
        self._low_signalled = False

    @property
    def fraction(self) -> float:
        """Remaining charge as a fraction of capacity."""
        return self.level_mwh / self.capacity_mwh

    @property
    def is_low(self) -> bool:
        return self.fraction <= self.low_threshold_fraction

    @property
    def is_empty(self) -> bool:
        return self.level_mwh <= 0.0

    def drain(self, operation: str, amount_mwh: float) -> None:
        """Charge ``amount_mwh`` against ``operation`` (floors at empty)."""
        if amount_mwh < 0:
            raise ValueError("drain amount cannot be negative")
        self.level_mwh = max(0.0, self.level_mwh - amount_mwh)
        self._drain_by_op[operation] = (
            self._drain_by_op.get(operation, 0.0) + amount_mwh
        )
        if self.is_low and not self._low_signalled:
            self._low_signalled = True
            self.on_low.emit(self.fraction)

    def recharge(self) -> None:
        """Restore to full and re-arm the low-battery signal."""
        self.level_mwh = self.capacity_mwh
        self._low_signalled = False

    def drain_report(self) -> Dict[str, float]:
        """Total drain attributed to each operation so far."""
        return dict(self._drain_by_op)
