"""SMS store-and-forward simulation.

A single :class:`SmsCenter` (SMSC) connects every simulated device.  It
models the parts of real SMS that matter to the platform substrates above:

* GSM-7-style segmentation at 160 characters (153 per segment when
  concatenated),
* per-segment delivery latency on the virtual clock,
* delivery reports back to the sender,
* scriptable per-recipient failure injection (off-network numbers).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.errors import SimulationError
from repro.util.clock import Scheduler
from repro.util.events import EventBus
from repro.util.identifiers import IdGenerator
from repro.util.idempotency import current_chain

if TYPE_CHECKING:  # pragma: no cover
    from repro.distrib.idempotency import IdempotencyStore
    from repro.faults.injector import FaultInjector


class CarrierUnavailableError(SimulationError):
    """The SMSC refused the submission (transient carrier failure)."""

TOPIC_SMS_DELIVERED = "sms.delivered"
TOPIC_SMS_REPORT = "sms.report"

#: Single-message character budget (GSM-7 septets).
SINGLE_SEGMENT_CHARS = 160
#: Per-segment budget once a concatenation header is needed.
CONCAT_SEGMENT_CHARS = 153


class DeliveryStatus(enum.Enum):
    """Final status of a submitted message."""

    PENDING = "pending"
    DELIVERED = "delivered"
    FAILED = "failed"


@dataclass
class SmsMessage:
    """One logical text message (possibly multiple segments on the wire)."""

    message_id: str
    sender: str
    recipient: str
    text: str
    submitted_at_ms: float
    segments: int = 1
    status: DeliveryStatus = DeliveryStatus.PENDING
    delivered_at_ms: Optional[float] = None
    failure_reason: Optional[str] = None


@dataclass(frozen=True)
class SmsDeliveryReport:
    """Report handed back to the sending device."""

    message_id: str
    recipient: str
    status: DeliveryStatus
    timestamp_ms: float
    failure_reason: Optional[str] = None


def segment_count(text: str) -> int:
    """Number of wire segments a text occupies under GSM-7 rules."""
    if len(text) <= SINGLE_SEGMENT_CHARS:
        return 1
    full, rem = divmod(len(text), CONCAT_SEGMENT_CHARS)
    return full + (1 if rem else 0)


def split_segments(text: str) -> List[str]:
    """The actual wire segments for ``text``."""
    if len(text) <= SINGLE_SEGMENT_CHARS:
        return [text]
    return [
        text[i : i + CONCAT_SEGMENT_CHARS]
        for i in range(0, len(text), CONCAT_SEGMENT_CHARS)
    ]


class SmsCenter:
    """The network-side message switch shared by all devices.

    Devices appear as phone numbers.  A device "attaches" by registering an
    inbox callback for its number; unattached numbers can be marked
    reachable (messages queue silently) or unreachable (delivery fails).
    """

    def __init__(
        self,
        scheduler: Scheduler,
        bus: EventBus,
        *,
        per_segment_latency_ms: float = 800.0,
        injector: Optional["FaultInjector"] = None,
    ) -> None:
        if per_segment_latency_ms < 0:
            raise ValueError("latency cannot be negative")
        self._scheduler = scheduler
        self._bus = bus
        self._latency_ms = per_segment_latency_ms
        self._faults = injector
        self._ids = IdGenerator()
        self._inboxes: Dict[str, List[Callable[[SmsMessage], None]]] = {}
        self._unreachable: set = set()
        self._messages: Dict[str, SmsMessage] = {}
        self._inbox_log: Dict[str, List[SmsMessage]] = {}
        self._idempotency: Optional["IdempotencyStore"] = None

    def attach_idempotency(self, store: "IdempotencyStore") -> None:
        """Share an idempotency store (the distrib tier's, usually).

        Without one the SMSC lazily creates a private store the first
        time a submission arrives inside an attempt chain — the
        exactly-once guarantee holds either way; sharing just folds the
        dedup counters into the tier's metrics.
        """
        self._idempotency = store

    def _dedup_store(self) -> "IdempotencyStore":
        if self._idempotency is None:
            from repro.distrib.idempotency import IdempotencyStore

            self._idempotency = IdempotencyStore(label="smsc")
        return self._idempotency

    def attach(self, number: str, on_message: Callable[[SmsMessage], None]) -> None:
        """Register a device inbox callback for ``number``.

        A number may have several callbacks (the device's own inbox plus a
        platform's message-connection sink); all receive each delivery.
        """
        if not number:
            raise ValueError("number must be non-empty")
        self._inboxes.setdefault(number, []).append(on_message)

    def detach(self, number: str) -> None:
        """Remove every inbox callback for ``number``.  Idempotent."""
        self._inboxes.pop(number, None)

    def set_unreachable(self, number: str, unreachable: bool = True) -> None:
        """Script delivery failure for a recipient number."""
        if unreachable:
            self._unreachable.add(number)
        else:
            self._unreachable.discard(number)

    def message(self, message_id: str) -> SmsMessage:
        """Look up a submitted message by id."""
        try:
            return self._messages[message_id]
        except KeyError:
            raise SimulationError(f"unknown message id {message_id!r}") from None

    def inbox_of(self, number: str) -> List[SmsMessage]:
        """Messages delivered to ``number`` so far (chronological)."""
        return list(self._inbox_log.get(number, []))

    def submit(
        self,
        sender: str,
        recipient: str,
        text: str,
        on_report: Optional[Callable[[SmsDeliveryReport], None]] = None,
    ) -> SmsMessage:
        """Accept a message for delivery and return its tracking record.

        Delivery (or failure) happens after ``segments * latency`` of
        virtual time; the sender's ``on_report`` callback fires then.

        Submissions inside an open attempt chain (the resilience layer's
        retry scope) are **exactly-once**: the accept step is keyed by
        the chain's idempotency key, so a retry after an ``ack_lost``
        fault — the message was accepted but the acknowledgement never
        reached the caller — returns the original tracking record
        instead of submitting a duplicate.
        """
        if not recipient:
            raise ValueError("recipient must be non-empty")
        if text is None:
            raise ValueError("text must not be None")
        fault = (
            self._faults.decide("sms.submit") if self._faults is not None else None
        )
        if fault is not None and fault.kind == "carrier_unreachable":
            raise CarrierUnavailableError("injected fault: SMSC unreachable")
        chain = current_chain()
        if chain is not None:
            message = self._dedup_store().execute(
                f"sms:{chain.key}",
                lambda: self._accept(sender, recipient, text, on_report),
                site="sms.submit",
            )
        else:
            message = self._accept(sender, recipient, text, on_report)
        if fault is not None and fault.kind == "ack_lost":
            raise CarrierUnavailableError(
                "injected fault: submission accepted but ack lost"
            )
        return message

    def _accept(
        self,
        sender: str,
        recipient: str,
        text: str,
        on_report: Optional[Callable[[SmsDeliveryReport], None]],
    ) -> SmsMessage:
        """The side-effecting half of :meth:`submit` (dedup unit)."""
        message = SmsMessage(
            message_id=self._ids.next("sms"),
            sender=sender,
            recipient=recipient,
            text=text,
            submitted_at_ms=self._scheduler.clock.now_ms,
            segments=segment_count(text),
        )
        self._messages[message.message_id] = message
        delay = self._latency_ms * message.segments
        self._scheduler.call_later(
            delay,
            lambda: self._deliver(message, on_report),
            name=f"sms-deliver-{message.message_id}",
        )
        return message

    def _deliver(
        self,
        message: SmsMessage,
        on_report: Optional[Callable[[SmsDeliveryReport], None]],
    ) -> None:
        now = self._scheduler.clock.now_ms
        if message.recipient in self._unreachable:
            message.status = DeliveryStatus.FAILED
            message.failure_reason = "recipient unreachable"
        else:
            message.status = DeliveryStatus.DELIVERED
            message.delivered_at_ms = now
            self._inbox_log.setdefault(message.recipient, []).append(message)
            for inbox in list(self._inboxes.get(message.recipient, [])):
                inbox(message)
            self._bus.publish(TOPIC_SMS_DELIVERED, message)
        report = SmsDeliveryReport(
            message_id=message.message_id,
            recipient=message.recipient,
            status=message.status,
            timestamp_ms=now,
            failure_reason=message.failure_reason,
        )
        self._bus.publish(TOPIC_SMS_REPORT, report)
        if on_report is not None:
            on_report(report)
