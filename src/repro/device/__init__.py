"""Simulated mobile-device hardware.

This package is the substitute for the physical handsets the paper measured
on.  A :class:`~repro.device.device.MobileDevice` composes a GPS receiver,
a cellular radio (voice + SMS), a data network interface and a battery, all
driven by one shared virtual-time scheduler.  The platform substrates in
``repro.platforms`` mount on top of a device and expose its capabilities
through their (deliberately heterogeneous) APIs.
"""

from repro.device.profiles import DeviceProfile, InputMode
from repro.device.gps import GpsReceiver, GpsFix, Trajectory, Waypoint
from repro.device.telephony import CallSession, CallState, TelephonyUnit
from repro.device.messaging import SmsCenter, SmsMessage, SmsDeliveryReport
from repro.device.network import (
    HttpRequest,
    HttpResponse,
    NetworkError,
    SimulatedNetwork,
)
from repro.device.battery import Battery
from repro.device.calendar import CalendarStore, EventRecord
from repro.device.pim import ContactRecord, ContactStore
from repro.device.device import MobileDevice

__all__ = [
    "DeviceProfile",
    "InputMode",
    "GpsReceiver",
    "GpsFix",
    "Trajectory",
    "Waypoint",
    "CallSession",
    "CallState",
    "TelephonyUnit",
    "SmsCenter",
    "SmsMessage",
    "SmsDeliveryReport",
    "HttpRequest",
    "HttpResponse",
    "NetworkError",
    "SimulatedNetwork",
    "Battery",
    "CalendarStore",
    "ContactRecord",
    "ContactStore",
    "EventRecord",
    "MobileDevice",
]
