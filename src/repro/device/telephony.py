"""Voice-call simulation: a per-device telephony unit over a shared network.

The call model is intentionally simple but stateful: a call progresses
through DIALING → RINGING → ACTIVE → ENDED, with BUSY / UNREACHABLE /
FAILED terminal branches.  Reachability of callees is scriptable, which
the proxy-enrichment retry coordinator (Section 3.3 of the paper) exercises.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import SimulationError
from repro.util.clock import Scheduler
from repro.util.events import EventBus
from repro.util.identifiers import IdGenerator

TOPIC_CALL_STATE = "telephony.call"


class CallState(enum.Enum):
    """Lifecycle states of a voice call."""

    DIALING = "dialing"
    RINGING = "ringing"
    ACTIVE = "active"
    ENDED = "ended"
    BUSY = "busy"
    UNREACHABLE = "unreachable"
    FAILED = "failed"


#: States from which no further transitions happen.
TERMINAL_STATES = frozenset(
    {CallState.ENDED, CallState.BUSY, CallState.UNREACHABLE, CallState.FAILED}
)

_ALLOWED_TRANSITIONS: Dict[CallState, frozenset] = {
    CallState.DIALING: frozenset(
        {
            CallState.RINGING,
            CallState.BUSY,
            CallState.UNREACHABLE,
            CallState.FAILED,
            CallState.ENDED,  # local hang-up before the network responds
        }
    ),
    CallState.RINGING: frozenset({CallState.ACTIVE, CallState.ENDED, CallState.FAILED}),
    CallState.ACTIVE: frozenset({CallState.ENDED, CallState.FAILED}),
}


@dataclass
class CallSession:
    """One voice call from this device to ``callee_number``."""

    call_id: str
    callee_number: str
    state: CallState = CallState.DIALING
    started_at_ms: float = 0.0
    answered_at_ms: Optional[float] = None
    ended_at_ms: Optional[float] = None
    state_history: List[CallState] = field(default_factory=list)
    #: State-change observers; notified on every transition, including
    #: locally-initiated hang-ups.
    listeners: List[Callable[["CallSession"], None]] = field(default_factory=list)

    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def duration_ms(self) -> Optional[float]:
        """Talk time; ``None`` if the call never became active or not ended."""
        if self.answered_at_ms is None or self.ended_at_ms is None:
            return None
        return self.ended_at_ms - self.answered_at_ms


class TelephonyUnit:
    """The voice-call modem of one device.

    Callee behaviour is configured with :meth:`set_callee_behavior`: each
    number maps to one of ``"answer"``, ``"busy"``, ``"unreachable"``, or
    ``"no-answer"``.  Unknown numbers default to ``"answer"``.
    """

    ANSWER = "answer"
    BUSY = "busy"
    UNREACHABLE = "unreachable"
    NO_ANSWER = "no-answer"

    _BEHAVIORS = frozenset({ANSWER, BUSY, UNREACHABLE, NO_ANSWER})

    def __init__(
        self,
        scheduler: Scheduler,
        bus: EventBus,
        *,
        dial_latency_ms: float = 300.0,
        ring_duration_ms: float = 1_500.0,
        ring_timeout_ms: float = 20_000.0,
    ) -> None:
        self._scheduler = scheduler
        self._bus = bus
        self._dial_latency_ms = dial_latency_ms
        self._ring_duration_ms = ring_duration_ms
        self._ring_timeout_ms = ring_timeout_ms
        self._ids = IdGenerator()
        self._behaviors: Dict[str, str] = {}
        self._sessions: Dict[str, CallSession] = {}
        self._active_call: Optional[CallSession] = None

    @property
    def active_call(self) -> Optional[CallSession]:
        """The in-progress call, if any (one voice channel per device)."""
        if self._active_call is not None and self._active_call.is_terminal:
            return None
        return self._active_call

    def set_callee_behavior(self, number: str, behavior: str) -> None:
        """Script how the given number reacts to incoming calls."""
        if behavior not in self._BEHAVIORS:
            raise ValueError(
                f"behavior must be one of {sorted(self._BEHAVIORS)}, got {behavior!r}"
            )
        self._behaviors[number] = behavior

    def session(self, call_id: str) -> CallSession:
        """Look up a session by id."""
        try:
            return self._sessions[call_id]
        except KeyError:
            raise SimulationError(f"unknown call id {call_id!r}") from None

    def dial(
        self,
        number: str,
        on_state: Optional[Callable[[CallSession], None]] = None,
    ) -> CallSession:
        """Start a call to ``number``.

        ``on_state`` (if given) is invoked on every state change, after the
        event-bus publish.  Raises if a call is already in progress — the
        single-voice-channel constraint of a handset.
        """
        if self.active_call is not None:
            raise SimulationError(
                f"voice channel busy with call {self._active_call.call_id}"
            )
        if not number:
            raise ValueError("callee number must be non-empty")
        session = CallSession(
            call_id=self._ids.next("call"),
            callee_number=number,
            started_at_ms=self._scheduler.clock.now_ms,
        )
        session.state_history.append(session.state)
        if on_state is not None:
            session.listeners.append(on_state)
        self._sessions[session.call_id] = session
        self._active_call = session
        self._scheduler.call_later(
            self._dial_latency_ms,
            lambda: self._on_dialed(session),
            name=f"dial-{session.call_id}",
        )
        return session

    def hang_up(self, session: CallSession) -> None:
        """Locally terminate a ringing or active call."""
        if session.is_terminal:
            return
        self._transition(session, CallState.ENDED)

    def _on_dialed(self, session: CallSession) -> None:
        if session.is_terminal:  # hung up while dialing
            return
        behavior = self._behaviors.get(session.callee_number, self.ANSWER)
        if behavior == self.BUSY:
            self._transition(session, CallState.BUSY)
        elif behavior == self.UNREACHABLE:
            self._transition(session, CallState.UNREACHABLE)
        else:
            self._transition(session, CallState.RINGING)
            if behavior == self.ANSWER:
                self._scheduler.call_later(
                    self._ring_duration_ms,
                    lambda: self._on_answered(session),
                    name=f"answer-{session.call_id}",
                )
            else:  # NO_ANSWER: ring until timeout then end
                self._scheduler.call_later(
                    self._ring_timeout_ms,
                    lambda: self._on_ring_timeout(session),
                    name=f"ring-timeout-{session.call_id}",
                )

    def _on_answered(self, session: CallSession) -> None:
        if session.is_terminal:
            return
        session.answered_at_ms = self._scheduler.clock.now_ms
        self._transition(session, CallState.ACTIVE)

    def _on_ring_timeout(self, session: CallSession) -> None:
        if session.state is CallState.RINGING:
            self._transition(session, CallState.ENDED)

    def _transition(self, session: CallSession, new_state: CallState) -> None:
        allowed = _ALLOWED_TRANSITIONS.get(session.state, frozenset())
        if new_state not in allowed:
            raise SimulationError(
                f"illegal call transition {session.state.value} -> {new_state.value}"
            )
        session.state = new_state
        session.state_history.append(new_state)
        if new_state in TERMINAL_STATES:
            session.ended_at_ms = self._scheduler.clock.now_ms
            if self._active_call is session:
                self._active_call = None
        self._bus.publish(TOPIC_CALL_STATE, session)
        for listener in list(session.listeners):
            listener(session)
