"""Device calendar store.

Substrate for the other half of the paper's future-work item
("calendaring and contact list information").  One store per device,
exposed through heterogeneous platform APIs exactly like the contact book.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

from repro.errors import SimulationError
from repro.util.identifiers import IdGenerator


@dataclass(frozen=True)
class EventRecord:
    """One calendar entry (immutable; updates replace the record)."""

    event_id: str
    summary: str
    start_ms: float
    end_ms: float
    location: str = ""

    def __post_init__(self) -> None:
        if self.end_ms < self.start_ms:
            raise ValueError("event ends before it starts")

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms

    def overlaps(self, start_ms: float, end_ms: float) -> bool:
        """Whether the event intersects the half-open window [start, end)."""
        return self.start_ms < end_ms and start_ms < self.end_ms


class CalendarStore:
    """The device-level calendar."""

    def __init__(self) -> None:
        self._ids = IdGenerator()
        self._records: Dict[str, EventRecord] = {}
        #: Monotone revision, bumped on every mutation.
        self.revision = 0

    def add(
        self,
        summary: str,
        start_ms: float,
        end_ms: float,
        location: str = "",
    ) -> EventRecord:
        """Create an event; returns it (with its new id)."""
        if not summary:
            raise ValueError("summary must be non-empty")
        record = EventRecord(
            event_id=self._ids.next("event"),
            summary=summary,
            start_ms=float(start_ms),
            end_ms=float(end_ms),
            location=location,
        )
        self._records[record.event_id] = record
        self.revision += 1
        return record

    def update(self, record: EventRecord) -> None:
        """Replace an existing event (matched by id)."""
        if record.event_id not in self._records:
            raise SimulationError(f"unknown event {record.event_id!r}")
        self._records[record.event_id] = record
        self.revision += 1

    def remove(self, event_id: str) -> None:
        """Delete an event; unknown ids raise."""
        if event_id not in self._records:
            raise SimulationError(f"unknown event {event_id!r}")
        del self._records[event_id]
        self.revision += 1

    def get(self, event_id: str) -> EventRecord:
        try:
            return self._records[event_id]
        except KeyError:
            raise SimulationError(f"unknown event {event_id!r}") from None

    def all(self) -> List[EventRecord]:
        """Every event, ordered by start time then id (deterministic)."""
        return sorted(
            self._records.values(), key=lambda r: (r.start_ms, r.event_id)
        )

    def between(self, start_ms: float, end_ms: float) -> List[EventRecord]:
        """Events overlapping the half-open window [start, end)."""
        return [r for r in self.all() if r.overlaps(start_ms, end_ms)]

    def __len__(self) -> int:
        return len(self._records)
