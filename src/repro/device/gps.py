"""GPS receiver simulation with trajectory playback.

The receiver replays a :class:`Trajectory` (timed waypoints) against the
device's virtual clock, emitting periodic :class:`GpsFix` events on the
device event bus.  Fix acquisition latency and horizontal accuracy noise
are modelled so the platform location stacks above see realistic
behaviour: a cold receiver takes time to first fix, and reported positions
wobble around ground truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.errors import ConfigurationError, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultInjector
from repro.util.clock import ScheduledTask, Scheduler
from repro.util.events import EventBus
from repro.util.geo import GeoPoint, interpolate

#: Topic on which fixes are published.
TOPIC_FIX = "gps.fix"
#: Topic for receiver power-state changes.
TOPIC_STATE = "gps.state"


@dataclass(frozen=True)
class Waypoint:
    """A trajectory vertex: be at ``point`` at virtual time ``t_ms``."""

    t_ms: float
    point: GeoPoint


@dataclass(frozen=True)
class GpsFix:
    """A single position report from the receiver."""

    point: GeoPoint
    timestamp_ms: float
    accuracy_m: float
    speed_mps: float = 0.0


class Trajectory:
    """A piecewise-linear path through time.

    Before the first waypoint the position holds at the first point; after
    the last it holds at the last point — so a parked agent is just a
    single-waypoint trajectory.
    """

    def __init__(self, waypoints: Sequence[Waypoint]) -> None:
        if not waypoints:
            raise ConfigurationError("trajectory needs at least one waypoint")
        ordered = sorted(waypoints, key=lambda w: w.t_ms)
        for earlier, later in zip(ordered, ordered[1:]):
            if later.t_ms == earlier.t_ms:
                raise ConfigurationError(
                    f"duplicate waypoint time {later.t_ms}"
                )
        self._waypoints: List[Waypoint] = list(ordered)

    @property
    def waypoints(self) -> List[Waypoint]:
        return list(self._waypoints)

    @property
    def start_ms(self) -> float:
        return self._waypoints[0].t_ms

    @property
    def end_ms(self) -> float:
        return self._waypoints[-1].t_ms

    def position_at(self, t_ms: float) -> GeoPoint:
        """Ground-truth position at virtual time ``t_ms``."""
        pts = self._waypoints
        if t_ms <= pts[0].t_ms:
            return pts[0].point
        if t_ms >= pts[-1].t_ms:
            return pts[-1].point
        for earlier, later in zip(pts, pts[1:]):
            if earlier.t_ms <= t_ms <= later.t_ms:
                span = later.t_ms - earlier.t_ms
                fraction = (t_ms - earlier.t_ms) / span
                return interpolate(earlier.point, later.point, fraction)
        raise SimulationError(f"unreachable: t={t_ms}")  # pragma: no cover

    def speed_at(self, t_ms: float) -> float:
        """Ground-truth speed in metres/second at ``t_ms``."""
        pts = self._waypoints
        if t_ms < pts[0].t_ms or t_ms >= pts[-1].t_ms:
            return 0.0
        for earlier, later in zip(pts, pts[1:]):
            if earlier.t_ms <= t_ms < later.t_ms:
                distance = earlier.point.distance_to_m(later.point)
                duration_s = (later.t_ms - earlier.t_ms) / 1000.0
                return distance / duration_s if duration_s > 0 else 0.0
        return 0.0


class GpsReceiver:
    """A virtual GPS chip emitting fixes onto the device event bus.

    Parameters
    ----------
    scheduler:
        The device's shared scheduler.
    bus:
        The device's event bus; fixes publish on :data:`TOPIC_FIX`.
    trajectory:
        Ground-truth path.  Replaceable at runtime via :meth:`set_trajectory`.
    fix_interval_ms:
        Period between fixes once locked.
    time_to_first_fix_ms:
        Cold-start delay before the first fix after :meth:`power_on`.
    accuracy_m:
        Reported (and injected) 1-sigma horizontal error.
    seed:
        Seed for the accuracy-noise RNG.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        bus: EventBus,
        trajectory: Optional[Trajectory] = None,
        *,
        fix_interval_ms: float = 1_000.0,
        time_to_first_fix_ms: float = 2_000.0,
        accuracy_m: float = 5.0,
        seed: Optional[int] = 0,
        injector: Optional["FaultInjector"] = None,
    ) -> None:
        if fix_interval_ms <= 0:
            raise ConfigurationError("fix interval must be positive")
        if time_to_first_fix_ms < 0:
            raise ConfigurationError("time to first fix cannot be negative")
        self._scheduler = scheduler
        self._bus = bus
        self._trajectory = trajectory
        self._fix_interval_ms = fix_interval_ms
        self._ttff_ms = time_to_first_fix_ms
        self._accuracy_m = accuracy_m
        self._rng = random.Random(seed)
        self._powered = False
        self._fix_task: Optional[ScheduledTask] = None
        self._last_fix: Optional[GpsFix] = None
        self._faults = injector
        #: Fault-plane observability: fixes dropped / served stale so far.
        self.lost_fixes = 0
        self.stale_fixes = 0

    @property
    def powered(self) -> bool:
        return self._powered

    @property
    def last_fix(self) -> Optional[GpsFix]:
        """Most recent fix, or ``None`` before first lock."""
        return self._last_fix

    @property
    def fix_interval_ms(self) -> float:
        return self._fix_interval_ms

    def set_trajectory(self, trajectory: Trajectory) -> None:
        """Swap the ground-truth path (takes effect at the next fix)."""
        self._trajectory = trajectory

    def power_on(self) -> None:
        """Start the receiver; first fix arrives after the cold-start delay."""
        if self._powered:
            return
        if self._trajectory is None:
            raise SimulationError("cannot power on GPS without a trajectory")
        self._powered = True
        self._bus.publish(TOPIC_STATE, "on")
        self._fix_task = self._scheduler.call_every(
            self._fix_interval_ms,
            self._emit_fix,
            initial_delay_ms=self._ttff_ms,
            name="gps-fix",
        )

    def power_off(self) -> None:
        """Stop emitting fixes.  The last fix remains readable."""
        if not self._powered:
            return
        self._powered = False
        if self._fix_task is not None:
            self._fix_task.cancel()
            self._fix_task = None
        self._bus.publish(TOPIC_STATE, "off")

    def ground_truth(self) -> GeoPoint:
        """The true (noise-free) position right now."""
        if self._trajectory is None:
            raise SimulationError("no trajectory configured")
        return self._trajectory.position_at(self._scheduler.clock.now_ms)

    def _emit_fix(self) -> None:
        if self._faults is not None:
            fault = self._faults.decide("gps.fix")
            if fault is not None:
                if fault.kind == "stale" and self._last_fix is not None:
                    # Replay the previous fix unchanged: position and
                    # timestamp both lag reality, as a stuck receiver's do.
                    self.stale_fixes += 1
                    self._bus.publish(TOPIC_FIX, self._last_fix)
                else:  # "lost" — or stale with nothing to replay
                    self.lost_fixes += 1
                return
        truth = self.ground_truth()
        noisy = GeoPoint(
            latitude=truth.latitude
            + self._meters_to_lat_deg(self._rng.gauss(0.0, self._accuracy_m)),
            longitude=truth.longitude
            + self._meters_to_lat_deg(self._rng.gauss(0.0, self._accuracy_m)),
            altitude=truth.altitude,
        )
        now = self._scheduler.clock.now_ms
        fix = GpsFix(
            point=noisy,
            timestamp_ms=now,
            accuracy_m=self._accuracy_m,
            speed_mps=self._trajectory.speed_at(now) if self._trajectory else 0.0,
        )
        self._last_fix = fix
        self._bus.publish(TOPIC_FIX, fix)

    @staticmethod
    def _meters_to_lat_deg(meters: float) -> float:
        # 1 degree of latitude is ~111.2 km; close enough for noise injection.
        return meters / 111_200.0
