"""The composed simulated handset.

:class:`MobileDevice` is the paper's "Hardware Abstraction Layer" box in
Figure 3 — everything below the platform middleware.  One device owns one
virtual clock/scheduler and one event bus; platform substrates mount on a
device and translate its raw capabilities into their own API styles.
"""

from __future__ import annotations

from typing import Optional

from repro.device.battery import Battery
from repro.device.calendar import CalendarStore
from repro.device.gps import GpsReceiver, Trajectory
from repro.device.messaging import SmsCenter
from repro.device.network import SimulatedNetwork
from repro.device.pim import ContactStore
from repro.device.profiles import DeviceProfile, ANDROID_DEV_PHONE
from repro.device.telephony import TelephonyUnit
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.obs import Observability
from repro.util.clock import Scheduler, SimulatedClock
from repro.util.events import EventBus
from repro.util.latency import LatencyModel


class MobileDevice:
    """A complete simulated handset.

    Parameters
    ----------
    phone_number:
        The device's MSISDN; used to attach to the SMS center.
    profile:
        Hardware capabilities (defaults to an Android-dev-phone-like unit).
    sms_center:
        Shared SMSC.  Devices created without one get a private center
        (fine for single-device tests).
    network:
        Shared data network.  Same defaulting rule.
    latency:
        Platform-native latency model, threaded through to subsystems that
        need it (primarily the network).
    fault_plan:
        Optional :class:`~repro.faults.plan.FaultPlan` driving the
        device's fault injector (``device.faults``).  The injector is
        always present — without a plan it is an inert no-op — and is
        consulted by the GPS, SMSC, network and WebView bridge.  Shared
        ``sms_center``/``network`` instances keep whatever injector they
        were built with; the plan only wires the private subsystems this
        constructor creates.
    observability:
        Optional :class:`~repro.obs.Observability` hub.  Like the fault
        injector, a hub is always present (``device.obs``) — the default
        one has a no-op tracer, so instrumented paths stay at their
        uninstrumented cost.  The device binds its virtual clock to the
        hub so span stamps are in device time.
    """

    def __init__(
        self,
        phone_number: str,
        *,
        profile: Optional[DeviceProfile] = None,
        sms_center: Optional[SmsCenter] = None,
        network: Optional[SimulatedNetwork] = None,
        scheduler: Optional[Scheduler] = None,
        latency: Optional[LatencyModel] = None,
        trajectory: Optional[Trajectory] = None,
        gps_seed: int = 0,
        fault_plan: Optional[FaultPlan] = None,
        observability: Optional[Observability] = None,
    ) -> None:
        if not phone_number:
            raise ValueError("phone_number must be non-empty")
        self.phone_number = phone_number
        self.profile = profile or ANDROID_DEV_PHONE
        self.scheduler = scheduler or Scheduler(SimulatedClock())
        self.bus = EventBus()
        self.battery = Battery()
        self.latency = latency or LatencyModel()
        self.obs = observability or Observability.disabled()
        self.obs.bind_clock(self.scheduler.clock)
        self.faults = FaultInjector(
            fault_plan, clock=self.scheduler.clock, observability=self.obs
        )
        self.gps = GpsReceiver(
            self.scheduler,
            self.bus,
            trajectory,
            seed=gps_seed,
            injector=self.faults,
        )
        self.telephony = TelephonyUnit(self.scheduler, self.bus)
        self.contacts = ContactStore()
        self.calendar = CalendarStore()
        self.sms_center = sms_center or SmsCenter(
            self.scheduler, self.bus, injector=self.faults
        )
        self.network = network or SimulatedNetwork(
            self.scheduler, injector=self.faults
        )
        self._inbox = []
        self.sms_center.attach(self.phone_number, self._inbox.append)
        # Energy accounting: every GPS fix costs receiver power.
        self.bus.subscribe("gps.fix", self._drain_for_fix)

    #: Battery cost of producing one GPS fix.
    GPS_FIX_DRAIN_MWH = 0.25

    def _drain_for_fix(self, topic, fix) -> None:
        self.battery.drain("gps.fix", self.GPS_FIX_DRAIN_MWH)

    @property
    def clock(self) -> SimulatedClock:
        """The device's virtual clock (shared with its scheduler)."""
        return self.scheduler.clock

    @property
    def inbox(self) -> list:
        """Messages delivered to this device, in arrival order."""
        return list(self._inbox)

    def run_for(self, delta_ms: float) -> int:
        """Advance the device's virtual time, running due events."""
        return self.scheduler.run_for(delta_ms)

    def set_trajectory(self, trajectory: Trajectory) -> None:
        """Script the device's movement (powers the GPS if needed)."""
        self.gps.set_trajectory(trajectory)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MobileDevice({self.phone_number!r}, profile={self.profile.name!r}, "
            f"t={self.clock.now_ms:.0f}ms)"
        )
