"""Sharded dispatch in front of the M-Proxy layer.

One :class:`Dispatcher` owns K worker shards for one platform.  Each
shard is a serial lane with a bounded FIFO queue; a submitted request is

1. **coalesced** — if it carries a coalesce key matching an in-flight
   idempotent read, it attaches to that request's future and never
   touches a queue;
2. **admitted or shed** — a full shard queue rejects the request at the
   door with :class:`~repro.errors.ProxyOverloadError` (a ``runtime.shed``
   metric and a ``queue.shed`` span event record the decision);
3. **executed on the shard's lane** — the shard runs the request's thunk
   under :meth:`SimulatedClock.capture_charge`, so the substrate's
   synchronous virtual-time charge lands on the shard's private
   ``busy_until`` horizon instead of serialising the shared clock.
   K shards therefore overlap in virtual time: makespan ≈ total work / K,
   which is exactly what ``benchmarks/bench_concurrency.py`` measures.

Span layer: with tracing enabled each executed request records a
``queue:<operation>`` span (attributes: shard, queue wait) as the parent
of the proxy's own ``dispatch → resilience → binding`` tree.  The span's
virtual stamps are the *lane* times — two shards' spans genuinely
overlap in a trace export.

Determinism: shard selection is stable CRC32 key hashing (or
least-loaded with lowest-index tie-breaking), queues are FIFO, and every
completion is delivered through the shared scheduler heap with FIFO
sequence numbers.  No wall clock, no unseeded randomness.
"""

from __future__ import annotations

import collections
import contextlib
import itertools
import zlib
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.errors import ConfigurationError, ProxyError, ProxyOverloadError
from repro.runtime.futures import Future
from repro.util.clock import Scheduler


class _Request:
    """One admitted unit of work."""

    __slots__ = (
        "seq", "operation", "thunk", "future", "attached", "coalesce_key",
        "tracer", "submit_ms", "start_ms", "charge_ms", "shard_index",
    )

    def __init__(
        self,
        seq: int,
        operation: str,
        thunk: Callable[[], Any],
        *,
        coalesce_key: Optional[str],
        tracer,
    ) -> None:
        self.seq = seq
        self.operation = operation
        self.thunk = thunk
        self.future = Future()
        self.attached: List[Future] = []
        self.coalesce_key = coalesce_key
        self.tracer = tracer
        self.submit_ms = 0.0
        self.start_ms = 0.0
        self.charge_ms = 0.0
        self.shard_index = -1


class _Shard:
    """One serial worker lane."""

    __slots__ = ("index", "queue", "busy_until_ms", "pump_armed", "executed")

    def __init__(self, index: int) -> None:
        self.index = index
        self.queue: Deque[_Request] = collections.deque()
        self.busy_until_ms = 0.0
        self.pump_armed = False
        self.executed = 0


class Dispatcher:
    """Bounded, sharded, coalescing dispatch for one platform.

    Parameters
    ----------
    scheduler:
        The shared virtual-time scheduler (same one the substrate and
        resilience plane use).
    platform:
        Label stamped on metrics and spans (``android``/``s60``/…).
    shards:
        Worker lane count.
    queue_depth:
        Per-shard bounded queue length; submissions beyond it shed.
    observability:
        Hub for the dispatcher's own ``runtime.*`` metrics (labelled
        ``source=<platform>``).  Per-request spans go to the
        *submitter's* tracer (pass ``tracer=`` to :meth:`submit`) so
        they join the proxy's span tree.  When the hub carries a
        time-series sampler / flight recorder, the dispatcher ticks the
        sampler at every scheduling point (submit, execution start,
        settle) and triggers a flight dump on sheds.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        *,
        platform: str = "any",
        shards: int = 1,
        queue_depth: int = 32,
        observability=None,
    ) -> None:
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if queue_depth < 1:
            raise ConfigurationError(f"queue_depth must be >= 1, got {queue_depth}")
        self._scheduler = scheduler
        self._clock = scheduler.clock
        self.platform = platform
        self.queue_depth = queue_depth
        self._shards = [_Shard(index) for index in range(shards)]
        self._inflight: Dict[str, _Request] = {}
        self._seq = itertools.count()
        self._rr = itertools.count()
        self._obs = observability
        if observability is not None:
            metrics = observability.metrics
        else:
            from repro.obs import MetricsRegistry

            metrics = MetricsRegistry()
        self.metrics = metrics
        label = dict(source=platform)
        self._submitted = metrics.counter("runtime.submitted", **label)
        self._completed = metrics.counter("runtime.completed", **label)
        self._failed = metrics.counter("runtime.failed", **label)
        self._shed = metrics.counter("runtime.shed", **label)
        self._coalesced = metrics.counter("runtime.coalesced", **label)
        self._queue_wait = metrics.histogram("runtime.queue_wait_ms", **label)
        self._service = metrics.histogram("runtime.service_ms", **label)
        self._inflight_gauge = metrics.gauge("runtime.inflight", **label)
        self._depth_gauges = [
            metrics.gauge("runtime.queue_depth", shard=str(index), **label)
            for index in range(shards)
        ]

    def _tick(self) -> None:
        """Sample tracked time series at this scheduling point (no-op
        without an installed sampler)."""
        if self._obs is not None:
            self._obs.tick()

    # -- introspection -------------------------------------------------------

    @property
    def shards(self) -> int:
        return len(self._shards)

    @property
    def idle(self) -> bool:
        """No queued work and every lane's horizon has passed."""
        now = self._clock.now_ms
        return all(
            not shard.queue and shard.busy_until_ms <= now
            for shard in self._shards
        )

    def next_event_ms(self) -> Optional[float]:
        """Earliest lane horizon still ahead of now (drain aid)."""
        now = self._clock.now_ms
        horizons = [
            shard.busy_until_ms
            for shard in self._shards
            if shard.queue or shard.busy_until_ms > now
        ]
        return min(horizons) if horizons else None

    def queue_depths(self) -> List[int]:
        return [len(shard.queue) for shard in self._shards]

    def executed_per_shard(self) -> List[int]:
        return [shard.executed for shard in self._shards]

    @property
    def shed_count(self) -> int:
        return self._shed.value

    @property
    def coalesced_count(self) -> int:
        return self._coalesced.value

    @property
    def completed_count(self) -> int:
        return self._completed.value

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        operation: str,
        thunk: Callable[[], Any],
        *,
        key: Optional[str] = None,
        coalesce_key: Optional[str] = None,
        tracer=None,
    ) -> Future:
        """Queue one proxy invocation; returns its future.

        ``key`` pins the request to a stable shard (CRC32 hash) — use an
        agent or session id for per-source FIFO ordering.  Without a key
        the least-loaded shard wins (lowest index breaks ties).
        ``coalesce_key`` marks the request as an idempotent read that may
        share an in-flight execution with identical keys.
        """
        self._submitted.inc()
        if coalesce_key is not None:
            primary = self._inflight.get(coalesce_key)
            if primary is not None:
                self._coalesced.inc()
                follower = Future()
                primary.attached.append(follower)
                self._tick()
                return follower
        shard = self._select_shard(key)
        if len(shard.queue) >= self.queue_depth:
            self._shed.inc()
            error = ProxyOverloadError(
                f"{operation} shed: shard {shard.index}/{self.platform} queue "
                f"full ({self.queue_depth})"
            )
            if tracer is not None and tracer.enabled:
                with tracer.span(
                    f"queue:{operation}",
                    platform=self.platform,
                    shard=shard.index,
                    outcome="shed",
                ) as span:
                    tracer.event(
                        "queue.shed",
                        operation=operation,
                        shard=shard.index,
                        depth=len(shard.queue),
                    )
                    span.mark_error(error)
            if self._obs is not None and self._obs.flight is not None:
                flight = self._obs.flight
                flight.note(
                    "queue.shed",
                    operation=operation,
                    platform=self.platform,
                    shard=shard.index,
                    depth=len(shard.queue),
                )
                flight.trigger(
                    "queue.shed",
                    operation=operation,
                    platform=self.platform,
                    shard=shard.index,
                )
            self._tick()
            return Future.failed(error)
        request = _Request(
            next(self._seq),
            operation,
            thunk,
            coalesce_key=coalesce_key,
            tracer=tracer,
        )
        request.submit_ms = self._clock.now_ms
        request.shard_index = shard.index
        shard.queue.append(request)
        self._depth_gauges[shard.index].set(len(shard.queue))
        if coalesce_key is not None:
            self._inflight[coalesce_key] = request
        self._pump(shard)
        self._tick()
        return request.future

    # -- internals -----------------------------------------------------------

    def _select_shard(self, key: Optional[str]) -> _Shard:
        if len(self._shards) == 1:
            return self._shards[0]
        if key is not None:
            index = zlib.crc32(key.encode("utf-8")) % len(self._shards)
            return self._shards[index]
        now = self._clock.now_ms

        def load(shard: _Shard) -> tuple:
            busy = 1 if shard.busy_until_ms > now else 0
            return (len(shard.queue) + busy, shard.index)

        return min(self._shards, key=load)

    def _pump(self, shard: _Shard) -> None:
        """Arm the shard's next execution at its lane horizon."""
        if shard.pump_armed or not shard.queue:
            return
        shard.pump_armed = True
        at = max(self._clock.now_ms, shard.busy_until_ms)
        self._scheduler.call_at(
            at,
            lambda: self._run_head(shard),
            name=f"dispatch.{self.platform}.shard{shard.index}",
        )

    def _run_head(self, shard: _Shard) -> None:
        shard.pump_armed = False
        if not shard.queue:
            return  # pragma: no cover - defensive; queues only grow here
        request = shard.queue.popleft()
        self._depth_gauges[shard.index].set(len(shard.queue))
        self._inflight_gauge.add(1)
        start = self._clock.now_ms
        request.start_ms = start
        wait_ms = start - request.submit_ms
        self._queue_wait.observe(wait_ms)
        result: Any = None
        error: Optional[ProxyError] = None
        tracer = request.tracer
        if tracer is not None and tracer.enabled:
            span_cm = tracer.span(
                f"queue:{request.operation}",
                platform=self.platform,
                shard=shard.index,
                wait_ms=wait_ms,
            )
        else:
            span_cm = contextlib.nullcontext()
        with self._clock.capture_charge() as capture:
            try:
                with span_cm:
                    result = request.thunk()
            except ProxyError as exc:
                error = exc
        request.charge_ms = capture.charge_ms
        self._service.observe(request.charge_ms)
        shard.busy_until_ms = start + request.charge_ms
        shard.executed += 1
        self._scheduler.call_at(
            shard.busy_until_ms,
            lambda: self._settle(request, result, error),
            name=f"dispatch.{self.platform}.done{request.seq}",
        )
        self._pump(shard)
        # A drain tick: the queue-depth gauge just dropped, so sample it
        # here too — not only at submit/settle — or bursts that drain
        # between submissions would be invisible in the series.
        self._tick()

    def _settle(
        self, request: _Request, result: Any, error: Optional[ProxyError]
    ) -> None:
        if (
            request.coalesce_key is not None
            and self._inflight.get(request.coalesce_key) is request
        ):
            del self._inflight[request.coalesce_key]
        futures = [request.future] + request.attached
        self._inflight_gauge.add(-1)
        if error is not None:
            self._failed.inc(len(futures))
            for future in futures:
                future.fail(error)
        else:
            self._completed.inc(len(futures))
            for future in futures:
                future.resolve(result)
        self._tick()
