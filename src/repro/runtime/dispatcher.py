"""Sharded dispatch in front of the M-Proxy layer.

One :class:`Dispatcher` owns K worker shards for one platform.  Each
shard is a serial lane with a bounded FIFO queue; a submitted request is

1. **coalesced** — if it carries a coalesce key matching an in-flight
   idempotent read, it attaches to that request's future and never
   touches a queue;
2. **admitted, throttled, absorbed or shed** — admission is decided
   synchronously at ``submit()``.  With an admission policy installed
   (:class:`~repro.runtime.admission.AdmissionConfig`), the tenant's
   token bucket is charged first (over budget →
   :class:`~repro.errors.ProxyThrottledError` 1013 with a
   ``retry_after_ms`` hint); a full shard queue then tries, in order,
   to **evict** a strictly lower-priority queued request (priority-
   aware shedding), to **absorb** the request into the shared overflow
   buffer (queue-based load leveling — it drains into whichever lane
   idles first), and only then **sheds** with
   :class:`~repro.errors.ProxyOverloadError` 1012.  Both errors carry
   structured context (platform, shard, depth, bound, priority class,
   reason) mirrored into the ``queue.shed`` / ``queue.throttled`` span
   events, and every submission lands in exactly one
   ``runtime.outcome`` bucket;
3. **executed on the shard's lane** — the shard runs the request's thunk
   under :meth:`SimulatedClock.capture_charge`, so the substrate's
   synchronous virtual-time charge lands on the shard's private
   ``busy_until`` horizon instead of serialising the shared clock.
   K shards therefore overlap in virtual time: makespan ≈ total work / K,
   which is exactly what ``benchmarks/bench_concurrency.py`` measures.

The live shard count is no longer fixed: :meth:`resize` grows or
shrinks the lane set (the autoscaler's actuator).  Shrinking reflows
queued work onto the surviving lanes — admitted work is never dropped
by a resize.

Span layer: with tracing enabled each executed request records a
``queue:<operation>`` span (attributes: shard, queue wait) as the parent
of the proxy's own ``dispatch → resilience → binding`` tree.  The span's
virtual stamps are the *lane* times — two shards' spans genuinely
overlap in a trace export.

Determinism: shard selection is stable CRC32 key hashing (or
least-loaded with lowest-index tie-breaking), queues are FIFO, eviction
and overflow ordering break ties by submission sequence, and every
completion is delivered through the shared scheduler heap with FIFO
sequence numbers.  No wall clock, no unseeded randomness.
"""

from __future__ import annotations

import collections
import contextlib
import itertools
import zlib
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.errors import ConfigurationError, ProxyError, ProxyOverloadError
from repro.runtime.admission import (
    AdmissionConfig,
    AdmissionController,
    DEFAULT_TENANT,
    OverflowBuffer,
    PRIORITY_NORMAL,
    priority_name,
)
from repro.runtime.futures import Future
from repro.util.clock import Scheduler

#: Every submission resolves to exactly one of these outcomes (the
#: unified accounting the ``runtime.outcome`` counter is labelled by).
OUTCOMES = ("admitted", "coalesced", "throttled", "absorbed", "shed")


class _Request:
    """One admitted unit of work."""

    __slots__ = (
        "seq", "operation", "thunk", "future", "attached", "coalesce_key",
        "tracer", "submit_ms", "start_ms", "charge_ms", "shard_index",
        "priority", "tenant",
    )

    def __init__(
        self,
        seq: int,
        operation: str,
        thunk: Callable[[], Any],
        *,
        coalesce_key: Optional[str],
        tracer,
        priority: int = PRIORITY_NORMAL,
        tenant: str = DEFAULT_TENANT,
    ) -> None:
        self.seq = seq
        self.operation = operation
        self.thunk = thunk
        self.future = Future()
        self.attached: List[Future] = []
        self.coalesce_key = coalesce_key
        self.tracer = tracer
        self.submit_ms = 0.0
        self.start_ms = 0.0
        self.charge_ms = 0.0
        self.shard_index = -1
        self.priority = priority
        self.tenant = tenant


class _Shard:
    """One serial worker lane."""

    __slots__ = ("index", "queue", "busy_until_ms", "pump_armed", "executed")

    def __init__(self, index: int) -> None:
        self.index = index
        self.queue: Deque[_Request] = collections.deque()
        self.busy_until_ms = 0.0
        self.pump_armed = False
        self.executed = 0


class Dispatcher:
    """Bounded, sharded, coalescing dispatch for one platform.

    Parameters
    ----------
    scheduler:
        The shared virtual-time scheduler (same one the substrate and
        resilience plane use).
    platform:
        Label stamped on metrics and spans (``android``/``s60``/…).
    shards:
        Worker lane count (the *initial* count when an autoscaler is
        attached; see :meth:`resize`).
    queue_depth:
        Per-shard bounded queue length; submissions beyond it go
        through the admission ladder (evict / absorb / shed).
    observability:
        Hub for the dispatcher's own ``runtime.*`` metrics (labelled
        ``source=<platform>``).  Per-request spans go to the
        *submitter's* tracer (pass ``tracer=`` to :meth:`submit`) so
        they join the proxy's span tree.  When the hub carries a
        time-series sampler / flight recorder, the dispatcher ticks the
        sampler at every scheduling point (submit, execution start,
        settle) and triggers a flight dump on sheds.
    admission:
        Optional :class:`~repro.runtime.admission.AdmissionConfig`
        enabling throttling, priority shedding and load leveling.  The
        default ``None`` keeps the PR-4 static-queue behaviour, and the
        submit fast path pays one ``None`` check.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        *,
        platform: str = "any",
        shards: int = 1,
        queue_depth: int = 32,
        observability=None,
        admission: Optional[AdmissionConfig] = None,
    ) -> None:
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if queue_depth < 1:
            raise ConfigurationError(f"queue_depth must be >= 1, got {queue_depth}")
        self._scheduler = scheduler
        self._clock = scheduler.clock
        self.platform = platform
        self.queue_depth = queue_depth
        self._shards = [_Shard(index) for index in range(shards)]
        self._inflight: Dict[str, _Request] = {}
        self._seq = itertools.count()
        self._rr = itertools.count()
        self._obs = observability
        if observability is not None:
            metrics = observability.metrics
        else:
            from repro.obs import MetricsRegistry

            metrics = MetricsRegistry()
        self.metrics = metrics
        label = dict(source=platform)
        self._submitted = metrics.counter("runtime.submitted", **label)
        self._completed = metrics.counter("runtime.completed", **label)
        self._failed = metrics.counter("runtime.failed", **label)
        self._shed = metrics.counter("runtime.shed", **label)
        self._coalesced = metrics.counter("runtime.coalesced", **label)
        self._outcomes = {
            outcome: metrics.counter("runtime.outcome", outcome=outcome, **label)
            for outcome in OUTCOMES
        }
        self._queue_wait = metrics.histogram("runtime.queue_wait_ms", **label)
        self._service = metrics.histogram("runtime.service_ms", **label)
        self._inflight_gauge = metrics.gauge("runtime.inflight", **label)
        self._depth_gauges = [
            metrics.gauge("runtime.queue_depth", shard=str(index), **label)
            for index in range(shards)
        ]
        self.admission_config = admission
        if admission is not None:
            self._admission: Optional[AdmissionController] = AdmissionController(
                platform=platform,
                clock=self._clock,
                metrics=metrics,
                bucket=admission.bucket,
                tenant_buckets=admission.tenant_buckets,
                storm_window_ms=admission.storm_window_ms,
                storm_threshold=admission.storm_threshold,
                observability=observability,
            )
            self._overflow: Optional[OverflowBuffer] = (
                OverflowBuffer(admission.overflow_capacity)
                if admission.overflow_capacity > 0
                else None
            )
            self._buffer_gauge = metrics.gauge("admission.buffer_depth", **label)
        else:
            self._admission = None
            self._overflow = None
            self._buffer_gauge = None

    def _tick(self) -> None:
        """Sample tracked time series at this scheduling point (no-op
        without an installed sampler)."""
        if self._obs is not None:
            self._obs.tick()

    # -- introspection -------------------------------------------------------

    @property
    def shards(self) -> int:
        return len(self._shards)

    @property
    def admission(self) -> Optional[AdmissionController]:
        """The attached admission controller (``None`` when disabled)."""
        return self._admission

    @property
    def overflow(self) -> Optional[OverflowBuffer]:
        """The shared overflow buffer (``None`` when leveling is off)."""
        return self._overflow

    @property
    def idle(self) -> bool:
        """No queued or buffered work and every lane's horizon passed."""
        if self._overflow is not None and len(self._overflow):
            return False
        now = self._clock.now_ms
        return all(
            not shard.queue and shard.busy_until_ms <= now
            for shard in self._shards
        )

    def next_event_ms(self) -> Optional[float]:
        """Earliest lane horizon still ahead of now (drain aid)."""
        now = self._clock.now_ms
        horizons = [
            shard.busy_until_ms
            for shard in self._shards
            if shard.queue or shard.busy_until_ms > now
        ]
        return min(horizons) if horizons else None

    def queue_depths(self) -> List[int]:
        return [len(shard.queue) for shard in self._shards]

    def executed_per_shard(self) -> List[int]:
        return [shard.executed for shard in self._shards]

    def busy_lane_count(self) -> int:
        """Lanes currently queued or mid-execution (autoscaler signal)."""
        now = self._clock.now_ms
        return sum(
            1
            for shard in self._shards
            if shard.queue or shard.busy_until_ms > now
        )

    @property
    def shed_count(self) -> int:
        return self._shed.value

    @property
    def throttled_count(self) -> int:
        return self._outcomes["throttled"].value

    @property
    def absorbed_count(self) -> int:
        return self._outcomes["absorbed"].value

    @property
    def coalesced_count(self) -> int:
        return self._coalesced.value

    @property
    def completed_count(self) -> int:
        return self._completed.value

    def outcome_counts(self) -> Dict[str, int]:
        """Every submission outcome under the unified accounting."""
        return {name: counter.value for name, counter in self._outcomes.items()}

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        operation: str,
        thunk: Callable[[], Any],
        *,
        key: Optional[str] = None,
        coalesce_key: Optional[str] = None,
        tracer=None,
        priority: Optional[int] = None,
        tenant: Optional[str] = None,
    ) -> Future:
        """Queue one proxy invocation; returns its future.

        ``key`` pins the request to a stable shard (CRC32 hash) — use an
        agent or session id for per-source FIFO ordering.  Without a key
        the least-loaded shard wins (lowest index breaks ties).
        ``coalesce_key`` marks the request as an idempotent read that may
        share an in-flight execution with identical keys.  ``priority``
        is the request's admission class (defaults to the admission
        policy's classification of ``operation``, NORMAL without one);
        ``tenant`` names the token-bucket account to charge (the agent
        id, in the fleet).
        """
        self._submitted.inc()
        if priority is None:
            priority = (
                self.admission_config.classify(operation)
                if self.admission_config is not None
                else PRIORITY_NORMAL
            )
        if tenant is None:
            tenant = DEFAULT_TENANT
        if coalesce_key is not None:
            primary = self._inflight.get(coalesce_key)
            if primary is not None:
                self._coalesced.inc()
                self._outcomes["coalesced"].inc()
                follower = Future()
                primary.attached.append(follower)
                self._tick()
                return follower
        if self._admission is not None:
            throttle = self._admission.admit(tenant, operation, priority)
            if throttle is not None:
                self._outcomes["throttled"].inc()
                if tracer is not None and tracer.enabled:
                    with tracer.span(
                        f"queue:{operation}",
                        platform=self.platform,
                        outcome="throttled",
                        priority=priority_name(priority),
                        tenant=tenant,
                    ) as span:
                        tracer.event("queue.throttled", **throttle.context)
                        span.mark_error(throttle)
                self._tick()
                return Future.failed(throttle)
        request = _Request(
            next(self._seq),
            operation,
            thunk,
            coalesce_key=coalesce_key,
            tracer=tracer,
            priority=priority,
            tenant=tenant,
        )
        request.submit_ms = self._clock.now_ms
        shard = self._select_shard(key)
        if len(shard.queue) >= self.queue_depth:
            admitted = self._admit_over_capacity(request, shard)
            if not admitted:
                self._shed_request(request, shard=shard, reason="queue_full")
            self._tick()
            return request.future
        self._enqueue(request, shard)
        self._tick()
        return request.future

    # -- internals -----------------------------------------------------------

    def _enqueue(self, request: _Request, shard: _Shard) -> None:
        request.shard_index = shard.index
        shard.queue.append(request)
        self._depth_gauges[shard.index].set(len(shard.queue))
        self._outcomes["admitted"].inc()
        if request.coalesce_key is not None:
            self._inflight[request.coalesce_key] = request
        self._pump(shard)

    def _admit_over_capacity(self, request: _Request, shard: _Shard) -> bool:
        """The admission ladder for a full shard queue: evict a lower-
        priority occupant, else absorb into the overflow buffer (which
        may itself evict).  Returns False when the request must shed."""
        if self._admission is None and self._overflow is None:
            return False
        victim = self._eviction_victim(shard, request.priority)
        if victim is not None:
            shard.queue.remove(victim)
            self._shed_request(
                victim, shard=shard, reason="evicted", outcome=None
            )
            request.shard_index = shard.index
            shard.queue.append(request)
            self._depth_gauges[shard.index].set(len(shard.queue))
            self._outcomes["admitted"].inc()
            if request.coalesce_key is not None:
                self._inflight[request.coalesce_key] = request
            self._pump(shard)
            return True
        if self._overflow is not None:
            accepted, displaced = self._overflow.offer(request)
            if accepted:
                if displaced is not None:
                    self._shed_request(
                        displaced, shard=None, reason="evicted", outcome=None
                    )
                self._outcomes["absorbed"].inc()
                self.metrics.counter(
                    "admission.absorbed", source=self.platform
                ).inc()
                self._buffer_gauge.set(len(self._overflow))
                if request.coalesce_key is not None:
                    self._inflight[request.coalesce_key] = request
                return True
        return False

    @staticmethod
    def _eviction_victim(shard: _Shard, priority: int) -> Optional[_Request]:
        """The queued request to evict for an incoming ``priority``:
        the strictly lower-priority occupant of the lowest class,
        newest first (older work keeps its FIFO claim longest)."""
        candidates = [
            queued for queued in shard.queue if queued.priority < priority
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda queued: (queued.priority, -queued.seq))

    def _shed_request(
        self,
        request: _Request,
        *,
        shard: Optional[_Shard],
        reason: str,
        outcome: Optional[str] = "shed",
    ) -> None:
        """Fail ``request`` (and every coalesced follower) with an
        enriched 1012.  ``outcome`` is the submission outcome to record
        — ``None`` for evicted victims, whose submissions were already
        counted as admitted/absorbed."""
        depth = len(shard.queue) if shard is not None else (
            len(self._overflow) if self._overflow is not None else 0
        )
        context = {
            "platform": self.platform,
            "shard": shard.index if shard is not None else -1,
            "depth": depth,
            "bound": self.queue_depth,
            "priority": priority_name(request.priority),
            "operation": request.operation,
            "reason": reason,
        }
        error = ProxyOverloadError(
            f"{request.operation} shed ({reason}): "
            f"{'shard ' + str(shard.index) if shard is not None else 'overflow'}"
            f"/{self.platform} queue full ({self.queue_depth})",
            context=context,
        )
        if request.coalesce_key is not None:
            if self._inflight.get(request.coalesce_key) is request:
                del self._inflight[request.coalesce_key]
        futures = [request.future] + request.attached
        # Unified accounting: every future failed by a shed counts, so
        # coalesced joins shed after attachment are no longer invisible.
        self._shed.inc(len(futures))
        self.metrics.counter(
            "admission.shed",
            source=self.platform,
            priority=priority_name(request.priority),
            reason=reason,
        ).inc(len(futures))
        if outcome is not None:
            self._outcomes[outcome].inc()
        tracer = request.tracer
        if tracer is not None and tracer.enabled:
            with tracer.span(
                f"queue:{request.operation}",
                platform=self.platform,
                shard=context["shard"],
                outcome="shed",
                priority=context["priority"],
                tenant=request.tenant,
            ) as span:
                tracer.event("queue.shed", **context)
                span.mark_error(error)
        if self._obs is not None and self._obs.flight is not None:
            flight = self._obs.flight
            flight.note("queue.shed", **context)
            flight.trigger(
                "queue.shed",
                operation=request.operation,
                platform=self.platform,
                shard=context["shard"],
                cause=reason,
            )
        if self._admission is not None:
            self._admission.record_rejection(
                "shed", operation=request.operation, reason=reason
            )
        for future in futures:
            future.fail(error)

    def _select_shard(self, key: Optional[str]) -> _Shard:
        if len(self._shards) == 1:
            return self._shards[0]
        if key is not None:
            index = zlib.crc32(key.encode("utf-8")) % len(self._shards)
            return self._shards[index]
        now = self._clock.now_ms

        def load(shard: _Shard) -> tuple:
            busy = 1 if shard.busy_until_ms > now else 0
            return (len(shard.queue) + busy, shard.index)

        return min(self._shards, key=load)

    # -- resizing ------------------------------------------------------------

    def resize(self, new_count: int) -> None:
        """Grow or shrink the live lane set (the autoscaler's actuator).

        Growing appends idle lanes and immediately drains the overflow
        buffer into them.  Shrinking removes the highest-index lanes and
        reflows their queued work onto survivors (spilling into the
        overflow buffer unbounded if need be) — admitted work is never
        dropped by a resize.  In-flight executions on removed lanes
        settle normally; only new placement stops.
        """
        if new_count < 1:
            raise ConfigurationError(f"shards must be >= 1, got {new_count}")
        current = len(self._shards)
        if new_count == current:
            return
        if new_count > current:
            label = dict(source=self.platform)
            for index in range(current, new_count):
                self._shards.append(_Shard(index))
                if index >= len(self._depth_gauges):
                    self._depth_gauges.append(
                        self.metrics.gauge(
                            "runtime.queue_depth", shard=str(index), **label
                        )
                    )
                self._depth_gauges[index].set(0)
            self._drain_overflow()
            return
        removed = self._shards[new_count:]
        self._shards = self._shards[:new_count]
        pending: List[_Request] = []
        for shard in removed:
            pending.extend(shard.queue)
            shard.queue.clear()
            self._depth_gauges[shard.index].set(0)
        pending.sort(key=lambda request: request.seq)
        for request in pending:
            target = min(
                self._shards,
                key=lambda shard: (len(shard.queue), shard.index),
            )
            if len(target.queue) < self.queue_depth:
                request.shard_index = target.index
                target.queue.append(request)
                self._depth_gauges[target.index].set(len(target.queue))
                self._pump(target)
            else:
                # Never drop admitted work on a shrink: the overflow
                # buffer absorbs the spill beyond its normal bound.
                if self._overflow is None:
                    self._overflow = OverflowBuffer(0)
                    self._buffer_gauge = self.metrics.gauge(
                        "admission.buffer_depth", source=self.platform
                    )
                self._overflow.offer(request, force=True)
                if self._buffer_gauge is not None:
                    self._buffer_gauge.set(len(self._overflow))

    def _drain_overflow(self) -> None:
        """Level buffered work onto any lane with queue space."""
        if self._overflow is None:
            return
        while len(self._overflow):
            target = min(
                self._shards,
                key=lambda shard: (len(shard.queue), shard.index),
            )
            if len(target.queue) >= self.queue_depth:
                break
            request = self._overflow.take()
            request.shard_index = target.index
            target.queue.append(request)
            self._depth_gauges[target.index].set(len(target.queue))
            self.metrics.counter(
                "admission.leveled", source=self.platform
            ).inc()
            self._pump(target)
        if self._buffer_gauge is not None:
            self._buffer_gauge.set(len(self._overflow))

    # -- execution -----------------------------------------------------------

    def _pump(self, shard: _Shard) -> None:
        """Arm the shard's next execution at its lane horizon."""
        if shard.pump_armed or not shard.queue:
            return
        shard.pump_armed = True
        at = max(self._clock.now_ms, shard.busy_until_ms)
        self._scheduler.call_at(
            at,
            lambda: self._run_head(shard),
            name=f"dispatch.{self.platform}.shard{shard.index}",
        )

    def _run_head(self, shard: _Shard) -> None:
        shard.pump_armed = False
        if not shard.queue:
            return  # emptied by a shrink reflow between pump and fire
        request = shard.queue.popleft()
        if self._overflow is not None and len(self._overflow):
            # Load leveling: the freed slot pulls buffered work onto
            # whichever lane idles first.
            pulled = self._overflow.take()
            pulled.shard_index = shard.index
            shard.queue.append(pulled)
            self.metrics.counter(
                "admission.leveled", source=self.platform
            ).inc()
            self._buffer_gauge.set(len(self._overflow))
        self._depth_gauges[shard.index].set(len(shard.queue))
        self._inflight_gauge.add(1)
        start = self._clock.now_ms
        request.start_ms = start
        wait_ms = start - request.submit_ms
        self._queue_wait.observe(wait_ms)
        result: Any = None
        error: Optional[ProxyError] = None
        tracer = request.tracer
        if tracer is not None and tracer.enabled:
            span_cm = tracer.span(
                f"queue:{request.operation}",
                platform=self.platform,
                shard=shard.index,
                wait_ms=wait_ms,
                tenant=request.tenant,
            )
        else:
            span_cm = contextlib.nullcontext()
        with self._clock.capture_charge() as capture:
            try:
                with span_cm:
                    result = request.thunk()
            except ProxyError as exc:
                error = exc
        request.charge_ms = capture.charge_ms
        self._service.observe(request.charge_ms)
        shard.busy_until_ms = start + request.charge_ms
        shard.executed += 1
        self._scheduler.call_at(
            shard.busy_until_ms,
            lambda: self._settle(request, result, error),
            name=f"dispatch.{self.platform}.done{request.seq}",
        )
        self._pump(shard)
        # A drain tick: the queue-depth gauge just dropped, so sample it
        # here too — not only at submit/settle — or bursts that drain
        # between submissions would be invisible in the series.
        self._tick()

    def _settle(
        self, request: _Request, result: Any, error: Optional[ProxyError]
    ) -> None:
        if (
            request.coalesce_key is not None
            and self._inflight.get(request.coalesce_key) is request
        ):
            del self._inflight[request.coalesce_key]
        futures = [request.future] + request.attached
        self._inflight_gauge.add(-1)
        if error is not None:
            self._failed.inc(len(futures))
            for future in futures:
                future.fail(error)
        else:
            self._completed.inc(len(futures))
            for future in futures:
                future.resolve(result)
        self._tick()
