"""Deterministic single-threaded futures for the concurrency runtime.

Nothing here involves threads: a :class:`Future` is a settled-exactly-once
result box whose callbacks run synchronously, in registration order, at
the instant it settles.  That makes completion ordering a pure function of
the virtual-time schedule — the property the runtime's byte-identical
trace contract rests on.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.errors import ProxyError, SimulationError

#: Lifecycle states.
PENDING = "pending"
RESOLVED = "resolved"
FAILED = "failed"


class FutureStateError(SimulationError):
    """A future was settled twice or read before it settled."""


class Future:
    """One eventual dispatch result (value or uniform :class:`ProxyError`)."""

    __slots__ = ("_state", "_value", "_error", "_callbacks")

    def __init__(self) -> None:
        self._state = PENDING
        self._value: Any = None
        self._error: Optional[ProxyError] = None
        self._callbacks: List[Callable[["Future"], None]] = []

    # -- construction helpers -------------------------------------------------

    @classmethod
    def resolved(cls, value: Any) -> "Future":
        """A future already settled with ``value`` (cache hits)."""
        future = cls()
        future.resolve(value)
        return future

    @classmethod
    def failed(cls, error: ProxyError) -> "Future":
        """A future already settled with ``error`` (shed admissions)."""
        future = cls()
        future.fail(error)
        return future

    # -- state ---------------------------------------------------------------

    @property
    def state(self) -> str:
        return self._state

    def done(self) -> bool:
        return self._state != PENDING

    @property
    def value(self) -> Any:
        """The resolved value (``None`` while pending or failed)."""
        return self._value

    @property
    def error(self) -> Optional[ProxyError]:
        """The failure (``None`` while pending or resolved)."""
        return self._error

    def result(self) -> Any:
        """The settled value; raises the failure, or if still pending."""
        if self._state == RESOLVED:
            return self._value
        if self._state == FAILED:
            assert self._error is not None
            raise self._error
        raise FutureStateError("future read before it settled")

    # -- settling ------------------------------------------------------------

    def resolve(self, value: Any) -> None:
        if self._state != PENDING:
            raise FutureStateError(f"future already {self._state}")
        self._state = RESOLVED
        self._value = value
        self._fire()

    def fail(self, error: ProxyError) -> None:
        if self._state != PENDING:
            raise FutureStateError(f"future already {self._state}")
        self._state = FAILED
        self._error = error
        self._fire()

    # -- callbacks -----------------------------------------------------------

    def add_done_callback(self, callback: Callable[["Future"], None]) -> None:
        """Run ``callback(self)`` when settled (immediately if already);
        callbacks fire synchronously in registration order."""
        if self.done():
            callback(self)
        else:
            self._callbacks.append(callback)

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Future({self._state})"
