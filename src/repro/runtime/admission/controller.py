"""The admission controller: per-tenant throttling and storm detection.

One :class:`AdmissionController` guards one dispatcher.  At every
submission it charges the tenant's token bucket; an empty bucket turns
the submission into :class:`~repro.errors.ProxyThrottledError` (bridge
code 1013) carrying the exact ``retry_after_ms`` until the bucket can
cover it — the resilience plane's backoff honours the hint.

The controller also watches the *outcome stream* for storms: when
throttle/shed decisions inside one sliding virtual-time window cross
``storm_threshold``, it records a storm incident (surfaced by the
workforce fleet as a ``[fleet-alert]`` line) and triggers a flight-
recorder dump — sustained shedding is exactly the moment an operator
wants the moments-before buffer captured.

Determinism: buckets are pure functions of the submission sequence,
the storm window is virtual time, and storms are recorded in decision
order.
"""

from __future__ import annotations

import collections
from typing import Any, Deque, Dict, List, Mapping, Optional

from repro.errors import ProxyThrottledError
from repro.runtime.admission.bucket import TokenBucket, TokenBucketConfig
from repro.runtime.admission.priority import priority_name

#: The default tenant key for submissions that declare none.
DEFAULT_TENANT = "default"


class AdmissionController:
    """Per-tenant token buckets plus storm bookkeeping for one platform.

    Parameters
    ----------
    bucket:
        Default budget applied to every tenant; ``None`` disables
        throttling (priority shedding and leveling still apply).
    tenant_buckets:
        Per-tenant overrides (an SMS-alert tenant may get a bigger
        burst allowance than a status-poll tenant).
    storm_window_ms / storm_threshold:
        Sliding window and count of throttle+shed decisions that
        constitute a storm.  ``storm_threshold=0`` disables detection.
    """

    def __init__(
        self,
        *,
        platform: str,
        clock,
        metrics,
        bucket: Optional[TokenBucketConfig],
        tenant_buckets: Optional[Mapping[str, TokenBucketConfig]] = None,
        storm_window_ms: float = 1_000.0,
        storm_threshold: int = 8,
        observability=None,
    ) -> None:
        self.platform = platform
        self._clock = clock
        self._metrics = metrics
        self._default_bucket = bucket
        self._tenant_configs = dict(tenant_buckets or {})
        self._buckets: Dict[str, TokenBucket] = {}
        self.storm_window_ms = float(storm_window_ms)
        self.storm_threshold = int(storm_threshold)
        self._obs = observability
        self._window: Deque[float] = collections.deque()
        self._storm_open = False
        #: Storm incidents in decision order (the fleet's alert source).
        self.storms: List[Dict[str, Any]] = []
        self.throttled = 0

    # -- buckets -------------------------------------------------------------

    def bucket_for(self, tenant: str) -> Optional[TokenBucket]:
        config = self._tenant_configs.get(tenant, self._default_bucket)
        if config is None:
            return None
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(config, now_ms=self._clock.now_ms)
            self._buckets[tenant] = bucket
        return bucket

    def buckets(self) -> Dict[str, TokenBucket]:
        return dict(self._buckets)

    def admit(
        self, tenant: str, operation: str, priority: int
    ) -> Optional[ProxyThrottledError]:
        """Charge ``tenant``'s bucket for one submission.

        Returns ``None`` when within budget, or the ready-to-deliver
        1013 error (with ``retry_after_ms`` and structured context)
        when over it.
        """
        bucket = self.bucket_for(tenant)
        if bucket is None:
            return None
        now = self._clock.now_ms
        retry_after = bucket.try_take(now)
        self._metrics.gauge(
            "admission.tokens", source=self.platform, tenant=tenant
        ).set(bucket.tokens)
        if retry_after is None:
            return None
        self.throttled += 1
        self._metrics.counter(
            "admission.throttled", source=self.platform, tenant=tenant
        ).inc()
        context = {
            "platform": self.platform,
            "tenant": tenant,
            "operation": operation,
            "priority": priority_name(priority),
            "retry_after_ms": round(retry_after, 6),
            "tokens": round(bucket.tokens, 6),
        }
        self.record_rejection("throttled", tenant=tenant, operation=operation)
        return ProxyThrottledError(
            f"{operation} throttled: tenant {tenant!r} over budget on "
            f"{self.platform} (retry after {retry_after:.1f}ms)",
            retry_after_ms=retry_after,
            context=context,
        )

    # -- storm detection -----------------------------------------------------

    def record_rejection(self, kind: str, **attributes: Any) -> None:
        """Feed one throttle/shed decision into the storm window."""
        if self.storm_threshold <= 0:
            return
        now = self._clock.now_ms
        window = self._window
        window.append(now)
        floor = now - self.storm_window_ms
        while window and window[0] < floor:
            window.popleft()
        if len(window) < self.storm_threshold:
            self._storm_open = False
            return
        if self._storm_open:
            self.storms[-1]["rejections"] += 1
            return
        # Edge-triggered: one storm record per crossing, not per shed.
        self._storm_open = True
        storm = {
            "t_ms": round(now, 6),
            "platform": self.platform,
            "kind": kind,
            "rejections": len(window),
            "window_ms": round(self.storm_window_ms, 6),
        }
        storm.update(attributes)
        self.storms.append(storm)
        self._metrics.counter("admission.storms", source=self.platform).inc()
        if self._obs is not None and self._obs.flight is not None:
            flight = self._obs.flight
            flight.note(
                "admission.storm",
                platform=self.platform,
                kind=kind,
                rejections=len(window),
            )
            flight.trigger(
                "admission.storm", platform=self.platform, kind=kind
            )
