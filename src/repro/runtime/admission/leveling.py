"""Queue-based load leveling: the shared overflow buffer.

A burst that overflows every shard queue used to be shed at the door.
With leveling, one bounded :class:`OverflowBuffer` sits *between* a
platform's shard lanes: overflow is absorbed there, and whichever shard
idles first drains it — so a short burst costs latency, not loss, and
the buffer turns K independent queue bounds into one shared reservoir.

The buffer is priority-aware like the shard queues: when it is full, an
arriving request may evict a strictly lower-priority occupant (the
newest of the lowest class, so older low-priority work keeps its FIFO
claim as long as possible).  Draining hands back the highest class
first, FIFO within a class.

Determinism: plain list, linear scans, ties broken by submission
sequence number — no hashing, no clocks.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.errors import ConfigurationError


class OverflowBuffer:
    """Bounded, priority-ordered spill reservoir for one dispatcher.

    Items are dispatcher requests — anything carrying ``priority`` and
    ``seq`` attributes.  ``capacity=0`` builds a rejecting buffer
    (leveling disabled but the call sites stay uniform).
    """

    __slots__ = ("capacity", "_items", "absorbed", "drained", "evicted")

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ConfigurationError(
                f"overflow capacity must be >= 0, got {capacity}"
            )
        self.capacity = capacity
        self._items: List[Any] = []
        #: Requests that entered the buffer instead of being shed.
        self.absorbed = 0
        #: Requests handed to an idling shard.
        self.drained = 0
        #: Occupants displaced by higher-priority arrivals.
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._items)

    def offer(self, request: Any, *, force: bool = False) -> Tuple[bool, Optional[Any]]:
        """Absorb ``request``; returns ``(accepted, evicted_victim)``.

        When full, a strictly lower-priority occupant (newest of the
        lowest class) is evicted to make room; with no such victim the
        offer is refused.  ``force=True`` bypasses the bound entirely —
        used by shard shrinking, which must never drop already-admitted
        work.
        """
        if force or len(self._items) < self.capacity:
            self._items.append(request)
            self.absorbed += 1
            return True, None
        victim = self._victim()
        if victim is None or victim.priority >= request.priority:
            return False, None
        self._items.remove(victim)
        self._items.append(request)
        self.absorbed += 1
        self.evicted += 1
        return True, victim

    def _victim(self) -> Optional[Any]:
        """The occupant to displace: lowest priority, newest arrival."""
        if not self._items:
            return None
        return min(self._items, key=lambda item: (item.priority, -item.seq))

    def take(self) -> Optional[Any]:
        """Drain one request: highest priority first, FIFO within class."""
        if not self._items:
            return None
        head = min(self._items, key=lambda item: (-item.priority, item.seq))
        self._items.remove(head)
        self.drained += 1
        return head
