"""Token buckets on the virtual clock.

The classic throttling shape: a bucket holds up to ``capacity`` tokens,
refills continuously at ``rate_per_s`` tokens per (virtual) second, and
a request is admitted iff it can take a whole token *now*.  Refill is
computed lazily from elapsed virtual time at each take — no timers, no
per-tick bookkeeping — so an idle tenant costs nothing.

Determinism contract: the bucket's state is a pure function of the
sequence of ``(now_ms, amount)`` takes.  Tokens never go negative (a
rejected take leaves the bucket untouched), and a rejected take reports
``retry_after_ms`` — the exact virtual time until the deficit refills —
which is what error 1013 carries back to the resilience plane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TokenBucketConfig:
    """Immutable throttle budget for one tenant (or the default).

    ``capacity`` bounds the burst a tenant may land in one instant;
    ``rate_per_s`` bounds the sustained rate.  ``initial`` (default:
    full) sets the starting balance — a cold-start-empty bucket models a
    tenant that must earn its first burst.
    """

    rate_per_s: float = 10.0
    capacity: float = 10.0
    initial: Optional[float] = None

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ConfigurationError(
                f"rate_per_s must be > 0, got {self.rate_per_s}"
            )
        if self.capacity < 1.0:
            raise ConfigurationError(
                f"capacity must be >= 1, got {self.capacity}"
            )
        if self.initial is not None and not 0.0 <= self.initial <= self.capacity:
            raise ConfigurationError(
                f"initial must be in [0, capacity], got {self.initial}"
            )


class TokenBucket:
    """One tenant's refillable budget (see module docstring)."""

    __slots__ = ("config", "tokens", "_last_ms", "taken", "rejected")

    def __init__(self, config: TokenBucketConfig, *, now_ms: float = 0.0) -> None:
        self.config = config
        self.tokens = (
            config.capacity if config.initial is None else float(config.initial)
        )
        self._last_ms = float(now_ms)
        #: Successful takes (admitted requests).
        self.taken = 0
        #: Rejected takes (throttled requests).
        self.rejected = 0

    def _refill(self, now_ms: float) -> None:
        # The virtual clock is monotonic; tolerate equal stamps.
        elapsed_ms = max(0.0, now_ms - self._last_ms)
        if elapsed_ms > 0.0:
            self.tokens = min(
                self.config.capacity,
                self.tokens + self.config.rate_per_s * elapsed_ms / 1_000.0,
            )
            self._last_ms = now_ms

    def peek(self, now_ms: float) -> float:
        """The balance at ``now_ms`` (refills as a side effect)."""
        self._refill(now_ms)
        return self.tokens

    def try_take(self, now_ms: float, amount: float = 1.0) -> Optional[float]:
        """Take ``amount`` tokens at virtual instant ``now_ms``.

        Returns ``None`` when admitted, or the ``retry_after_ms`` hint
        when rejected — the virtual time until refill covers the
        deficit.  A rejected take never drives the balance negative.
        """
        self._refill(now_ms)
        if self.tokens >= amount:
            self.tokens -= amount
            self.taken += 1
            return None
        self.rejected += 1
        deficit = amount - self.tokens
        return deficit / self.config.rate_per_s * 1_000.0
