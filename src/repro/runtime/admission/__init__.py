"""The adaptive admission-control plane.

PR 4's dispatcher had one static defense: a bounded per-shard queue
that sheds overflow with error 1012.  This package makes overload a
*policy* rather than an error path, composing four mechanisms the
dispatcher consults at submission and drain time:

* **token-bucket throttling** (:mod:`~repro.runtime.admission.bucket`,
  :mod:`~repro.runtime.admission.controller`) — per-tenant budgets on
  the virtual clock; over-budget submissions fail fast with the
  retryable 1013 (``retry_after_ms`` honoured by the resilience
  plane's backoff);
* **priority-aware shedding**
  (:mod:`~repro.runtime.admission.priority`) — operations declare a
  class (status polls < report POSTs < SMS alerts); a full queue
  evicts the lowest class first instead of rejecting at the door;
* **queue-based load leveling**
  (:mod:`~repro.runtime.admission.leveling`) — a shared overflow
  buffer between a platform's shards absorbs bursts and drains into
  whichever lane idles first;
* **shard autoscaling** (:mod:`~repro.runtime.admission.autoscaler`)
  — a controller reads the TimeSeriesSampler's queue-depth /
  utilization series each drain tick and resizes the dispatcher
  between bounds, with hysteresis and cooldown.

Everything runs on the virtual clock and is seeded-deterministic; the
whole plane is off by default (``ConcurrencyRuntime(admission=None)``),
in which case the dispatcher's fast path pays one ``None`` check.
See ``docs/ADMISSION.md`` for the operator view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.errors import ConfigurationError
from repro.runtime.admission.autoscaler import AutoscalerConfig, ShardAutoscaler
from repro.runtime.admission.bucket import TokenBucket, TokenBucketConfig
from repro.runtime.admission.controller import (
    DEFAULT_TENANT,
    AdmissionController,
)
from repro.runtime.admission.leveling import OverflowBuffer
from repro.runtime.admission.priority import (
    DEFAULT_PRIORITY_MAP,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NAMES,
    PRIORITY_NORMAL,
    classify_operation,
    priority_name,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AutoscalerConfig",
    "DEFAULT_PRIORITY_MAP",
    "DEFAULT_TENANT",
    "OverflowBuffer",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PRIORITY_NAMES",
    "PRIORITY_NORMAL",
    "ShardAutoscaler",
    "TokenBucket",
    "TokenBucketConfig",
    "classify_operation",
    "priority_name",
]


@dataclass(frozen=True)
class AdmissionConfig:
    """One deployment's admission policy (shared by every dispatcher).

    Every mechanism is individually optional: ``bucket=None`` disables
    throttling, ``overflow_capacity=0`` disables leveling,
    ``autoscaler=None`` pins the shard count.  The *default* config
    enables all four with conservative constants.
    """

    #: Default per-tenant budget; ``None`` disables throttling.
    bucket: Optional[TokenBucketConfig] = field(
        default_factory=TokenBucketConfig
    )
    #: Per-tenant overrides of :attr:`bucket`.
    tenant_buckets: Mapping[str, TokenBucketConfig] = field(
        default_factory=dict
    )
    #: Operation → priority class; unknown operations are NORMAL.
    priority_map: Mapping[str, int] = field(
        default_factory=lambda: dict(DEFAULT_PRIORITY_MAP)
    )
    #: Shared overflow buffer bound per dispatcher (0 disables).
    overflow_capacity: int = 16
    #: Autoscaler control constants; ``None`` pins the shard count.
    autoscaler: Optional[AutoscalerConfig] = field(
        default_factory=AutoscalerConfig
    )
    #: Throttle/shed decisions within ``storm_window_ms`` that
    #: constitute a storm (0 disables detection).
    storm_window_ms: float = 1_000.0
    storm_threshold: int = 8

    def __post_init__(self) -> None:
        if self.overflow_capacity < 0:
            raise ConfigurationError("overflow_capacity must be >= 0")
        if self.storm_window_ms < 0:
            raise ConfigurationError("storm_window_ms must be >= 0")
        if self.storm_threshold < 0:
            raise ConfigurationError("storm_threshold must be >= 0")

    def classify(self, operation: str) -> int:
        """The priority class for ``operation`` under this policy."""
        return classify_operation(operation, self.priority_map)
