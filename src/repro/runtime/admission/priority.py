"""Priority classes for admission decisions.

Operations declare how much they matter so overload policy can be
*selective*: a full queue sheds status polls before location reports,
and reports before SMS alerts, instead of rejecting whatever happens to
arrive last.  Three classes are enough to express the workforce app's
actual value ordering (the paper's Figure 1 traffic):

* ``PRIORITY_LOW`` — cheap, repeated, idempotent reads whose loss costs
  one polling interval (status GETs, property polls);
* ``PRIORITY_NORMAL`` — the business payload (location report POSTs);
* ``PRIORITY_HIGH`` — operator-facing escalations (SMS alerts) that
  must survive any overload the runtime can absorb.

The integer values are ordered (higher = more valuable) and stable —
they appear verbatim in ``queue.shed`` span events, shed-error context
and the ``admission.shed`` metric labels, so exports stay diffable.
"""

from __future__ import annotations

from typing import Mapping

PRIORITY_LOW = 0
PRIORITY_NORMAL = 1
PRIORITY_HIGH = 2

#: Stable names for labels, span events and rendered summaries.
PRIORITY_NAMES: Mapping[int, str] = {
    PRIORITY_LOW: "low",
    PRIORITY_NORMAL: "normal",
    PRIORITY_HIGH: "high",
}

#: Default operation → class mapping.  Keys are the operation strings
#: the runtime's conveniences and the workforce fleet actually submit;
#: unknown operations fall back to ``PRIORITY_NORMAL`` (never silently
#: the sheddable class).
DEFAULT_PRIORITY_MAP: Mapping[str, int] = {
    # idempotent, repeated reads: cheapest to lose
    "get": PRIORITY_LOW,
    "getProperty": PRIORITY_LOW,
    "getLocation": PRIORITY_LOW,
    # the business payload
    "post": PRIORITY_NORMAL,
    # operator escalations
    "sendTextMessage": PRIORITY_HIGH,
    "sendSMS": PRIORITY_HIGH,
}


def priority_name(priority: int) -> str:
    """Render a class value for labels (unknown values pass through)."""
    return PRIORITY_NAMES.get(priority, str(priority))


def classify_operation(
    operation: str, priority_map: Mapping[str, int] = DEFAULT_PRIORITY_MAP
) -> int:
    """The priority class for ``operation`` under ``priority_map``."""
    return priority_map.get(operation, PRIORITY_NORMAL)
