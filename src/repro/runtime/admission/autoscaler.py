"""The metrics-driven shard autoscaler.

PR 5 built the loop's sensor half: the TimeSeriesSampler records
per-shard ``runtime.queue_depth`` (and ``runtime.inflight``) series on
every scheduling tick.  This module closes the loop — a
:class:`ShardAutoscaler` reads those series at each drain tick and
grows or shrinks its dispatcher's live shard count between configured
bounds, so a diurnal wave gets lanes when the queues build and gives
them back when traffic ebbs.

Control shape (the classic auto-scaling-group pattern, made
deterministic):

* **signal** — mean queued requests per lane (sampler series when one
  is installed, live queue depths otherwise) plus lane utilization;
* **hysteresis** — the signal must persist for ``hysteresis_ticks``
  consecutive evaluations before any resize, so one spiky tick never
  flaps the fleet;
* **cooldown** — after a resize the scaler holds for ``cooldown_ms`` of
  virtual time, letting the new lane count absorb the backlog before
  being judged.

Determinism: evaluations happen at the runtime's drain ticks (virtual
instants), every decision is pure arithmetic over sampled series, and
the resize history is exported in decision order — identically-seeded
runs resize identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class AutoscalerConfig:
    """Bounds and control constants for one dispatcher's scaler.

    ``scale_up_depth`` / ``scale_down_depth`` are mean queued requests
    per lane; the gap between them is the hysteresis band.  Scale-down
    additionally requires lane utilization at or below
    ``scale_down_utilization`` so a deep-but-draining backlog is never
    answered by removing lanes.
    """

    min_shards: int = 1
    max_shards: int = 8
    scale_up_depth: float = 4.0
    scale_down_depth: float = 0.5
    scale_down_utilization: float = 0.5
    hysteresis_ticks: int = 3
    cooldown_ms: float = 1_000.0
    step: int = 1

    def __post_init__(self) -> None:
        if self.min_shards < 1:
            raise ConfigurationError("min_shards must be >= 1")
        if self.max_shards < self.min_shards:
            raise ConfigurationError("max_shards must be >= min_shards")
        if self.scale_down_depth > self.scale_up_depth:
            raise ConfigurationError(
                "scale_down_depth must not exceed scale_up_depth"
            )
        if self.hysteresis_ticks < 1:
            raise ConfigurationError("hysteresis_ticks must be >= 1")
        if self.cooldown_ms < 0:
            raise ConfigurationError("cooldown_ms must be >= 0")
        if self.step < 1:
            raise ConfigurationError("step must be >= 1")


class ShardAutoscaler:
    """Grows/shrinks one dispatcher between the configured bounds."""

    def __init__(
        self,
        dispatcher,
        config: AutoscalerConfig,
        *,
        sampler=None,
        observability=None,
    ) -> None:
        self.dispatcher = dispatcher
        self.config = config
        self._sampler = sampler
        self._obs = observability
        metrics = (
            observability.metrics
            if observability is not None
            else dispatcher.metrics
        )
        label = dict(source=dispatcher.platform)
        self._shards_gauge = metrics.gauge("admission.shards", **label)
        self._shards_gauge.set(dispatcher.shards)
        self._resizes_up = metrics.counter(
            "admission.autoscale_resizes", direction="up", **label
        )
        self._resizes_down = metrics.counter(
            "admission.autoscale_resizes", direction="down", **label
        )
        self._up_streak = 0
        self._down_streak = 0
        self._last_resize_ms: Optional[float] = None
        #: Decision history: dicts with t_ms / from / to / direction /
        #: mean_depth / utilization (exported by the admission bench).
        self.resizes: List[Dict[str, Any]] = []

    # -- signal --------------------------------------------------------------

    def _sampled_depths(self) -> Optional[List[float]]:
        """Per-lane queue depth from the installed sampler's series
        (last recorded value per live shard), or ``None`` when the
        sampler has no matching series yet."""
        if self._sampler is None:
            return None
        live = self.dispatcher.shards
        depths: Dict[int, float] = {}
        for series in self._sampler.tracked_series():
            if series.metric != "runtime.queue_depth":
                continue
            if series.labels.get("source") != self.dispatcher.platform:
                continue
            try:
                shard = int(series.labels.get("shard", ""))
            except ValueError:
                continue
            if shard >= live or not series.points:
                continue
            depths[shard] = series.points[-1][1]
        if not depths:
            return None
        return [depths.get(index, 0.0) for index in range(live)]

    def signal(self) -> Dict[str, float]:
        """The current control inputs: mean depth per lane, utilization."""
        depths = self._sampled_depths()
        if depths is None:
            depths = [float(d) for d in self.dispatcher.queue_depths()]
        lanes = max(1, self.dispatcher.shards)
        return {
            "mean_depth": sum(depths) / lanes,
            "utilization": self.dispatcher.busy_lane_count() / lanes,
        }

    # -- control -------------------------------------------------------------

    def evaluate(self, now_ms: float) -> Optional[int]:
        """One control tick; returns the new shard count on a resize."""
        config = self.config
        inputs = self.signal()
        mean_depth = inputs["mean_depth"]
        utilization = inputs["utilization"]
        if mean_depth >= config.scale_up_depth:
            self._up_streak += 1
            self._down_streak = 0
        elif (
            mean_depth <= config.scale_down_depth
            and utilization <= config.scale_down_utilization
        ):
            self._down_streak += 1
            self._up_streak = 0
        else:
            self._up_streak = 0
            self._down_streak = 0
        in_cooldown = (
            self._last_resize_ms is not None
            and now_ms - self._last_resize_ms < config.cooldown_ms
        )
        if in_cooldown:
            return None
        current = self.dispatcher.shards
        target = current
        if self._up_streak >= config.hysteresis_ticks:
            target = min(config.max_shards, current + config.step)
        elif self._down_streak >= config.hysteresis_ticks:
            target = max(config.min_shards, current - config.step)
        if target == current:
            return None
        self._up_streak = 0
        self._down_streak = 0
        self._last_resize_ms = now_ms
        self.dispatcher.resize(target)
        direction = "up" if target > current else "down"
        (self._resizes_up if target > current else self._resizes_down).inc()
        self._shards_gauge.set(target)
        self.resizes.append(
            {
                "t_ms": round(now_ms, 6),
                "from": current,
                "to": target,
                "direction": direction,
                "mean_depth": round(mean_depth, 6),
                "utilization": round(utilization, 6),
            }
        )
        if self._obs is not None and self._obs.tracer.enabled:
            tracer = self._obs.tracer
            # Resizes happen at drain ticks, outside any invocation span,
            # so the event needs its own (zero-duration) anchor span to
            # survive into trace exports.
            with tracer.span(
                "autoscale:resize",
                platform=self.dispatcher.platform,
                outcome=direction,
            ):
                tracer.event(
                    "autoscale.resize",
                    platform=self.dispatcher.platform,
                    from_shards=current,
                    to_shards=target,
                    direction=direction,
                    mean_depth=round(mean_depth, 3),
                )
        if self._obs is not None and self._obs.flight is not None:
            self._obs.flight.note(
                "autoscale.resize",
                platform=self.dispatcher.platform,
                from_shards=current,
                to_shards=target,
                direction=direction,
            )
        return target
