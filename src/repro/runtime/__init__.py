"""The deterministic concurrency runtime.

The paper evaluates one app invoking one proxy at a time; this package is
what lets *many* agents drive *many* proxies concurrently on the shared
virtual-time substrate without giving up reproducibility:

* :class:`~repro.runtime.scheduler.CooperativeScheduler` — N agent
  workloads as cooperative tasks, priority + FIFO tie-breaking, seeded;
* :class:`~repro.runtime.dispatcher.Dispatcher` — per-platform worker
  shards with bounded queues, load-shedding admission control and
  in-flight request coalescing, in front of ``MProxy``;
* :mod:`~repro.runtime.coalesce` — staleness-window location fix reuse
  and a ``setProperty``-invalidated property-read cache;
* :class:`ConcurrencyRuntime` — the bundle the workforce fleet and the
  benchmarks actually use.

Determinism contract (see ``docs/CONCURRENCY.md``): given the same seed
and workload, two runs produce byte-identical trace exports.  Everything
is single-threaded; concurrency is *modelled* — shard lanes overlap in
virtual time via :meth:`SimulatedClock.capture_charge` — never raced.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

from repro.obs import Observability
from repro.runtime.admission import (
    AdmissionConfig,
    AdmissionController,
    AutoscalerConfig,
    ShardAutoscaler,
    TokenBucketConfig,
)
from repro.runtime.coalesce import LocationFixCache, PropertyReadCache
from repro.runtime.dispatcher import Dispatcher
from repro.runtime.futures import Future, FutureStateError
from repro.runtime import scheduler as task_states
from repro.runtime.scheduler import AgentTask, CooperativeScheduler
from repro.util.clock import Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.distrib.config import DistribConfig
    from repro.distrib.runtime import DistribRuntime

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AgentTask",
    "AutoscalerConfig",
    "ConcurrencyRuntime",
    "CooperativeScheduler",
    "Dispatcher",
    "Future",
    "FutureStateError",
    "LocationFixCache",
    "PropertyReadCache",
    "ShardAutoscaler",
    "TokenBucketConfig",
]


class ConcurrencyRuntime:
    """One deployment's concurrency plane.

    Bundles the cooperative task scheduler, lazily-created per-platform
    dispatchers and the read caches over one shared
    :class:`~repro.util.clock.Scheduler`.

    Parameters
    ----------
    scheduler:
        The world's event scheduler (a fleet's, a scenario's).
    shards / queue_depth:
        Defaults for every platform dispatcher; override per platform
        with ``shards_per_platform``.
    seed:
        Seeds the cooperative scheduler's RNG (the only randomness
        workloads may use).
    observability:
        Hub receiving the runtime's own ``runtime.*`` metrics; defaults
        to a disabled hub (live metrics, no-op tracer).  Per-request
        spans always go to the *submitting proxy's* tracer so queue
        spans join that proxy's span tree.
    location_staleness_ms:
        Window for :meth:`get_location` fix reuse.
    admission:
        Optional :class:`~repro.runtime.admission.AdmissionConfig`
        enabling the adaptive admission plane — token-bucket
        throttling, priority-aware shedding, overflow leveling and (if
        its ``autoscaler`` field is set) a per-dispatcher shard
        autoscaler evaluated at every drain tick.  ``None`` (the
        default) keeps static bounded queues.
    distrib:
        Optional :class:`~repro.distrib.config.DistribConfig` mounting
        the distributed data tier (see ``docs/DISTRIBUTION.md``): the
        runtime's read caches become region-aware tiered caches, a
        :class:`~repro.distrib.runtime.DistribRuntime` is exposed as
        ``self.distrib``, and its anti-entropy gossip tick rides the
        cooperative scheduler's drain instants.  Every cross-region hop
        the tier makes is causally stamped (``causal.vc`` /
        ``causal.origin`` span attributes, per-region vector clocks) and
        audited for happens-before violations — see the ``causal``
        section of ``docs/OBSERVABILITY.md``.  ``None`` (the default)
        keeps the single-node caches.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        *,
        shards: int = 2,
        queue_depth: int = 32,
        seed: int = 0,
        observability: Optional[Observability] = None,
        shards_per_platform: Optional[Dict[str, int]] = None,
        location_staleness_ms: float = 5_000.0,
        admission: Optional[AdmissionConfig] = None,
        distrib: Optional["DistribConfig"] = None,
    ) -> None:
        self.scheduler = scheduler
        self.observability = (
            observability if observability is not None else Observability.disabled()
        )
        # Queue spans must stamp the shared virtual clock, not a hub default.
        self.observability.bind_clock(scheduler.clock)
        self.default_shards = shards
        self.queue_depth = queue_depth
        self.seed = seed
        self.shards_per_platform = dict(shards_per_platform or {})
        self.location_staleness_ms = location_staleness_ms
        self.admission = admission
        self.tasks = CooperativeScheduler(
            scheduler, seed=seed, observability=self.observability
        )
        self._dispatchers: Dict[str, Dispatcher] = {}
        self._autoscalers: Dict[str, ShardAutoscaler] = {}
        self._location_caches: Dict[int, LocationFixCache] = {}
        self.distrib: Optional["DistribRuntime"] = None
        if distrib is not None:
            # Imported lazily: repro.distrib is an optional tier and the
            # runtime package must stay importable without it in scope.
            from repro.distrib.runtime import DistribRuntime

            self.distrib = DistribRuntime(
                scheduler, distrib, observability=self.observability
            )
            self.properties = self.distrib.property_cache()
            # Gossip repair rides the same control instants as autoscaling.
            self.tasks.add_drain_hook(self.distrib.tick)
        else:
            self.properties = PropertyReadCache(self.observability.metrics)
        if admission is not None and admission.autoscaler is not None:
            # Fleet-driven runs advance time through the cooperative
            # scheduler, so the control loop rides its drain passes.
            self.tasks.add_drain_hook(self.evaluate_autoscalers)

    # -- dispatchers ---------------------------------------------------------

    def dispatcher(self, platform: str) -> Dispatcher:
        """The (lazily created) dispatcher serving one platform."""
        dispatcher = self._dispatchers.get(platform)
        if dispatcher is None:
            dispatcher = Dispatcher(
                self.scheduler,
                platform=platform,
                shards=self.shards_per_platform.get(platform, self.default_shards),
                queue_depth=self.queue_depth,
                observability=self.observability,
                admission=self.admission,
            )
            self._dispatchers[platform] = dispatcher
            if self.admission is not None and self.admission.autoscaler is not None:
                self._autoscalers[platform] = ShardAutoscaler(
                    dispatcher,
                    self.admission.autoscaler,
                    sampler=self.observability.sampler,
                    observability=self.observability,
                )
        return dispatcher

    def dispatchers(self) -> Dict[str, Dispatcher]:
        return dict(self._dispatchers)

    def autoscalers(self) -> Dict[str, ShardAutoscaler]:
        """Per-platform shard autoscalers (empty when admission is off)."""
        return dict(self._autoscalers)

    def evaluate_autoscalers(self) -> None:
        """One control tick for every attached autoscaler (called at
        drain instants; safe to call ad hoc in tests)."""
        now = self.scheduler.clock.now_ms
        for platform in sorted(self._autoscalers):
            self._autoscalers[platform].evaluate(now)

    def submit(
        self,
        platform: str,
        operation: str,
        thunk: Callable[[], Any],
        *,
        key: Optional[str] = None,
        coalesce_key: Optional[str] = None,
        tracer=None,
        priority: Optional[int] = None,
        tenant: Optional[str] = None,
    ) -> Future:
        """Queue one invocation on ``platform``'s dispatcher."""
        return self.dispatcher(platform).submit(
            operation,
            thunk,
            key=key,
            coalesce_key=coalesce_key,
            tracer=tracer,
            priority=priority,
            tenant=tenant,
        )

    # -- proxy-aware conveniences -------------------------------------------

    @staticmethod
    def _tracer_of(proxy):
        observability = proxy.observability
        return None if observability is None else observability.tracer

    def submit_invocation(
        self,
        proxy,
        operation: str,
        thunk: Callable[[], Any],
        *,
        key: Optional[str] = None,
        coalesce_key: Optional[str] = None,
        priority: Optional[int] = None,
        tenant: Optional[str] = None,
    ) -> Future:
        """Queue a call on ``proxy``; platform and tracer are derived
        from its binding plane and attached observability hub."""
        return self.submit(
            proxy.binding.platform,
            operation,
            thunk,
            key=key,
            coalesce_key=coalesce_key,
            tracer=self._tracer_of(proxy),
            priority=priority,
            tenant=tenant,
        )

    def http_get(
        self,
        http_proxy,
        url: str,
        *,
        coalesce: bool = True,
        tenant: Optional[str] = None,
    ) -> Future:
        """Idempotent GET through the dispatcher.

        With ``coalesce`` on, concurrent GETs to the same URL on the
        same platform share one network round trip — the in-flight
        window is the primary request's queue + service interval.
        """
        platform = http_proxy.binding.platform
        coalesce_key = f"{platform}:GET:{url}" if coalesce else None
        return self.submit_invocation(
            http_proxy,
            "get",
            lambda: http_proxy.get(url),
            coalesce_key=coalesce_key,
            tenant=tenant,
        )

    def get_location(
        self,
        location_proxy,
        *,
        fresh: bool = False,
        tenant: Optional[str] = None,
    ) -> Future:
        """A location fix, reusing one younger than the staleness window.

        ``fresh=True`` bypasses (but still refreshes) the cache.  Fix
        requests for the same proxy also coalesce in flight — ten agents
        asking at once cost one GPS read.
        """
        cache = self._location_caches.get(id(location_proxy))
        if cache is None:
            if self.distrib is not None:
                cache = self.distrib.location_cache(
                    location_proxy.binding.platform
                )
            else:
                cache = LocationFixCache(
                    self.scheduler.clock,
                    staleness_ms=self.location_staleness_ms,
                    metrics=self.observability.metrics,
                    label=location_proxy.binding.platform,
                )
            self._location_caches[id(location_proxy)] = cache
        if not fresh:
            cached = cache.get()
            if cached is not None:
                return Future.resolved(cached)
        future = self.submit_invocation(
            location_proxy,
            "getLocation",
            location_proxy.get_location,
            coalesce_key=f"fix:{id(location_proxy)}",
            tenant=tenant,
        )

        def remember(done: Future) -> None:
            if done.error is None:
                cache.put(done.value)

        future.add_done_callback(remember)
        return future

    def get_property(self, proxy, key: str) -> Any:
        """Cached descriptor/property lookup (invalidated by any
        ``set_property`` on the proxy)."""
        return self.properties.get(proxy, key)

    # -- driving -------------------------------------------------------------

    def spawn(self, name: str, generator, *, priority: int = 0) -> AgentTask:
        """Spawn a cooperative agent task (see CooperativeScheduler)."""
        return self.tasks.spawn(name, generator, priority=priority)

    def run_for(self, delta_ms: float) -> int:
        return self.scheduler.run_for(delta_ms)

    @property
    def quiescent(self) -> bool:
        """Every dispatcher lane idle; every task finished (or parked on
        an externally-settled future, which only the caller can move)."""
        if not all(d.idle for d in self._dispatchers.values()):
            return False
        return all(
            task.finished or task.state == task_states.WAITING
            for task in self.tasks.tasks
        )

    def drain(self, *, max_steps: int = 100_000) -> int:
        """Advance virtual time until the runtime is quiescent.

        Unlike ``Scheduler.drain`` this tolerates periodic substrate
        timers (GPS polling etc.): it stops on *runtime* quiescence —
        all shard lanes drained, all tasks done — not on an empty heap.
        Returns callbacks executed.
        """
        executed = 0
        for _ in range(max_steps):
            if self._autoscalers:
                self.evaluate_autoscalers()
            if self.quiescent:
                return executed
            candidates = [
                horizon
                for horizon in (
                    d.next_event_ms() for d in self._dispatchers.values()
                )
                if horizon is not None
            ]
            deadline = self.scheduler.next_deadline_ms()
            if deadline is not None:
                candidates.append(deadline)
            if not candidates:
                return executed  # nothing scheduled can move the state
            target = max(min(candidates), self.scheduler.clock.now_ms)
            executed += self.scheduler.run_until(target)
        raise RuntimeError(
            f"drain did not reach quiescence within {max_steps} steps"
        )
