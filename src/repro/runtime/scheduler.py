"""The cooperative agent-task scheduler (virtual time, seeded).

N agent workloads run as plain Python generators multiplexed over the one
:class:`~repro.util.clock.Scheduler` the device substrate, resilience
plane and observability plane already share.  A task yields:

* ``None`` — give up the step; the task re-queues at the same instant and
  runs again after every other currently-ready task of equal priority;
* a number — sleep that many virtual milliseconds;
* a :class:`~repro.runtime.futures.Future` — park until it settles; the
  task resumes with the resolved value, or the failure is thrown into the
  generator (so tasks handle uniform errors with ordinary ``try``).

Determinism contract: ready tasks step in (priority desc, wake order)
sequence — priority first, FIFO tie-breaking — and the only randomness
available to workloads is :attr:`CooperativeScheduler.rng`, seeded at
construction.  Two schedulers built with the same seed and driven with
the same workload therefore interleave *identically*, down to the byte,
which the property suite asserts on trace exports.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.errors import ConfigurationError, ProxyError
from repro.runtime.futures import Future
from repro.util.clock import Scheduler

#: Task lifecycle states.
READY = "ready"
RUNNING = "running"
SLEEPING = "sleeping"
WAITING = "waiting"
DONE = "done"
FAILED = "failed"

#: States a task can be woken from.
_PARKED = (SLEEPING, WAITING)


class AgentTask:
    """One cooperatively-scheduled workload."""

    __slots__ = (
        "name", "priority", "seq", "state", "result", "error",
        "_generator", "_send_value", "_throw_error", "steps",
    )

    def __init__(
        self,
        name: str,
        generator: Generator[Any, Any, Any],
        *,
        priority: int = 0,
        seq: int = 0,
    ) -> None:
        self.name = name
        self.priority = priority
        self.seq = seq
        self.state = READY
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.steps = 0
        self._generator = generator
        self._send_value: Any = None
        self._throw_error: Optional[ProxyError] = None

    @property
    def finished(self) -> bool:
        return self.state in (DONE, FAILED)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AgentTask({self.name!r}, {self.state})"


class CooperativeScheduler:
    """Priority + FIFO cooperative multiplexer over the virtual clock.

    Parameters
    ----------
    base:
        The device world's event scheduler (and its clock) — tasks ride
        the same heap as GPS fixes and SMS deliveries, so cross-layer
        timing stays reproducible.
    seed:
        Seeds :attr:`rng`, the only RNG workloads may draw from.
    observability:
        Optional hub; task lifecycle counters land in its metrics
        registry as ``runtime.tasks_*`` series (labelled
        ``source=<name>``, matching the dispatcher's convention).  When
        the hub carries a flight recorder, a task crash triggers a dump
        capturing the moments before the failure.
    """

    def __init__(
        self,
        base: Scheduler,
        *,
        seed: int = 0,
        observability=None,
        name: str = "coop",
    ) -> None:
        self._base = base
        self.name = name
        self.rng = random.Random(f"runtime:{seed}")
        self.tasks: List[AgentTask] = []
        self._ready: List[Tuple[int, int, AgentTask]] = []
        self._spawn_seq = itertools.count()
        self._wake_seq = itertools.count()
        self._drain_armed = False
        self._drain_hooks: List[Callable[[], None]] = []
        self._obs = observability
        if observability is not None:
            metrics = observability.metrics
        else:
            from repro.obs import MetricsRegistry

            metrics = MetricsRegistry()
        self._spawned = metrics.counter("runtime.tasks_spawned", source=name)
        self._completed = metrics.counter("runtime.tasks_completed", source=name)
        self._failed = metrics.counter("runtime.tasks_failed", source=name)
        self._steps = metrics.counter("runtime.task_steps", source=name)

    @property
    def clock(self):
        return self._base.clock

    @property
    def base(self) -> Scheduler:
        return self._base

    # -- spawning ------------------------------------------------------------

    def spawn(
        self,
        name: str,
        generator: Generator[Any, Any, Any],
        *,
        priority: int = 0,
    ) -> AgentTask:
        """Register a workload; it takes its first step at the current
        instant, ordered against other ready tasks by (priority desc,
        spawn order)."""
        task = AgentTask(
            name, generator, priority=priority, seq=next(self._spawn_seq)
        )
        self.tasks.append(task)
        self._spawned.inc()
        self._make_ready(task)
        return task

    def add_drain_hook(self, hook: Callable[[], None]) -> None:
        """Register a callback to run at the end of every drain pass.

        Drain passes are the runtime's natural control instants — every
        ready task has stepped and virtual time is about to move — which
        is where feedback controllers (the admission plane's shard
        autoscaler) sample their signals.  Hooks run in registration
        order, after the task steps and before the observability tick,
        so anything a hook changes lands in the same tick's samples.
        """
        self._drain_hooks.append(hook)

    # -- driving -------------------------------------------------------------

    def run_for(self, delta_ms: float) -> int:
        """Advance the shared world; returns callbacks executed."""
        return self._base.run_for(delta_ms)

    def run_until(self, until_ms: float) -> int:
        return self._base.run_until(until_ms)

    # -- introspection -------------------------------------------------------

    def failed_tasks(self) -> List[AgentTask]:
        return [task for task in self.tasks if task.state == FAILED]

    def unfinished_tasks(self) -> List[AgentTask]:
        return [task for task in self.tasks if not task.finished]

    @property
    def all_finished(self) -> bool:
        return all(task.finished for task in self.tasks)

    # -- internals -----------------------------------------------------------

    def _make_ready(self, task: AgentTask) -> None:
        task.state = READY
        heapq.heappush(self._ready, (-task.priority, next(self._wake_seq), task))
        if not self._drain_armed:
            self._drain_armed = True
            self._base.call_at(
                self.clock.now_ms, self._drain, name=f"{self.name}.drain"
            )

    def _wake(self, task: AgentTask) -> None:
        if task.state in _PARKED:
            self._make_ready(task)

    def _drain(self) -> None:
        self._drain_armed = False
        while self._ready:
            _, _, task = heapq.heappop(self._ready)
            if task.state != READY:
                continue  # woken twice, or already stepped
            self._step(task)
        for hook in self._drain_hooks:
            hook()
        if self._obs is not None:
            self._obs.tick()

    def _step(self, task: AgentTask) -> None:
        task.state = RUNNING
        task.steps += 1
        self._steps.inc()
        throw, task._throw_error = task._throw_error, None
        send, task._send_value = task._send_value, None
        try:
            if throw is not None:
                yielded = task._generator.throw(throw)
            else:
                yielded = task._generator.send(send)
        except StopIteration as stop:
            task.state = DONE
            task.result = stop.value
            self._completed.inc()
        except Exception as exc:  # task isolation: one bad agent ≠ dead fleet
            task.state = FAILED
            task.error = exc
            self._failed.inc()
            if self._obs is not None and self._obs.flight is not None:
                flight = self._obs.flight
                flight.note(
                    "task.crashed",
                    task=task.name,
                    scheduler=self.name,
                    error=str(exc),
                    steps=task.steps,
                )
                flight.trigger(
                    "task.crashed",
                    task=task.name,
                    scheduler=self.name,
                    error=str(exc),
                )
        else:
            self._park(task, yielded)

    def _park(self, task: AgentTask, yielded: Any) -> None:
        if yielded is None:
            self._make_ready(task)
            return
        if isinstance(yielded, Future):
            task.state = WAITING
            yielded.add_done_callback(self._resume_from(task))
            return
        if isinstance(yielded, (int, float)) and not isinstance(yielded, bool):
            if yielded < 0:
                self._fail_bad_yield(task, yielded)
                return
            task.state = SLEEPING
            self._base.call_later(
                float(yielded),
                lambda: self._wake(task),
                name=f"{self.name}.sleep:{task.name}",
            )
            return
        self._fail_bad_yield(task, yielded)

    def _resume_from(self, task: AgentTask) -> Callable[[Future], None]:
        def on_done(future: Future) -> None:
            if future.error is not None:
                task._throw_error = future.error
            else:
                task._send_value = future.value
            self._wake(task)

        return on_done

    def _fail_bad_yield(self, task: AgentTask, yielded: Any) -> None:
        task.state = FAILED
        task.error = ConfigurationError(
            f"task {task.name!r} yielded {yielded!r}; expected None, a "
            "non-negative delay in ms, or a Future"
        )
        self._failed.inc()
