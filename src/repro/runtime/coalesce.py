"""Read coalescing and caching for idempotent proxy operations.

Three independent savings, all safe only for reads:

* **in-flight coalescing** — handled inside the dispatcher via coalesce
  keys (HTTP GETs to the same URL share one execution while one is
  queued or in service);
* **location fix reuse** — :class:`LocationFixCache` serves the last fix
  while it is younger than a staleness window on the virtual clock;
* **property lookups** — :class:`PropertyReadCache` memoises
  ``get_property`` per (proxy, key) and invalidates on every
  ``setProperty`` through the proxy's property-change subscription.

Every hit, miss and invalidation is a ``runtime.*`` counter so the
benchmarks can report the saving and the property suite can prove the
invalidation contract.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.util.clock import SimulatedClock


class LocationFixCache:
    """Serve a recent fix instead of touching the GPS again.

    ``staleness_ms`` bounds how old (in virtual time) a reused fix may
    be; ``0`` disables reuse entirely.
    """

    def __init__(
        self,
        clock: SimulatedClock,
        *,
        staleness_ms: float = 5_000.0,
        metrics=None,
        label: str = "location",
    ) -> None:
        if staleness_ms < 0:
            raise ValueError(f"staleness_ms must be >= 0, got {staleness_ms}")
        self._clock = clock
        self.staleness_ms = staleness_ms
        self._fix: Any = None
        self._fixed_at_ms = -1.0
        if metrics is None:
            from repro.obs import MetricsRegistry

            metrics = MetricsRegistry()
        self._hits = metrics.counter("runtime.location_cache_hits", source=label)
        self._misses = metrics.counter("runtime.location_cache_misses", source=label)

    def get(self) -> Any:
        """The cached fix if still fresh, else ``None`` (counted)."""
        age = self._clock.now_ms - self._fixed_at_ms
        if self._fix is not None and age <= self.staleness_ms:
            self._hits.inc()
            return self._fix
        self._misses.inc()
        return None

    def put(self, fix: Any) -> None:
        """Remember ``fix``, stamped at the current virtual instant."""
        self._fix = fix
        self._fixed_at_ms = self._clock.now_ms

    def invalidate(self) -> None:
        self._fix = None
        self._fixed_at_ms = -1.0

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value


class PropertyReadCache:
    """Memoised ``get_property`` with setProperty invalidation.

    Attach proxies explicitly; attachment subscribes to the proxy's
    property-change notifications, so *any* ``set_property(key, ...)``
    drops exactly that key's cached value — the invalidation-on-write
    contract the hypothesis suite exercises.
    """

    def __init__(self, metrics=None, *, label: str = "properties") -> None:
        self._values: Dict[Tuple[int, str], Any] = {}
        self._attached: Dict[int, Any] = {}
        if metrics is None:
            from repro.obs import MetricsRegistry

            metrics = MetricsRegistry()
        self._hits = metrics.counter("runtime.property_cache_hits", source=label)
        self._misses = metrics.counter("runtime.property_cache_misses", source=label)
        self._invalidations = metrics.counter(
            "runtime.property_cache_invalidations", source=label
        )

    def attach(self, proxy) -> None:
        """Start caching ``proxy``'s reads (idempotent per proxy)."""
        key = id(proxy)
        if key in self._attached:
            return
        self._attached[key] = proxy  # strong ref keeps id() stable
        proxy.subscribe_property_changes(
            lambda name, value, _key=key: self._invalidate(_key, name)
        )

    def get(self, proxy, key: str) -> Any:
        """Cached property read (attaches the proxy on first use)."""
        self.attach(proxy)
        cache_key = (id(proxy), key)
        if cache_key in self._values:
            self._hits.inc()
            return self._values[cache_key]
        self._misses.inc()
        value = proxy.get_property(key)
        self._values[cache_key] = value
        return value

    def _invalidate(self, proxy_id: int, key: str) -> None:
        self._values.pop((proxy_id, key), None)
        self._invalidations.inc()

    def cached_value(self, proxy, key: str) -> Optional[Any]:
        """The raw cache slot (``None`` when absent) — test aid."""
        return self._values.get((id(proxy), key))

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def invalidations(self) -> int:
        return self._invalidations.value
