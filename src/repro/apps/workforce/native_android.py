"""Without-proxy Android device app (the paper's Figure 2a, grown to a
full module).

Everything platform-specific is in the application's face: Intent actions,
IntentReceiver subclasses, PendingIntent result plumbing for SMS, the
Apache HTTP objects, and Android's exception set.  Business logic is
scattered across the receiver callbacks.  Kept deliberately in this style
— it is the *measured artifact* for the portability/complexity evaluation.

Two classes: :class:`WorkforceNativeAndroid` targets SDK m5-rc15 (raw
Intent) and :class:`WorkforceNativeAndroidV10` is the *same application
ported to SDK 1.0* (PendingIntent) — the diff between them is the paper's
maintenance cost for the without-proxy world.
"""

from __future__ import annotations

from repro.apps.workforce.common import (
    PATH_LOG_EVENT,
    PATH_REPORT_LOCATION,
    SERVER_HOST,
    WorkforceConfig,
    encode,
)
from repro.platforms.android.activity import Activity
from repro.platforms.android.context import Context
from repro.platforms.android.exceptions import AndroidRuntimeException
from repro.platforms.android.http import HttpPost, IOException
from repro.platforms.android.intents import (
    Intent,
    IntentFilter,
    IntentReceiver,
    PendingIntent,
)
from repro.platforms.android.location import NO_EXPIRATION

PROXIMITY_ALERT = "com.ibm.workforce.android.intent.action.PROXIMITY_ALERT"
SMS_SENT = "com.ibm.workforce.android.intent.action.SMS_SENT"


class WorkforceNativeAndroid(Activity):
    """SDK m5-rc15 variant: addProximityAlert takes a raw Intent."""

    config: WorkforceConfig  # assigned by the launcher before perform_launch

    def on_create(self) -> None:
        self.entered_site = False
        self.activity_events = []
        outer = self

        class ProximityIntentReceiver(IntentReceiver):
            def __init__(self, latitude: float, longitude: float) -> None:
                self.latitude = latitude
                self.longitude = longitude

            def on_receive_intent(self, ctxt: Context, i: Intent) -> None:
                action = i.get_action()
                if action == PROXIMITY_ALERT:
                    entering = i.get_boolean_extra("entering", False)
                    lm = ctxt.get_system_service(Context.LOCATION_SERVICE)
                    loc = lm.get_current_location("gps")
                    if entering:
                        outer.entered_site = True
                        outer._log_event("arrived", loc)
                        outer._notify_supervisor("Arrived at site")
                    else:
                        outer.entered_site = False
                        outer._log_event("departed", loc)

        class SmsSentReceiver(IntentReceiver):
            def on_receive_intent(self, ctxt: Context, i: Intent) -> None:
                outer.activity_events.append("sms-result")

        site = self.config.site
        try:
            # registering for proximity events
            proximity_receiver = ProximityIntentReceiver(site.latitude, site.longitude)
            self.register_receiver(proximity_receiver, IntentFilter(PROXIMITY_ALERT))
            self.register_receiver(SmsSentReceiver(), IntentFilter(SMS_SENT))
            lm = self.get_system_service(Context.LOCATION_SERVICE)
            i = Intent(PROXIMITY_ALERT)
            timer = self.config.alert_timer_s
            expiration = NO_EXPIRATION if timer == -1 else timer * 1000.0
            lm.add_proximity_alert(
                site.latitude, site.longitude, site.radius_m, expiration, i
            )
        except AndroidRuntimeException:
            # Handle Android specific exceptions
            raise

    # -- business actions, each wired to a raw platform stack ------------------

    def report_location(self) -> None:
        """Send the current position to the server over Apache HTTP."""
        lm = self.get_system_service(Context.LOCATION_SERVICE)
        loc = lm.get_current_location("gps")
        client = self.platform.http_client(self)
        request = HttpPost(f"http://{SERVER_HOST}{PATH_REPORT_LOCATION}")
        request.set_entity(
            encode(
                {
                    "agent": self.config.agent.agent_id,
                    "latitude": loc.get_latitude(),
                    "longitude": loc.get_longitude(),
                    "timestamp_ms": loc.get_time(),
                }
            )
        )
        try:
            response = client.execute(request)
            if response.get_status_line().get_status_code() != 200:
                self.activity_events.append("report-failed")
        except IOException:
            self.activity_events.append("report-failed")

    def _log_event(self, event: str, loc) -> None:
        client = self.platform.http_client(self)
        request = HttpPost(f"http://{SERVER_HOST}{PATH_LOG_EVENT}")
        request.set_entity(
            encode(
                {
                    "agent": self.config.agent.agent_id,
                    "event": event,
                    "detail": f"{loc.get_latitude():.5f},{loc.get_longitude():.5f}",
                    "timestamp_ms": loc.get_time(),
                }
            )
        )
        try:
            client.execute(request)
        except IOException:
            self.activity_events.append("log-failed")
        self.activity_events.append(event)

    def _notify_supervisor(self, text: str) -> None:
        manager = self.platform.sms_manager(self)
        sent_intent = PendingIntent.get_broadcast(self, 0, Intent(SMS_SENT))
        try:
            manager.send_text_message(
                self.config.agent.supervisor_number, None, text, sent_intent, None
            )
        except AndroidRuntimeException:
            # Handle Android specific exceptions
            self.activity_events.append("sms-failed")


class WorkforceNativeAndroidV10(WorkforceNativeAndroid):
    """The same application *ported to SDK 1.0*.

    The only behavioural difference is the ``addProximityAlert`` call
    site: release 1.0 takes a ``PendingIntent``.  Without proxies, every
    application carrying this call must be edited and re-released — the
    maintenance burden Section 5 quantifies.
    """

    def on_create(self) -> None:
        self.entered_site = False
        self.activity_events = []
        outer = self

        class ProximityIntentReceiver(IntentReceiver):
            def __init__(self, latitude: float, longitude: float) -> None:
                self.latitude = latitude
                self.longitude = longitude

            def on_receive_intent(self, ctxt: Context, i: Intent) -> None:
                action = i.get_action()
                if action == PROXIMITY_ALERT:
                    entering = i.get_boolean_extra("entering", False)
                    lm = ctxt.get_system_service(Context.LOCATION_SERVICE)
                    loc = lm.get_current_location("gps")
                    if entering:
                        outer.entered_site = True
                        outer._log_event("arrived", loc)
                        outer._notify_supervisor("Arrived at site")
                    else:
                        outer.entered_site = False
                        outer._log_event("departed", loc)

        class SmsSentReceiver(IntentReceiver):
            def on_receive_intent(self, ctxt: Context, i: Intent) -> None:
                outer.activity_events.append("sms-result")

        site = self.config.site
        try:
            proximity_receiver = ProximityIntentReceiver(site.latitude, site.longitude)
            self.register_receiver(proximity_receiver, IntentFilter(PROXIMITY_ALERT))
            self.register_receiver(SmsSentReceiver(), IntentFilter(SMS_SENT))
            lm = self.get_system_service(Context.LOCATION_SERVICE)
            # SDK 1.0: the Intent must be wrapped in a PendingIntent.
            pi = PendingIntent.get_broadcast(self, 0, Intent(PROXIMITY_ALERT))
            timer = self.config.alert_timer_s
            expiration = NO_EXPIRATION if timer == -1 else timer * 1000.0
            lm.add_proximity_alert(
                site.latitude, site.longitude, site.radius_m, expiration, pi
            )
        except AndroidRuntimeException:
            # Handle Android specific exceptions
            raise
