"""With-proxy workforce app (the paper's Figures 8 and 9).

One business-logic class — :class:`WorkforceLogic` — is shared **verbatim**
by all three platforms; only a thin per-platform launcher differs (how the
proxies are constructed and which ``set_property`` keys apply).  This is
the portability claim made executable.
"""

from __future__ import annotations

from typing import List

from repro.apps.workforce.common import (
    PATH_COMPLETE_ASSIGNMENT,
    PATH_LOG_EVENT,
    PATH_POLL_ASSIGNMENT,
    PATH_REPORT_LOCATION,
    SERVER_HOST,
    WorkforceConfig,
    decode,
    encode,
)
from repro.core.proxies import create_proxy
from repro.core.proxies.http.api import HttpProxy
from repro.core.proxies.location.api import LocationProxy
from repro.core.proxies.sms.api import SmsProxy
from repro.core.proxy.callbacks import ProximityListener
from repro.core.proxy.datatypes import Location
from repro.errors import ProxyError


class WorkforceLogic(ProximityListener):
    """Platform-independent application core.

    Identical on Android, S60 and WebView: the proxies have already
    absorbed every platform difference, so the business logic for handling
    proximity events lives in exactly one place (contrast the native
    variants, where it is scattered through receiver and listener
    callbacks).
    """

    def __init__(
        self,
        config: WorkforceConfig,
        location: LocationProxy,
        sms: SmsProxy,
        http: HttpProxy,
    ) -> None:
        self.config = config
        self.location = location
        self.sms = sms
        self.http = http
        self.entered_site = False
        self.activity_events: List[str] = []

    def start(self) -> None:
        """Register the proximity alert (uniform on every platform)."""
        site = self.config.site
        try:
            self.location.add_proximity_alert(
                site.latitude,
                site.longitude,
                0.0,
                site.radius_m,
                self.config.alert_timer_s,
                self,
            )
        except ProxyError:
            # Uniform errors replace platform-specific exceptions.
            raise

    def proximity_event(
        self,
        ref_latitude: float,
        ref_longitude: float,
        ref_altitude: float,
        current_location: Location,
        entering: bool,
    ) -> None:
        # business logic for handling proximity events — one place only
        if entering:
            self.entered_site = True
            self._log_event("arrived", current_location)
            self._notify_supervisor("Arrived at site")
        else:
            self.entered_site = False
            self._log_event("departed", current_location)

    def report_location(self) -> None:
        """Send the current position to the server."""
        location = self.location.get_location()
        result = self.http.post(
            f"http://{SERVER_HOST}{PATH_REPORT_LOCATION}",
            encode(
                {
                    "agent": self.config.agent.agent_id,
                    "latitude": location.latitude,
                    "longitude": location.longitude,
                    "timestamp_ms": location.timestamp_ms,
                }
            ),
        )
        if not result.ok:
            self.activity_events.append("report-failed")

    def _log_event(self, event: str, location: Location) -> None:
        result = self.http.post(
            f"http://{SERVER_HOST}{PATH_LOG_EVENT}",
            encode(
                {
                    "agent": self.config.agent.agent_id,
                    "event": event,
                    "detail": f"{location.latitude:.5f},{location.longitude:.5f}",
                    "timestamp_ms": location.timestamp_ms,
                }
            ),
        )
        if not result.ok:
            self.activity_events.append("log-failed")
        self.activity_events.append(event)

    def _notify_supervisor(self, text: str) -> None:
        try:
            self.sms.send_text_message(self.config.agent.supervisor_number, text)
        except ProxyError:
            self.activity_events.append("sms-failed")


class AssignmentClient:
    """Device-side assignment lifecycle over the uniform HTTP proxy.

    Kept separate from :class:`WorkforceLogic` so the evaluation compares
    like-for-like: the native variants implement only the tracking core,
    and so does the measured ``WorkforceLogic`` class.  Attach one of
    these to any logic instance (``logic.assignments``).
    """

    def __init__(self, logic: "WorkforceLogic") -> None:
        self._logic = logic

    def poll(self):
        """Ask the server for the next pending assignment.

        Returns a dict with ``assignment``/``site``/``description`` keys,
        or ``None`` when nothing is queued.
        """
        logic = self._logic
        result = logic.http.post(
            f"http://{SERVER_HOST}{PATH_POLL_ASSIGNMENT}",
            encode({"agent": logic.config.agent.agent_id}),
        )
        body = decode(result.body)
        if not result.ok or not body.get("assignment"):
            return None
        logic.activity_events.append(f"assigned:{body['assignment']}")
        return body

    def complete(self, assignment_id: str) -> bool:
        """Report an assignment finished; returns whether the server agreed."""
        logic = self._logic
        result = logic.http.post(
            f"http://{SERVER_HOST}{PATH_COMPLETE_ASSIGNMENT}",
            encode({"assignment": assignment_id}),
        )
        if result.ok:
            logic.activity_events.append(f"completed:{assignment_id}")
        return result.ok


# ---------------------------------------------------------------------------
# thin per-platform launchers (all the platform-specific code that remains)
# ---------------------------------------------------------------------------

def _policy_for(resilience, interface: str):
    """Resolve the per-interface ``resilience`` argument of a launcher.

    ``resilience`` may be ``None`` (factory default), ``False`` (bare
    proxies), a single policy applied to every proxy, or a callable
    ``interface -> policy`` (e.g. ``repro.core.resilience.chaos_policy``).
    """
    if callable(resilience):
        return resilience(interface)
    return resilience


def launch_on_android(
    platform, context, config: WorkforceConfig, *, resilience=None
) -> WorkforceLogic:
    """Android launcher: construct proxies, feed the context property."""
    location = create_proxy(
        "Location", platform, resilience=_policy_for(resilience, "Location")
    )
    location.set_property("context", context)
    location.set_property("provider", "gps")
    sms = create_proxy("Sms", platform, resilience=_policy_for(resilience, "Sms"))
    sms.set_property("context", context)
    http = create_proxy("Http", platform, resilience=_policy_for(resilience, "Http"))
    http.set_property("context", context)
    logic = WorkforceLogic(config, location, sms, http)
    logic.start()
    return logic


def launch_on_s60(platform, config: WorkforceConfig, *, resilience=None) -> WorkforceLogic:
    """S60 launcher: criteria knobs instead of a context."""
    location = create_proxy(
        "Location", platform, resilience=_policy_for(resilience, "Location")
    )
    location.set_property("preferredResponseTime", 1000)
    sms = create_proxy("Sms", platform, resilience=_policy_for(resilience, "Sms"))
    http = create_proxy("Http", platform, resilience=_policy_for(resilience, "Http"))
    logic = WorkforceLogic(config, location, sms, http)
    logic.start()
    return logic


def launch_on_webview(
    platform, config: WorkforceConfig, *, resilience=None
) -> WorkforceLogic:
    """WebView launcher: JS proxies from the active page."""
    location = create_proxy(
        "Location", platform, resilience=_policy_for(resilience, "Location")
    )
    location.set_property("provider", "gps")
    sms = create_proxy("Sms", platform, resilience=_policy_for(resilience, "Sms"))
    http = create_proxy("Http", platform, resilience=_policy_for(resilience, "Http"))
    logic = WorkforceLogic(config, location, sms, http)
    logic.start()
    return logic
