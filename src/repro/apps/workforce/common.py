"""Shared workforce domain model and wire protocol.

Device variants (native and proxied) and the server agree on this module;
it is platform-independent by construction.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict

#: Well-known server host on the simulated network.
SERVER_HOST = "workforce.example.com"

#: Wire paths (POST with JSON bodies; the GCF stack has no query API).
PATH_REPORT_LOCATION = "/api/location"
PATH_LOG_EVENT = "/api/event"
PATH_POLL_ASSIGNMENT = "/api/assignment/poll"
PATH_CREATE_ASSIGNMENT = "/api/assignment/create"
PATH_COMPLETE_ASSIGNMENT = "/api/assignment/complete"

#: The one idempotent GET: a stable service descriptor every agent polls.
#: Safe to coalesce — the body is a pure function of deployment config,
#: which is what makes it the runtime's canonical coalescing target.
PATH_STATUS = "/api/status"


@dataclass(frozen=True)
class SiteRegion:
    """A geographic work site with a proximity radius."""

    site_id: str
    latitude: float
    longitude: float
    radius_m: float
    description: str = ""


@dataclass(frozen=True)
class AgentProfile:
    """A field agent's identity."""

    agent_id: str
    phone_number: str
    supervisor_number: str


@dataclass
class WorkforceConfig:
    """Per-deployment knobs shared by every device variant."""

    agent: AgentProfile
    site: SiteRegion
    report_interval_ms: float = 30_000.0
    alert_timer_s: float = -1.0  # proximity alert expiration; -1 = never


@dataclass
class Assignment:
    """One unit of work dispatched to an agent."""

    assignment_id: str
    agent_id: str
    site_id: str
    description: str
    status: str = "pending"  # pending | assigned | completed


def encode(payload: Dict) -> str:
    """Wire encoding (JSON)."""
    return json.dumps(payload)


def decode(body: str) -> Dict:
    """Wire decoding; tolerant of empty bodies."""
    if not body:
        return {}
    return json.loads(body)
