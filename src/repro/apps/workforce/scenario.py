"""Ready-made workforce scenarios: device + platform + server wiring.

Shared by the integration tests, the examples, and the evaluation
benchmarks so they all drive the same world: an agent who starts away from
the site, travels to it, works, and leaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apps.workforce.common import AgentProfile, SiteRegion, WorkforceConfig
from repro.apps.workforce.server import WorkforceServer
from repro.device.device import MobileDevice
from repro.device.gps import Trajectory, Waypoint
from repro.faults.plan import FaultPlan
from repro.obs import Observability
from repro.platforms.android.location import ACCESS_FINE_LOCATION
from repro.platforms.android.http import INTERNET
from repro.platforms.android.platform import AndroidPlatform
from repro.platforms.android.telephony import CALL_PHONE, SEND_SMS
from repro.platforms.android.versions import SdkVersion
from repro.platforms.s60.connector import PERMISSION_HTTP
from repro.platforms.s60.location import PERMISSION_LOCATION
from repro.platforms.s60.messaging import PERMISSION_SMS_SEND
from repro.platforms.s60.packaging import Jar, JarEntry, JadDescriptor, MidletSuite
from repro.platforms.s60.platform import S60Platform
from repro.platforms.webview.platform import WebViewPlatform
from repro.runtime import ConcurrencyRuntime
from repro.util.geo import GeoPoint, destination_point
from repro.util.latency import LatencyModel

#: The work site every standard scenario uses.
SITE = SiteRegion(
    site_id="site-7",
    latitude=28.6,
    longitude=77.2,
    radius_m=500.0,
    description="substation maintenance",
)

AGENT = AgentProfile(
    agent_id="agent-42",
    phone_number="+915550042",
    supervisor_number="+915550001",
)

#: Android application package / S60 suite name used by the scenarios.
PACKAGE = "com.ibm.workforce"

ANDROID_PERMISSIONS = {ACCESS_FINE_LOCATION, SEND_SMS, CALL_PHONE, INTERNET}
S60_PERMISSIONS = [PERMISSION_LOCATION, PERMISSION_SMS_SEND, PERMISSION_HTTP]


def standard_config(alert_timer_s: float = -1.0) -> WorkforceConfig:
    return WorkforceConfig(agent=AGENT, site=SITE, alert_timer_s=alert_timer_s)


def attach_runtime(
    scenario,
    *,
    shards: int = 2,
    queue_depth: int = 32,
    seed: int = 0,
) -> ConcurrencyRuntime:
    """A concurrency runtime on a built scenario's device scheduler.

    Works with any of the ``build_*`` results below (they all expose
    ``.device``); the runtime shares the scenario's virtual clock and
    observability hub, so queue spans and ``runtime.*`` metrics land in
    the same place as the scenario's dispatch spans.
    """
    return ConcurrencyRuntime(
        scenario.device.scheduler,
        shards=shards,
        queue_depth=queue_depth,
        seed=seed,
        observability=scenario.device.obs,
    )


def commute_trajectory(
    *,
    leg_ms: float = 60_000.0,
    away_distance_m: float = 2_000.0,
) -> Trajectory:
    """away → site → away → site: two visits, exercising enter and exit."""
    home = GeoPoint(SITE.latitude, SITE.longitude)
    away = destination_point(SITE.latitude, SITE.longitude, 90.0, away_distance_m)
    return Trajectory(
        [
            Waypoint(0.0, away),
            Waypoint(leg_ms, home),
            Waypoint(2 * leg_ms, away),
            Waypoint(3 * leg_ms, home),
        ]
    )


@dataclass
class AndroidScenario:
    device: MobileDevice
    platform: AndroidPlatform
    server: WorkforceServer
    config: WorkforceConfig

    def new_context(self):
        return self.platform.new_context(PACKAGE)


def build_android(
    *,
    sdk_version: SdkVersion = SdkVersion.M5_RC15,
    latency: Optional[LatencyModel] = None,
    alert_timer_s: float = -1.0,
    fault_plan: Optional[FaultPlan] = None,
    observability: Optional[Observability] = None,
) -> AndroidScenario:
    device = MobileDevice(
        AGENT.phone_number,
        trajectory=commute_trajectory(),
        fault_plan=fault_plan,
        observability=observability,
    )
    platform = AndroidPlatform(device, sdk_version=sdk_version, latency=latency)
    platform.install(PACKAGE, ANDROID_PERMISSIONS)
    server = WorkforceServer(device.network)
    return AndroidScenario(device, platform, server, standard_config(alert_timer_s))


@dataclass
class S60Scenario:
    device: MobileDevice
    platform: S60Platform
    server: WorkforceServer
    config: WorkforceConfig


def build_s60(
    *,
    latency: Optional[LatencyModel] = None,
    alert_timer_s: float = -1.0,
    fault_plan: Optional[FaultPlan] = None,
    observability: Optional[Observability] = None,
) -> S60Scenario:
    device = MobileDevice(
        AGENT.phone_number,
        trajectory=commute_trajectory(),
        fault_plan=fault_plan,
        observability=observability,
    )
    platform = S60Platform(device, latency=latency)
    suite = MidletSuite(
        JadDescriptor(PACKAGE, permissions=list(S60_PERMISSIONS)),
        Jar("workforce.jar", [JarEntry("WorkForceManagement.class", 4096)]),
    )
    platform.install_suite(suite)
    platform.location_provider.bind_suite(PACKAGE)
    platform.connector.bind_suite(PACKAGE)
    server = WorkforceServer(device.network)
    return S60Scenario(device, platform, server, standard_config(alert_timer_s))


@dataclass
class WebViewScenario:
    device: MobileDevice
    platform: WebViewPlatform
    server: WorkforceServer
    config: WorkforceConfig

    def new_context(self):
        return self.platform.android.new_context(PACKAGE)


def build_webview(
    *,
    latency: Optional[LatencyModel] = None,
    android_latency: Optional[LatencyModel] = None,
    alert_timer_s: float = -1.0,
    fault_plan: Optional[FaultPlan] = None,
    observability: Optional[Observability] = None,
) -> WebViewScenario:
    device = MobileDevice(
        AGENT.phone_number,
        trajectory=commute_trajectory(),
        fault_plan=fault_plan,
        observability=observability,
    )
    android = AndroidPlatform(device, latency=android_latency)
    android.install(PACKAGE, ANDROID_PERMISSIONS)
    platform = WebViewPlatform(device, android=android, latency=latency)
    server = WorkforceServer(device.network)
    return WebViewScenario(device, platform, server, standard_config(alert_timer_s))
