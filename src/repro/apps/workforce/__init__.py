"""The mobile workforce-management application (paper Section 2, Figure 1).

An enterprise tracks on-field agents and assigns tasks.  The device side
reports agent positions, watches proximity to assigned sites, and messages
the region supervisor; the server side does the book-keeping (agent
registry, request allocation, activity log).

Variants:

* ``native_android`` / ``native_s60`` / ``native_webview`` — the
  *without-proxy* implementations, one per platform, each shaped by its
  platform's API style (the paper's Figure 2 fragments, grown into full
  modules).
* ``proxied`` — the *with-proxy* implementation: one business-logic class
  shared verbatim across all three platforms (Figures 8 and 9).

The evaluation benchmarks compute their software-engineering metrics from
these modules' actual sources.
"""

from repro.apps.workforce.common import AgentProfile, SiteRegion, WorkforceConfig
from repro.apps.workforce.server import WorkforceServer

__all__ = ["AgentProfile", "SiteRegion", "WorkforceConfig", "WorkforceServer"]
