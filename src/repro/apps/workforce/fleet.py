"""Multi-agent fleet scenarios.

The paper's Figure 1 shows an enterprise managing *agents*, plural.  This
module wires several simulated handsets onto shared infrastructure — one
virtual clock, one SMS center, one data network, one workforce server, and
a supervisor handset that actually receives the agents' messages — so the
whole deployment advances under a single ``run_for``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence

from repro.apps.workforce.common import (
    PATH_REPORT_LOCATION,
    PATH_STATUS,
    SERVER_HOST,
    AgentProfile,
    SiteRegion,
    WorkforceConfig,
    encode,
)
from repro.apps.workforce.proxied import WorkforceLogic, launch_on_android
from repro.apps.workforce.scenario import ANDROID_PERMISSIONS, PACKAGE
from repro.apps.workforce.server import WorkforceServer
from repro.device.device import MobileDevice
from repro.device.gps import Trajectory, Waypoint
from repro.device.messaging import SmsCenter
from repro.device.network import SimulatedNetwork
from repro.obs import FlightRecorder, Observability
from repro.obs.analyze.admission import AdmissionReport
from repro.obs.analyze.causal import CausalReport
from repro.obs.analyze.slo import SloEngine, SloSpec, SloStatus
from repro.obs.pipeline import HealthReport, PipelineConfig, TelemetryPipeline
from repro.platforms.android.platform import AndroidPlatform
from repro.runtime import AdmissionConfig, AgentTask, ConcurrencyRuntime
from repro.util.clock import Scheduler, SimulatedClock
from repro.util.events import EventBus
from repro.util.geo import GeoPoint, destination_point

if TYPE_CHECKING:  # pragma: no cover
    from repro.distrib.config import DistribConfig
    from repro.faults.plan import FaultPlan

SUPERVISOR_NUMBER = "+915550001"

#: Per-agent failure events that must escalate to the supervisor.
FAILURE_EVENTS = frozenset(
    {"sms-failed", "report-failed", "log-failed", "status-failed"}
)


@dataclass
class FleetAgent:
    """One agent's slice of the fleet."""

    profile: AgentProfile
    site: SiteRegion
    device: MobileDevice
    platform: AndroidPlatform
    logic: WorkforceLogic = None
    #: Home region in the distrib tier (``build_fleet(distrib=)``);
    #: agents are assigned round-robin over the configured regions.
    region: Optional[str] = None
    slo_engine: Optional[SloEngine] = None
    #: finished-span cursor so repeated SLO evaluations never double-ingest.
    slo_cursor: int = 0
    #: activity-event cursor for Fleet error surfacing (same pattern).
    error_cursor: int = 0
    #: the agent's cooperative workload, when driven through the runtime.
    task: Optional[AgentTask] = None


@dataclass
class Fleet:
    """A deployed fleet sharing one simulated world."""

    scheduler: Scheduler
    server: WorkforceServer
    supervisor: MobileDevice
    agents: List[FleetAgent] = field(default_factory=list)
    #: The concurrency plane (``build_fleet(runtime=True)``); ``None``
    #: keeps the pre-runtime direct-call fleet behaviour.
    runtime: Optional[ConcurrencyRuntime] = None
    #: The runtime's flight recorder (``build_fleet(flight_recorder=True)``).
    flight: Optional[FlightRecorder] = None
    #: The fleet-wide telemetry pipeline (``build_fleet(pipeline=...)``):
    #: every agent tracer (tagged ``source=<agent-id>``) plus the runtime
    #: hub's tracer drain into one sampled, bounded, rolled-up stream.
    pipeline: Optional[TelemetryPipeline] = None
    #: Operational alerts surfaced to the supervisor (see ``run_for``).
    alerts: List[str] = field(default_factory=list)
    _alerted_tasks: int = field(default=0, repr=False)
    #: Highest flight-dump sequence already surfaced (dumps evict, so a
    #: sequence cursor — not a list length — tracks what's new).
    _alerted_dumps: int = field(default=0, repr=False)
    #: Per-platform cursor into the admission controller's storm log.
    _alerted_storms: Dict[str, int] = field(default_factory=dict, repr=False)
    #: Cursor into the distrib tier's causal-violation log.
    _alerted_violations: int = field(default=0, repr=False)
    #: Whether install_slos already subscribed to the pipeline stream.
    _slo_observing: bool = field(default=False, repr=False)

    def run_for(self, delta_ms: float) -> int:
        """Advance the whole fleet's shared virtual time.

        Besides returning the executed-callback count, this *surfaces
        per-agent errors*: failure events the agents' business logic
        swallowed locally (``sms-failed`` …) and cooperative tasks that
        died, both of which previously vanished, become supervisor
        alerts readable from :attr:`supervisor_inbox`.
        """
        executed = self.scheduler.run_for(delta_ms)
        self._surface_agent_errors()
        return executed

    def agent(self, agent_id: str) -> FleetAgent:
        for entry in self.agents:
            if entry.profile.agent_id == agent_id:
                return entry
        raise KeyError(f"no agent {agent_id!r} in the fleet")

    @property
    def supervisor_inbox(self) -> List[str]:
        """Texts the supervisor handset has received, in order, followed
        by any fleet alerts surfaced by :meth:`run_for`."""
        return [message.text for message in self.supervisor.inbox] + list(self.alerts)

    def _surface_agent_errors(self) -> None:
        for agent in self.agents:
            if agent.logic is None:
                continue
            events = agent.logic.activity_events
            for event in events[agent.error_cursor:]:
                if event in FAILURE_EVENTS:
                    self.alerts.append(
                        f"[fleet-alert] {agent.profile.agent_id}: {event}"
                    )
            agent.error_cursor = len(events)
        if self.runtime is not None:
            failed = self.runtime.tasks.failed_tasks()
            for task in failed[self._alerted_tasks:]:
                self.alerts.append(
                    f"[fleet-alert] task {task.name} failed: "
                    f"{type(task.error).__name__}: {task.error}"
                )
            self._alerted_tasks = len(failed)
            for platform, dispatcher in sorted(
                self.runtime.dispatchers().items()
            ):
                controller = dispatcher.admission
                if controller is None:
                    continue
                cursor = self._alerted_storms.get(platform, 0)
                for storm in controller.storms[cursor:]:
                    self.alerts.append(
                        f"[fleet-alert] admission storm on {platform}: "
                        f"{storm['rejections']} rejections in "
                        f"{storm['window_ms']:.0f}ms (kind={storm['kind']})"
                    )
                self._alerted_storms[platform] = len(controller.storms)
            if self.runtime.distrib is not None:
                violations = self.runtime.distrib.monitor.violations
                for violation in violations[self._alerted_violations:]:
                    self.alerts.append(
                        f"[fleet-alert] causal violation: {violation['kind']} "
                        f"in {violation.get('region', '?')} "
                        f"@{violation['t_ms']:.1f}ms"
                    )
                self._alerted_violations = len(violations)
        if self.flight is not None:
            for dump in self.flight.dumps:
                if dump["sequence"] <= self._alerted_dumps:
                    continue
                self.alerts.append(
                    f"[fleet-alert] flight dump #{dump['sequence']}: "
                    f"{dump['reason']} @{dump['t_virtual_ms']:.1f}ms "
                    f"({len(dump['spans'])} spans, {len(dump['events'])} events)"
                )
                self._alerted_dumps = dump["sequence"]

    # -- service-level objectives -------------------------------------------

    def install_slos(self, specs: Sequence[SloSpec]) -> None:
        """Give every agent its own :class:`SloEngine` over the shared
        specs, wired to that agent's metrics registry and tracer (so
        ``slo.*`` series and ``slo.breach`` events land per handset).

        The fleet must have been built with ``observability=True`` —
        dispatch spans are what the engines ingest.

        With a telemetry pipeline attached, each engine subscribes to
        the pipeline's completed-trace stream instead of rescanning its
        tracer: observers fire for *every* trace before sampling, so SLO
        evaluation stays exact even when the tracers retain nothing.
        """
        for agent in self.agents:
            agent.slo_engine = SloEngine(
                specs,
                metrics=agent.device.obs.metrics,
                tracer=agent.device.obs.tracer,
                flight=self.flight,
            )
            agent.slo_cursor = 0
        if self.pipeline is not None and not self._slo_observing:
            self.pipeline.add_observer(self._ingest_trace_for_slos)
            self._slo_observing = True

    def _ingest_trace_for_slos(self, source, spans) -> None:
        """Pipeline observer: route a completed trace to its agent's
        SLO engine (runtime-hub traces carry no agent source; skip)."""
        for agent in self.agents:
            if agent.profile.agent_id == source:
                if agent.slo_engine is not None:
                    agent.slo_engine.ingest_spans(spans)
                return

    def evaluate_slos(self) -> Dict[str, List[SloStatus]]:
        """Ingest each agent's newly-finished dispatch spans and judge
        every installed SLO at the current virtual time."""
        now_ms = self.scheduler.clock.now_ms
        statuses: Dict[str, List[SloStatus]] = {}
        for agent in self.agents:
            engine = agent.slo_engine
            if engine is None:
                continue
            if not self._slo_observing:
                # No pipeline stream — rescan the tracer from the cursor.
                finished = agent.device.obs.tracer.finished_spans()
                engine.ingest_spans(finished[agent.slo_cursor:])
                agent.slo_cursor = len(finished)
            statuses[agent.profile.agent_id] = engine.evaluate(now_ms)
        return statuses

    def health_report(self, *, strict: bool = False) -> HealthReport:
        """The live fleet health console (``build_fleet(pipeline=...)``).

        Fuses the pipeline's sampling accounting and RED rollups with
        the admission and causal views recomputed from the *retained*
        spans (tail rules guarantee every shed/throttle/violation trace
        is in the ring), current SLO state when SLOs are installed, and
        the flight recorder's incident log when one is attached.
        """
        if self.pipeline is None:
            raise ValueError("build the fleet with pipeline= first")
        records = self.pipeline.retention.records()
        slo_statuses = None
        if any(agent.slo_engine is not None for agent in self.agents):
            slo_statuses = [
                status
                for statuses in self.evaluate_slos().values()
                for status in statuses
            ]
        return HealthReport.build(
            self.pipeline,
            admission=AdmissionReport.from_records(records),
            causal=CausalReport.from_records(records),
            slo_statuses=slo_statuses,
            flight_payload=(
                self.flight.to_dict() if self.flight is not None else None
            ),
            strict=strict,
        )

    def breached_slos(self) -> Dict[str, List[str]]:
        """Agents currently in breach (as of the last evaluation),
        mapped to the breached SLO names; clean agents are omitted."""
        out: Dict[str, List[str]] = {}
        for agent in self.agents:
            if agent.slo_engine is None:
                continue
            names = agent.slo_engine.breached()
            if names:
                out[agent.profile.agent_id] = names
        return out


def build_fleet(
    agent_count: int = 3,
    *,
    base_latitude: float = 28.6,
    base_longitude: float = 77.2,
    leg_ms: float = 60_000.0,
    observability: bool = False,
    runtime: bool = False,
    flight_recorder: bool = False,
    shards: int = 2,
    queue_depth: int = 32,
    runtime_seed: int = 0,
    admission: Optional[AdmissionConfig] = None,
    distrib: Optional["DistribConfig"] = None,
    fault_plan: Optional["FaultPlan"] = None,
    pipeline: Optional[PipelineConfig] = None,
) -> Fleet:
    """Deploy ``agent_count`` Android agents on shared infrastructure.

    Agent *k* gets its own work site 5 km apart from the others and a
    staggered commute (each starts ``k × leg/4`` later), so proximity
    events interleave realistically on the shared clock.

    ``observability=True`` gives every agent handset a recording tracer
    (virtual-time stamps only), which :meth:`Fleet.install_slos` /
    :meth:`Fleet.evaluate_slos` build on.

    ``runtime=True`` attaches a :class:`ConcurrencyRuntime` on the
    fleet's scheduler (sharded dispatch, coalescing, cooperative agent
    tasks); drive it with :func:`launch_fleet_on_runtime`.

    ``admission=`` (requires ``runtime=True``) installs the adaptive
    admission plane on the runtime: each agent's submissions are charged
    to its own token-bucket tenant (``tenant=<agent-id>``), status polls
    shed before location reports under pressure, and throttle/shed
    storms surface as ``[fleet-alert] admission storm …`` lines.

    ``flight_recorder=True`` (requires ``runtime=True``) installs a
    :class:`~repro.obs.flight.FlightRecorder` plus a queue-depth /
    in-flight time-series sampler on the runtime's hub, shadows every
    agent handset's tracer into it (records tagged
    ``source=<agent-id>``), and surfaces each incident dump as a
    ``[fleet-alert]`` line from :meth:`Fleet.run_for`.

    ``distrib=`` (requires ``runtime=True``) mounts the distributed data
    tier on the runtime (see ``docs/DISTRIBUTION.md``): agents get home
    regions round-robin over ``distrib.regions``, successful location
    reports mirror into the replicated ``reports`` table at the agent's
    region, and the tier's idempotency store attaches to the shared SMS
    center and network so retried substrate writes are exactly-once.

    ``pipeline=`` (a :class:`~repro.obs.pipeline.PipelineConfig`;
    requires ``observability=True``) installs one fleet-wide
    :class:`~repro.obs.pipeline.TelemetryPipeline`: every agent
    handset's tracer drains into it tagged ``source=<agent-id>`` (plus
    the runtime hub's tracer as ``source=runtime`` when one exists),
    head sampling and tail keep rules bound retention, RED rollups
    aggregate every trace, and :meth:`Fleet.health_report` fuses it all.
    With ``pipeline.streaming`` the tracers stop retaining spans — the
    production-scale mode where telemetry memory is O(config).

    ``fault_plan=`` binds one :class:`~repro.faults.injector.FaultInjector`
    over the shared substrate (SMS center + network), so chaos scenarios
    can shake the whole fleet's infrastructure — not just one handset —
    with a single seeded plan.
    """
    if agent_count < 1:
        raise ValueError("a fleet needs at least one agent")
    if flight_recorder and not runtime:
        raise ValueError("flight_recorder=True requires runtime=True")
    if admission is not None and not runtime:
        raise ValueError("admission= requires runtime=True")
    if distrib is not None and not runtime:
        raise ValueError("distrib= requires runtime=True")
    if pipeline is not None and not observability:
        raise ValueError("pipeline= requires observability=True")
    scheduler = Scheduler(SimulatedClock())
    shared_bus = EventBus()
    injector = None
    if fault_plan is not None:
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(fault_plan, scheduler.clock)
    sms_center = SmsCenter(scheduler, shared_bus, injector=injector)
    network = SimulatedNetwork(scheduler, injector=injector)
    server = WorkforceServer(network)
    supervisor = MobileDevice(
        SUPERVISOR_NUMBER,
        sms_center=sms_center,
        network=network,
        scheduler=scheduler,
    )
    fleet = Fleet(scheduler=scheduler, server=server, supervisor=supervisor)
    if runtime:
        hub = (
            Observability(capture_real_time=False)
            if (observability or flight_recorder)
            else None
        )
        fleet.runtime = ConcurrencyRuntime(
            scheduler,
            shards=shards,
            queue_depth=queue_depth,
            seed=runtime_seed,
            observability=hub,
            admission=admission,
            distrib=distrib,
        )
        if fleet.runtime.distrib is not None:
            tier = fleet.runtime.distrib
            tier.bind_injector(injector)
            # Substrate write sites share the tier's idempotency store so
            # dedup counters land in the runtime hub's metrics.
            sms_center.attach_idempotency(tier.idempotency)
            network.attach_idempotency(tier.idempotency)
        if flight_recorder:
            sampler = hub.install_sampler()
            sampler.track("runtime.queue_depth")
            sampler.track("runtime.inflight")
            if distrib is not None:
                # Per-region replication lag: every (table, region) label
                # set the causal tracker's gauge produces gets sampled.
                sampler.track("distrib.lag_ms")
            fleet.flight = hub.install_flight_recorder()
    for index in range(agent_count):
        site_centre = destination_point(
            base_latitude, base_longitude, bearing=360.0 * index / agent_count,
            distance_m=5_000.0 * (index + 1),
        )
        site = SiteRegion(
            site_id=f"site-{index + 1}",
            latitude=site_centre.latitude,
            longitude=site_centre.longitude,
            radius_m=500.0,
        )
        profile = AgentProfile(
            agent_id=f"agent-{index + 1}",
            phone_number=f"+91555100{index + 1}",
            supervisor_number=SUPERVISOR_NUMBER,
        )
        start_offset = index * leg_ms / 4.0
        away = destination_point(
            site.latitude, site.longitude, bearing=90.0, distance_m=2_000.0
        )
        home = GeoPoint(site.latitude, site.longitude)
        device = MobileDevice(
            profile.phone_number,
            sms_center=sms_center,
            network=network,
            scheduler=scheduler,
            observability=(
                Observability(capture_real_time=False) if observability else None
            ),
            trajectory=Trajectory(
                [
                    Waypoint(0.0, away),
                    Waypoint(start_offset + leg_ms, home),
                    Waypoint(start_offset + 2 * leg_ms, away),
                ]
            ),
            gps_seed=index,
        )
        platform = AndroidPlatform(device)
        platform.install(PACKAGE, ANDROID_PERMISSIONS)
        region = None
        if distrib is not None:
            region = distrib.regions[index % len(distrib.regions)]
        fleet.agents.append(
            FleetAgent(
                profile=profile,
                site=site,
                device=device,
                platform=platform,
                region=region,
            )
        )
    if fleet.flight is not None:
        for agent in fleet.agents:
            # Span ids are per-tracer, so tag each handset's records
            # with its agent id (attach is a no-op on no-op tracers).
            fleet.flight.attach(
                agent.device.obs.tracer, source=agent.profile.agent_id
            )
    if pipeline is not None:
        runtime_hub = fleet.runtime.observability if fleet.runtime else None
        fleet.pipeline = TelemetryPipeline(
            pipeline,
            metrics=runtime_hub.metrics if runtime_hub is not None else None,
        )
        if runtime_hub is not None:
            fleet.pipeline.attach(runtime_hub.tracer, source="runtime")
        for agent in fleet.agents:
            fleet.pipeline.attach(
                agent.device.obs.tracer, source=agent.profile.agent_id
            )
    return fleet


def launch_fleet(fleet: Fleet, *, resilience=None) -> None:
    """Start the proxied workforce app on every agent handset.

    ``resilience=`` passes through to each agent's proxy factory — a
    :class:`~repro.core.resilience.policy.ResiliencePolicy` applied to
    every interface, or a callable like
    :func:`~repro.core.resilience.policy.chaos_policy` invoked per
    interface name.
    """
    for agent in fleet.agents:
        config = WorkforceConfig(agent=agent.profile, site=agent.site)
        context = agent.platform.new_context(PACKAGE)
        agent.logic = launch_on_android(
            agent.platform, context, config, resilience=resilience
        )


def _agent_workload(
    fleet: Fleet,
    agent: FleetAgent,
    *,
    reports: int,
    period_ms: float,
) -> Iterator[object]:
    """One agent's cooperative reporting loop.

    Each cycle: sleep a period, take a (staleness-cached) location fix,
    POST it to the server through the agent's shard lane, then poll the
    shared status endpoint with a coalescable GET.  Failed HTTP calls
    are recorded as activity failure events — which ``Fleet.run_for``
    then escalates to the supervisor.
    """
    runtime = fleet.runtime
    logic = agent.logic
    agent_id = agent.profile.agent_id
    report_url = f"http://{SERVER_HOST}{PATH_REPORT_LOCATION}"
    status_url = f"http://{SERVER_HOST}{PATH_STATUS}"
    for _ in range(reports):
        yield period_ms
        fix = yield runtime.get_location(logic.location, tenant=agent_id)
        body = encode(
            {
                "agent": agent_id,
                "latitude": fix.latitude,
                "longitude": fix.longitude,
                "timestamp_ms": fix.timestamp_ms,
            }
        )
        report_future = runtime.submit_invocation(
            logic.http,
            "post",
            lambda body=body: logic.http.post(report_url, body),
            key=agent_id,
            tenant=agent_id,
        )
        # Issued concurrently with the report: since every agent polls at
        # the same instant, the fleet's status GETs coalesce in flight.
        status_future = runtime.http_get(logic.http, status_url, tenant=agent_id)
        result = yield report_future
        if not result.ok:
            logic.activity_events.append("report-failed")
        elif runtime.distrib is not None:
            # Mirror the acknowledged report into the replicated table at
            # the agent's home region; anti-entropy converges the other
            # regions on it (chaos suite asserts this post-heal).
            runtime.distrib.table("reports").put(
                agent_id,
                {
                    "latitude": fix.latitude,
                    "longitude": fix.longitude,
                    "timestamp_ms": fix.timestamp_ms,
                },
                region=agent.region or runtime.distrib.config.home_region,
            )
        status = yield status_future
        if not status.ok:
            logic.activity_events.append("status-failed")


def launch_fleet_on_runtime(
    fleet: Fleet,
    *,
    reports: int = 3,
    period_ms: float = 20_000.0,
    resilience=None,
) -> None:
    """Drive every agent's reporting loop through the concurrency runtime.

    Requires ``build_fleet(runtime=True)``.  Launches the proxied app
    first if needed (``resilience=`` passes through to
    :func:`launch_fleet`), then spawns one cooperative task per agent
    (FIFO tie-broken in agent order).  Advance with ``fleet.run_for``
    or ``fleet.runtime.drain()``.
    """
    if fleet.runtime is None:
        raise ValueError("build the fleet with runtime=True first")
    if any(agent.logic is None for agent in fleet.agents):
        launch_fleet(fleet, resilience=resilience)
    for agent in fleet.agents:
        agent.task = fleet.runtime.spawn(
            f"workload:{agent.profile.agent_id}",
            _agent_workload(fleet, agent, reports=reports, period_ms=period_ms),
        )
