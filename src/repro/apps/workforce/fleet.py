"""Multi-agent fleet scenarios.

The paper's Figure 1 shows an enterprise managing *agents*, plural.  This
module wires several simulated handsets onto shared infrastructure — one
virtual clock, one SMS center, one data network, one workforce server, and
a supervisor handset that actually receives the agents' messages — so the
whole deployment advances under a single ``run_for``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.apps.workforce.common import AgentProfile, SiteRegion, WorkforceConfig
from repro.apps.workforce.proxied import WorkforceLogic, launch_on_android
from repro.apps.workforce.scenario import ANDROID_PERMISSIONS, PACKAGE
from repro.apps.workforce.server import WorkforceServer
from repro.device.device import MobileDevice
from repro.device.gps import Trajectory, Waypoint
from repro.device.messaging import SmsCenter
from repro.device.network import SimulatedNetwork
from repro.obs import Observability
from repro.obs.analyze.slo import SloEngine, SloSpec, SloStatus
from repro.platforms.android.platform import AndroidPlatform
from repro.util.clock import Scheduler, SimulatedClock
from repro.util.events import EventBus
from repro.util.geo import GeoPoint, destination_point

SUPERVISOR_NUMBER = "+915550001"


@dataclass
class FleetAgent:
    """One agent's slice of the fleet."""

    profile: AgentProfile
    site: SiteRegion
    device: MobileDevice
    platform: AndroidPlatform
    logic: WorkforceLogic = None
    slo_engine: Optional[SloEngine] = None
    #: finished-span cursor so repeated SLO evaluations never double-ingest.
    slo_cursor: int = 0


@dataclass
class Fleet:
    """A deployed fleet sharing one simulated world."""

    scheduler: Scheduler
    server: WorkforceServer
    supervisor: MobileDevice
    agents: List[FleetAgent] = field(default_factory=list)

    def run_for(self, delta_ms: float) -> int:
        """Advance the whole fleet's shared virtual time."""
        return self.scheduler.run_for(delta_ms)

    def agent(self, agent_id: str) -> FleetAgent:
        for entry in self.agents:
            if entry.profile.agent_id == agent_id:
                return entry
        raise KeyError(f"no agent {agent_id!r} in the fleet")

    @property
    def supervisor_inbox(self) -> List[str]:
        """Texts the supervisor handset has received, in order."""
        return [message.text for message in self.supervisor.inbox]

    # -- service-level objectives -------------------------------------------

    def install_slos(self, specs: Sequence[SloSpec]) -> None:
        """Give every agent its own :class:`SloEngine` over the shared
        specs, wired to that agent's metrics registry and tracer (so
        ``slo.*`` series and ``slo.breach`` events land per handset).

        The fleet must have been built with ``observability=True`` —
        dispatch spans are what the engines ingest.
        """
        for agent in self.agents:
            agent.slo_engine = SloEngine(
                specs,
                metrics=agent.device.obs.metrics,
                tracer=agent.device.obs.tracer,
            )
            agent.slo_cursor = 0

    def evaluate_slos(self) -> Dict[str, List[SloStatus]]:
        """Ingest each agent's newly-finished dispatch spans and judge
        every installed SLO at the current virtual time."""
        now_ms = self.scheduler.clock.now_ms
        statuses: Dict[str, List[SloStatus]] = {}
        for agent in self.agents:
            engine = agent.slo_engine
            if engine is None:
                continue
            finished = agent.device.obs.tracer.finished_spans()
            engine.ingest_spans(finished[agent.slo_cursor:])
            agent.slo_cursor = len(finished)
            statuses[agent.profile.agent_id] = engine.evaluate(now_ms)
        return statuses

    def breached_slos(self) -> Dict[str, List[str]]:
        """Agents currently in breach (as of the last evaluation),
        mapped to the breached SLO names; clean agents are omitted."""
        out: Dict[str, List[str]] = {}
        for agent in self.agents:
            if agent.slo_engine is None:
                continue
            names = agent.slo_engine.breached()
            if names:
                out[agent.profile.agent_id] = names
        return out


def build_fleet(
    agent_count: int = 3,
    *,
    base_latitude: float = 28.6,
    base_longitude: float = 77.2,
    leg_ms: float = 60_000.0,
    observability: bool = False,
) -> Fleet:
    """Deploy ``agent_count`` Android agents on shared infrastructure.

    Agent *k* gets its own work site 5 km apart from the others and a
    staggered commute (each starts ``k × leg/4`` later), so proximity
    events interleave realistically on the shared clock.

    ``observability=True`` gives every agent handset a recording tracer
    (virtual-time stamps only), which :meth:`Fleet.install_slos` /
    :meth:`Fleet.evaluate_slos` build on.
    """
    if agent_count < 1:
        raise ValueError("a fleet needs at least one agent")
    scheduler = Scheduler(SimulatedClock())
    shared_bus = EventBus()
    sms_center = SmsCenter(scheduler, shared_bus)
    network = SimulatedNetwork(scheduler)
    server = WorkforceServer(network)
    supervisor = MobileDevice(
        SUPERVISOR_NUMBER,
        sms_center=sms_center,
        network=network,
        scheduler=scheduler,
    )
    fleet = Fleet(scheduler=scheduler, server=server, supervisor=supervisor)
    for index in range(agent_count):
        site_centre = destination_point(
            base_latitude, base_longitude, bearing=360.0 * index / agent_count,
            distance_m=5_000.0 * (index + 1),
        )
        site = SiteRegion(
            site_id=f"site-{index + 1}",
            latitude=site_centre.latitude,
            longitude=site_centre.longitude,
            radius_m=500.0,
        )
        profile = AgentProfile(
            agent_id=f"agent-{index + 1}",
            phone_number=f"+91555100{index + 1}",
            supervisor_number=SUPERVISOR_NUMBER,
        )
        start_offset = index * leg_ms / 4.0
        away = destination_point(
            site.latitude, site.longitude, bearing=90.0, distance_m=2_000.0
        )
        home = GeoPoint(site.latitude, site.longitude)
        device = MobileDevice(
            profile.phone_number,
            sms_center=sms_center,
            network=network,
            scheduler=scheduler,
            observability=(
                Observability(capture_real_time=False) if observability else None
            ),
            trajectory=Trajectory(
                [
                    Waypoint(0.0, away),
                    Waypoint(start_offset + leg_ms, home),
                    Waypoint(start_offset + 2 * leg_ms, away),
                ]
            ),
            gps_seed=index,
        )
        platform = AndroidPlatform(device)
        platform.install(PACKAGE, ANDROID_PERMISSIONS)
        fleet.agents.append(
            FleetAgent(profile=profile, site=site, device=device, platform=platform)
        )
    return fleet


def launch_fleet(fleet: Fleet) -> None:
    """Start the proxied workforce app on every agent handset."""
    for agent in fleet.agents:
        config = WorkforceConfig(agent=agent.profile, site=agent.site)
        context = agent.platform.new_context(PACKAGE)
        agent.logic = launch_on_android(agent.platform, context, config)
