"""Without-proxy WebView device app.

No MobiVine: the developer injects raw Java shims over the Android
managers with ``addJavascriptInterface`` and the page hand-rolls
everything the bridge cannot do — proximity detection by polling position
and computing distances in JS, SMS results dropped on the floor (no
callback can cross), errors as untyped strings.  This is the measured
without-proxy artifact for the WebView column of the evaluation.
"""

from __future__ import annotations

import json
import math

from repro.apps.workforce.common import (
    PATH_LOG_EVENT,
    PATH_REPORT_LOCATION,
    SERVER_HOST,
    WorkforceConfig,
    encode,
)
from repro.platforms.android.context import Context
from repro.platforms.android.http import HttpPost, IOException
from repro.platforms.webview.webview import JsWindow, WebView


class LocationManagerShim:
    """Raw Java shim: exposes position reads as bridge-legal primitives."""

    def __init__(self, platform, context: Context) -> None:
        self._platform = platform
        self._context = context

    def get_location_json(self) -> str:
        lm = self._context.get_system_service(Context.LOCATION_SERVICE)
        loc = lm.get_current_location("gps")
        return json.dumps(
            {
                "latitude": loc.get_latitude(),
                "longitude": loc.get_longitude(),
                "timestamp_ms": loc.get_time(),
            }
        )


class SmsManagerShim:
    """Raw Java shim: fire-and-forget send (results cannot reach JS)."""

    def __init__(self, platform, context: Context) -> None:
        self._platform = platform
        self._context = context

    def send_text_message(self, destination: str, text: str) -> str:
        manager = self._platform.sms_manager(self._context)
        return manager.send_text_message(destination, None, text)


class HttpShim:
    """Raw Java shim: blocking POST, status code only."""

    def __init__(self, platform, context: Context) -> None:
        self._platform = platform
        self._context = context

    def post(self, url: str, body: str) -> int:
        client = self._platform.http_client(self._context)
        request = HttpPost(url)
        request.set_entity(body)
        try:
            return client.execute(request).get_status_line().get_status_code()
        except IOException:
            return -1


def install_native_shims(webview: WebView, platform, context: Context) -> None:
    """The without-proxy developer's manual bridge wiring."""
    webview.add_javascript_interface(
        LocationManagerShim(platform.android, context), "LocationManager"
    )
    webview.add_javascript_interface(
        SmsManagerShim(platform.android, context), "SmsManager"
    )
    webview.add_javascript_interface(HttpShim(platform.android, context), "Http")


def make_native_page(config: WorkforceConfig, poll_interval_ms: float = 1000.0):
    """Build the page script (the HTML+JS application body).

    Returns the page callable; after loading, the window global
    ``"app_state"`` holds the mutable application state dict.
    """

    def page(window: JsWindow) -> None:
        state = {"entered_site": False, "activity_events": []}
        window.set_global("app_state", state)
        location_manager = window.bridge_object("LocationManager")
        sms_manager = window.bridge_object("SmsManager")
        http = window.bridge_object("Http")
        site = config.site

        def distance_m(lat1, lon1, lat2, lon2):
            # hand-rolled haversine in page JS (no platform helper exists)
            phi1, phi2 = math.radians(lat1), math.radians(lat2)
            dphi = math.radians(lat2 - lat1)
            dlam = math.radians(lon2 - lon1)
            a = (
                math.sin(dphi / 2.0) ** 2
                + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
            )
            return 2.0 * 6371008.8 * math.asin(min(1.0, math.sqrt(a)))

        def log_event(event, loc):
            status = http.post(
                f"http://{SERVER_HOST}{PATH_LOG_EVENT}",
                encode(
                    {
                        "agent": config.agent.agent_id,
                        "event": event,
                        "detail": "%.5f,%.5f" % (loc["latitude"], loc["longitude"]),
                        "timestamp_ms": loc["timestamp_ms"],
                    }
                ),
            )
            if status != 200:
                state["activity_events"].append("log-failed")
            state["activity_events"].append(event)

        def poll_proximity():
            # hand-rolled proximity detection: no alerts exist in JS
            loc = json.loads(location_manager.get_location_json())
            d = distance_m(
                loc["latitude"], loc["longitude"], site.latitude, site.longitude
            )
            inside = d <= site.radius_m
            if inside and not state["entered_site"]:
                state["entered_site"] = True
                log_event("arrived", loc)
                sms_manager.send_text_message(
                    config.agent.supervisor_number, "Arrived at site"
                )
            elif not inside and state["entered_site"]:
                state["entered_site"] = False
                log_event("departed", loc)

        def report_location():
            loc = json.loads(location_manager.get_location_json())
            status = http.post(
                f"http://{SERVER_HOST}{PATH_REPORT_LOCATION}",
                encode(
                    {
                        "agent": config.agent.agent_id,
                        "latitude": loc["latitude"],
                        "longitude": loc["longitude"],
                        "timestamp_ms": loc["timestamp_ms"],
                    }
                ),
            )
            if status != 200:
                state["activity_events"].append("report-failed")

        window.set_global("report_location", report_location)
        window.set_interval(poll_proximity, poll_interval_ms)

    return page
