"""Without-proxy S60 device app (the paper's Figure 2b, grown to a full
module).

The MIDlet itself implements the native ``ProximityListener`` *and*
``LocationListener`` interfaces, carries the timeout bookkeeping, the
re-registration after each one-shot fire, and the hand-rolled exit
detection — business logic interleaved with gap-filling, exactly the
structure the paper criticizes.
"""

from __future__ import annotations

from repro.apps.workforce.common import (
    PATH_LOG_EVENT,
    PATH_REPORT_LOCATION,
    SERVER_HOST,
    WorkforceConfig,
    encode,
)
from repro.platforms.s60.connector import HttpConnection
from repro.platforms.s60.exceptions import IOException, J2meException
from repro.platforms.s60.location import (
    Coordinates,
    Criteria,
    LocationListener,
    LocationProvider,
    ProximityListener,
    S60Location,
)
from repro.platforms.s60.midlet import MIDlet


class WorkforceNativeS60(MIDlet, ProximityListener, LocationListener):
    """The Figure 2(b) shape: MIDlet + both native listener interfaces."""

    config: WorkforceConfig  # assigned by the launcher before perform_start

    def start_app(self) -> None:
        self.entered_site = False
        self.activity_events = []
        site = self.config.site
        self.radius = site.radius_m
        self.coordinates = Coordinates(site.latitude, site.longitude, 0.0)
        self.time_out_s = self.config.alert_timer_s
        self.start_time_s = self.platform.clock.now_ms / 1000.0
        try:
            # registering for proximity events
            criteria = Criteria()
            criteria.set_preferred_response_time(Criteria.NO_REQUIREMENT)
            criteria.set_vertical_accuracy(50)
            self.lp = self.platform.location_provider.get_instance(criteria)
            self.lp.set_location_listener(self, -1, -1, -1)
            self.platform.location_provider.add_proximity_listener(
                self, self.coordinates, self.radius
            )
        except J2meException:
            # Handle S60 specific exceptions
            raise

    # -- native ProximityListener (one-shot; fires on entry only) ---------------

    def proximity_event(self, coordinates: Coordinates, lo: S60Location) -> None:
        current_time = self.platform.clock.now_ms / 1000.0
        if self.time_out_s != -1 and (current_time - self.start_time_s) > self.time_out_s:
            # time out: stop everything
            self.lp.set_location_listener(None, -1, -1, -1)
            self.platform.location_provider.remove_proximity_listener(self)
            return
        self.entered_site = True
        # business logic for entry event
        self._log_event("arrived", lo)
        self._notify_supervisor("Arrived at site")

    def monitoring_state_changed(self, is_monitoring_active: bool) -> None:
        pass

    # -- native LocationListener (hand-rolled exit detection) ---------------------

    def location_updated(self, lp: LocationProvider, lo: S60Location) -> None:
        current_time = self.platform.clock.now_ms / 1000.0
        if self.time_out_s != -1 and (current_time - self.start_time_s) > self.time_out_s:
            # time out: stop everything
            self.lp.set_location_listener(None, -1, -1, -1)
            self.platform.location_provider.remove_proximity_listener(self)
            return
        if not self.entered_site:
            return
        distance = self.coordinates.distance(lo.get_qualified_coordinates())
        if distance > self.radius:
            self.entered_site = False
            # business logic for exit event
            self._log_event("departed", lo)
            try:
                # re-register the one-shot listener for the next entry
                self.platform.location_provider.add_proximity_listener(
                    self, self.coordinates, self.radius
                )
            except J2meException:
                # Handle S60 specific exceptions
                self.activity_events.append("reregister-failed")

    def provider_state_changed(self, provider: LocationProvider, new_state: int) -> None:
        pass

    # -- business actions, each wired to the GCF stacks -----------------------------

    def report_location(self) -> None:
        """Send the current position to the server over an HttpConnection."""
        lo = self.lp.get_location(-1)
        coordinates = lo.get_qualified_coordinates()
        connection = self.platform.connector.open(
            f"http://{SERVER_HOST}{PATH_REPORT_LOCATION}"
        )
        try:
            connection.set_request_method(HttpConnection.POST)
            connection.write_body(
                encode(
                    {
                        "agent": self.config.agent.agent_id,
                        "latitude": coordinates.get_latitude(),
                        "longitude": coordinates.get_longitude(),
                        "timestamp_ms": lo.get_timestamp(),
                    }
                )
            )
            if connection.get_response_code() != 200:
                self.activity_events.append("report-failed")
        except IOException:
            self.activity_events.append("report-failed")
        finally:
            connection.close()

    def _log_event(self, event: str, lo: S60Location) -> None:
        coordinates = lo.get_qualified_coordinates()
        connection = self.platform.connector.open(
            f"http://{SERVER_HOST}{PATH_LOG_EVENT}"
        )
        try:
            connection.set_request_method(HttpConnection.POST)
            connection.write_body(
                encode(
                    {
                        "agent": self.config.agent.agent_id,
                        "event": event,
                        "detail": (
                            f"{coordinates.get_latitude():.5f},"
                            f"{coordinates.get_longitude():.5f}"
                        ),
                        "timestamp_ms": lo.get_timestamp(),
                    }
                )
            )
            connection.get_response_code()
        except IOException:
            self.activity_events.append("log-failed")
        finally:
            connection.close()
        self.activity_events.append(event)

    def _notify_supervisor(self, text: str) -> None:
        try:
            connection = self.platform.connector.open(
                f"sms://{self.config.agent.supervisor_number}"
            )
            message = connection.new_message(connection.TEXT_MESSAGE)
            message.set_payload_text(text)
            connection.send(message)
            connection.close()
        except J2meException:
            # Handle S60 specific exceptions
            self.activity_events.append("sms-failed")
