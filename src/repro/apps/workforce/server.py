"""The server-side workforce application (Figure 1's right-hand box).

Book-keeping, request allocation and the activity log, served over the
simulated network.  Platform-neutral: every device variant talks to the
same server through whatever HTTP stack its platform provides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.apps.workforce.common import (
    Assignment,
    PATH_COMPLETE_ASSIGNMENT,
    PATH_CREATE_ASSIGNMENT,
    PATH_LOG_EVENT,
    PATH_POLL_ASSIGNMENT,
    PATH_REPORT_LOCATION,
    PATH_STATUS,
    SERVER_HOST,
    decode,
    encode,
)
from repro.device.network import HttpRequest, HttpResponse, SimulatedNetwork
from repro.util.identifiers import IdGenerator


@dataclass
class AgentTrack:
    """Last known state of one agent."""

    agent_id: str
    latitude: float = 0.0
    longitude: float = 0.0
    last_report_ms: float = 0.0
    report_count: int = 0


@dataclass(frozen=True)
class ActivityRecord:
    """One activity-log line."""

    agent_id: str
    event: str
    detail: str
    timestamp_ms: float


class WorkforceServer:
    """Agent tracking, request assignment and the activity log."""

    def __init__(self, network: SimulatedNetwork, host: str = SERVER_HOST) -> None:
        self.host = host
        self._ids = IdGenerator()
        self._tracks: Dict[str, AgentTrack] = {}
        self._activity: List[ActivityRecord] = []
        self._assignments: Dict[str, Assignment] = {}
        server = network.add_server(host)
        server.route("POST", PATH_REPORT_LOCATION, self._on_report_location)
        server.route("POST", PATH_LOG_EVENT, self._on_log_event)
        server.route("POST", PATH_POLL_ASSIGNMENT, self._on_poll_assignment)
        server.route("POST", PATH_CREATE_ASSIGNMENT, self._on_create_assignment)
        server.route("POST", PATH_COMPLETE_ASSIGNMENT, self._on_complete_assignment)
        server.route("GET", PATH_STATUS, self._on_status)
        #: GET requests served (the coalescing benchmarks diff this
        #: against submissions to show the saved round trips).
        self.status_requests = 0

    # -- read model (enterprise dashboard) -----------------------------------

    def track_of(self, agent_id: str) -> Optional[AgentTrack]:
        return self._tracks.get(agent_id)

    def activity_log(self, agent_id: Optional[str] = None) -> List[ActivityRecord]:
        if agent_id is None:
            return list(self._activity)
        return [record for record in self._activity if record.agent_id == agent_id]

    def assignment(self, assignment_id: str) -> Optional[Assignment]:
        return self._assignments.get(assignment_id)

    def assignments_for(self, agent_id: str) -> List[Assignment]:
        return [a for a in self._assignments.values() if a.agent_id == agent_id]

    # -- dispatcher actions -------------------------------------------------------

    def dispatch(self, agent_id: str, site_id: str, description: str) -> Assignment:
        """Create an assignment directly (server-side dispatcher console)."""
        assignment = Assignment(
            assignment_id=self._ids.next("job"),
            agent_id=agent_id,
            site_id=site_id,
            description=description,
        )
        self._assignments[assignment.assignment_id] = assignment
        return assignment

    # -- HTTP handlers --------------------------------------------------------------

    def _on_report_location(self, request: HttpRequest) -> HttpResponse:
        body = decode(request.body)
        agent_id = body.get("agent")
        if not agent_id:
            return HttpResponse(400, encode({"error": "agent required"}))
        track = self._tracks.setdefault(agent_id, AgentTrack(agent_id=agent_id))
        track.latitude = float(body.get("latitude", 0.0))
        track.longitude = float(body.get("longitude", 0.0))
        track.last_report_ms = float(body.get("timestamp_ms", 0.0))
        track.report_count += 1
        return HttpResponse(200, encode({"ok": True}))

    def _on_log_event(self, request: HttpRequest) -> HttpResponse:
        body = decode(request.body)
        agent_id = body.get("agent")
        event = body.get("event")
        if not agent_id or not event:
            return HttpResponse(400, encode({"error": "agent and event required"}))
        self._activity.append(
            ActivityRecord(
                agent_id=agent_id,
                event=event,
                detail=body.get("detail", ""),
                timestamp_ms=float(body.get("timestamp_ms", 0.0)),
            )
        )
        return HttpResponse(200, encode({"ok": True}))

    def _on_poll_assignment(self, request: HttpRequest) -> HttpResponse:
        body = decode(request.body)
        agent_id = body.get("agent")
        if not agent_id:
            return HttpResponse(400, encode({"error": "agent required"}))
        for assignment in self._assignments.values():
            if assignment.agent_id == agent_id and assignment.status == "pending":
                assignment.status = "assigned"
                return HttpResponse(
                    200,
                    encode(
                        {
                            "assignment": assignment.assignment_id,
                            "site": assignment.site_id,
                            "description": assignment.description,
                        }
                    ),
                )
        return HttpResponse(200, encode({"assignment": None}))

    def _on_create_assignment(self, request: HttpRequest) -> HttpResponse:
        body = decode(request.body)
        required = ("agent", "site", "description")
        if any(not body.get(key) for key in required):
            return HttpResponse(400, encode({"error": "agent, site, description required"}))
        assignment = self.dispatch(body["agent"], body["site"], body["description"])
        return HttpResponse(200, encode({"assignment": assignment.assignment_id}))

    def _on_status(self, request: HttpRequest) -> HttpResponse:
        """Stable service descriptor — deliberately a pure function of
        deployment config so concurrent GETs may coalesce safely."""
        self.status_requests += 1
        return HttpResponse(
            200, encode({"ok": True, "service": "workforce", "host": self.host})
        )

    def _on_complete_assignment(self, request: HttpRequest) -> HttpResponse:
        body = decode(request.body)
        assignment = self._assignments.get(body.get("assignment", ""))
        if assignment is None:
            return HttpResponse(404, encode({"error": "unknown assignment"}))
        assignment.status = "completed"
        return HttpResponse(200, encode({"ok": True}))
