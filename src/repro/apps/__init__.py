"""Applications built on the substrates and on MobiVine."""
