"""Profile diff and the perf-regression gate.

Compares two overhead profiles — each loadable from a JSONL trace
export, a saved ``repro.obs.profile/v1`` JSON document, or a
``repro.bench/v1`` ``BENCH_*.json`` result embedding a profile — and
flags per-layer regressions above a noise threshold.

Comparison is on *per-invocation* layer self-time, so a baseline run
with 30 repetitions diffs cleanly against a smoke run with 3.  A layer
regresses when its per-invocation self-time grew by more than
``noise_ms`` **and** more than ``noise_frac`` of the baseline (both
must trip, so microsecond jitter on a near-zero layer never gates).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Union

from repro.obs.analyze.overhead import LAYERS, OverheadProfile, PROFILE_SCHEMA

#: Default gate thresholds (per-invocation milliseconds / fraction).
DEFAULT_NOISE_MS = 0.05
DEFAULT_NOISE_FRAC = 0.10


@dataclass(frozen=True)
class LayerDelta:
    """One (operation, platform, layer) comparison."""

    operation: str
    platform: str
    layer: str
    base_ms: float  # per-invocation
    new_ms: float  # per-invocation
    regressed: bool

    @property
    def delta_ms(self) -> float:
        return self.new_ms - self.base_ms

    @property
    def ratio(self) -> float:
        """Relative growth (0.0 when the baseline layer was empty)."""
        if self.base_ms <= 0.0:
            return 0.0
        return self.delta_ms / self.base_ms

    def to_dict(self) -> Dict[str, Any]:
        return {
            "operation": self.operation,
            "platform": self.platform,
            "layer": self.layer,
            "base_ms": round(self.base_ms, 6),
            "new_ms": round(self.new_ms, 6),
            "delta_ms": round(self.delta_ms, 6),
            "regressed": self.regressed,
        }


@dataclass
class ProfileDiff:
    """Every layer delta between two profiles, plus gate bookkeeping."""

    deltas: List[LayerDelta]
    noise_ms: float
    noise_frac: float
    missing_in_new: List[str]
    new_operations: List[str]

    def regressions(self) -> List[LayerDelta]:
        return [delta for delta in self.deltas if delta.regressed]

    @property
    def passed(self) -> bool:
        return not self.regressions() and not self.missing_in_new

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": "repro.obs.diff/v1",
            "noise_ms": self.noise_ms,
            "noise_frac": self.noise_frac,
            "passed": self.passed,
            "regressions": [delta.to_dict() for delta in self.regressions()],
            "deltas": [delta.to_dict() for delta in self.deltas],
            "missing_in_new": list(self.missing_in_new),
            "new_operations": list(self.new_operations),
        }

    def render_text(self) -> str:
        lines: List[str] = []
        regressions = self.regressions()
        if regressions:
            lines.append(
                f"REGRESSIONS ({len(regressions)}) — per-invocation self-time, "
                f"thresholds: +{self.noise_ms}ms and +{self.noise_frac * 100:.0f}%"
            )
            for delta in regressions:
                lines.append(
                    f"  {delta.operation}/{delta.platform} {delta.layer}: "
                    f"{delta.base_ms:.4f}ms -> {delta.new_ms:.4f}ms "
                    f"(+{delta.delta_ms:.4f}ms, +{delta.ratio * 100:.1f}%)"
                )
        else:
            lines.append("no per-layer regressions above the noise threshold")
        if self.missing_in_new:
            lines.append(f"missing in new profile: {', '.join(self.missing_in_new)}")
        if self.new_operations:
            lines.append(f"new operations: {', '.join(self.new_operations)}")
        improved = [
            delta for delta in self.deltas
            if delta.delta_ms < -self.noise_ms and not delta.regressed
        ]
        if improved:
            lines.append(f"improved layers: {len(improved)}")
        return "\n".join(lines)


ProfileLike = Union[OverheadProfile, Dict[str, Any], str]


def _as_profile(source: ProfileLike) -> OverheadProfile:
    if isinstance(source, OverheadProfile):
        return source
    if isinstance(source, dict):
        return _profile_from_document(source)
    return load_profile_text(source)


def _profile_from_document(payload: Dict[str, Any]) -> OverheadProfile:
    if payload.get("schema") == PROFILE_SCHEMA:
        return OverheadProfile.from_dict(payload)
    # A repro.bench/v1 result embedding the traced profile.
    metrics = payload.get("metrics")
    if isinstance(metrics, dict) and metrics.get("profile", {}).get("schema") == PROFILE_SCHEMA:
        return OverheadProfile.from_dict(metrics["profile"])
    raise ValueError("document is neither a profile nor a bench result with one")


def load_profile_text(text: str) -> OverheadProfile:
    """Build a profile from file content: a JSONL trace export, a saved
    profile document, or a BENCH result embedding one."""
    stripped = text.lstrip()
    if not stripped:
        return OverheadProfile()
    first_line = stripped.splitlines()[0]
    try:
        head = json.loads(first_line)
    except json.JSONDecodeError:
        head = None
    if isinstance(head, dict) and "span_id" in head:
        return OverheadProfile.from_jsonl(text)
    payload = json.loads(text)
    if not isinstance(payload, dict):
        raise ValueError("unrecognized profile document")
    return _profile_from_document(payload)


def load_profile(path) -> OverheadProfile:
    """:func:`load_profile_text` over a file path."""
    with open(path, encoding="utf-8") as handle:
        return load_profile_text(handle.read())


def diff_profiles(
    base: ProfileLike,
    new: ProfileLike,
    *,
    noise_ms: float = DEFAULT_NOISE_MS,
    noise_frac: float = DEFAULT_NOISE_FRAC,
) -> ProfileDiff:
    """Per-layer comparison of two profiles (see the module docstring
    for the regression rule)."""
    base_profile = _as_profile(base)
    new_profile = _as_profile(new)
    deltas: List[LayerDelta] = []
    base_keys = set(base_profile.operations)
    new_keys = set(new_profile.operations)
    for key in sorted(base_keys & new_keys):
        base_entry = base_profile.operations[key]
        new_entry = new_profile.operations[key]
        layers = sorted(
            set(base_entry.layer_self_ms) | set(new_entry.layer_self_ms) | set(LAYERS)
        )
        for layer in layers:
            base_ms = base_entry.per_invocation(layer)
            new_ms = new_entry.per_invocation(layer)
            growth = new_ms - base_ms
            regressed = growth > noise_ms and (
                base_ms <= 0.0 or growth > noise_frac * base_ms
            )
            deltas.append(
                LayerDelta(
                    operation=key[0],
                    platform=key[1],
                    layer=layer,
                    base_ms=base_ms,
                    new_ms=new_ms,
                    regressed=regressed,
                )
            )
    return ProfileDiff(
        deltas=deltas,
        noise_ms=noise_ms,
        noise_frac=noise_frac,
        missing_in_new=[f"{op}/{plat}" for op, plat in sorted(base_keys - new_keys)],
        new_operations=[f"{op}/{plat}" for op, plat in sorted(new_keys - base_keys)],
    )
