"""Admission-control analytics over exported traces.

``python -m repro.obs admission TRACE`` folds a JSONL trace export into
one :class:`AdmissionReport`: how many submissions each priority class
shed or throttled (from the enriched ``queue.shed`` /
``queue.throttled`` span events), why (the ``reason`` attribute — door
rejections vs priority evictions), and what the autoscaler did about it
(the ``autoscale.resize`` event stream).  It is the post-hoc view of
the live ``admission.*`` metric namespace — everything here is
recomputed from the trace alone, so a saved export from CI answers
"who got shed and did the fleet scale?" without rerunning anything.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

__all__ = ["AdmissionReport", "render_admission_text"]

#: Span events this report folds (name → report bucket).
_REJECTION_EVENTS = ("queue.shed", "queue.throttled")


class AdmissionReport:
    """Shed / throttle / autoscale activity folded from one trace."""

    def __init__(self) -> None:
        #: priority name → rejection count, per rejection kind.
        self.shed_by_priority: Dict[str, int] = {}
        self.throttled_by_priority: Dict[str, int] = {}
        #: shed reason (``queue_full`` / ``evicted``) → count.
        self.shed_by_reason: Dict[str, int] = {}
        #: platform → rejection count (both kinds).
        self.by_platform: Dict[str, int] = {}
        #: tenant → throttle count (from the 1013 context).
        self.throttled_by_tenant: Dict[str, int] = {}
        #: autoscaler decisions in trace order.
        self.resizes: List[Dict[str, Any]] = []

    @classmethod
    def from_records(cls, records: List[Dict[str, Any]]) -> "AdmissionReport":
        report = cls()
        for record in records:
            for event in record.get("events") or []:
                name = event.get("name")
                attributes = event.get("attributes") or {}
                priority = str(attributes.get("priority", "unknown"))
                platform = str(attributes.get("platform", "unknown"))
                if name == "queue.shed":
                    reason = str(attributes.get("reason", "unknown"))
                    _bump(report.shed_by_priority, priority)
                    _bump(report.shed_by_reason, reason)
                    _bump(report.by_platform, platform)
                elif name == "queue.throttled":
                    _bump(report.throttled_by_priority, priority)
                    _bump(report.by_platform, platform)
                    _bump(
                        report.throttled_by_tenant,
                        str(attributes.get("tenant", "unknown")),
                    )
                elif name == "autoscale.resize":
                    report.resizes.append(
                        {
                            "t_ms": event.get("t_virtual_ms"),
                            "platform": platform,
                            "from": attributes.get("from_shards"),
                            "to": attributes.get("to_shards"),
                            "direction": attributes.get("direction"),
                        }
                    )
        return report

    @property
    def shed_total(self) -> int:
        return sum(self.shed_by_priority.values())

    @property
    def throttled_total(self) -> int:
        return sum(self.throttled_by_priority.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shed_total": self.shed_total,
            "throttled_total": self.throttled_total,
            "shed_by_priority": dict(sorted(self.shed_by_priority.items())),
            "throttled_by_priority": dict(
                sorted(self.throttled_by_priority.items())
            ),
            "shed_by_reason": dict(sorted(self.shed_by_reason.items())),
            "by_platform": dict(sorted(self.by_platform.items())),
            "throttled_by_tenant": dict(
                sorted(self.throttled_by_tenant.items())
            ),
            "resizes": list(self.resizes),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"


def _bump(table: Dict[str, int], key: str) -> None:
    table[key] = table.get(key, 0) + 1


def render_admission_text(report: AdmissionReport) -> str:
    """The operator-facing table (``--format text``)."""
    lines = [
        f"admission: {report.shed_total} shed, "
        f"{report.throttled_total} throttled, "
        f"{len(report.resizes)} autoscaler resizes"
    ]
    if report.shed_by_priority:
        lines.append("  shed by priority:")
        for priority, count in sorted(report.shed_by_priority.items()):
            lines.append(f"    {priority:<8} {count}")
    if report.shed_by_reason:
        lines.append("  shed by reason:")
        for reason, count in sorted(report.shed_by_reason.items()):
            lines.append(f"    {reason:<12} {count}")
    if report.throttled_by_tenant:
        lines.append("  throttled by tenant:")
        for tenant, count in sorted(report.throttled_by_tenant.items()):
            lines.append(f"    {tenant:<12} {count}")
    if report.by_platform:
        lines.append("  rejections by platform:")
        for platform, count in sorted(report.by_platform.items()):
            lines.append(f"    {platform:<8} {count}")
    if report.resizes:
        lines.append("  autoscaler:")
        for resize in report.resizes:
            t_ms = resize.get("t_ms")
            stamp = f"{t_ms:.1f}ms" if isinstance(t_ms, (int, float)) else "?"
            lines.append(
                f"    @{stamp} {resize.get('platform')}: "
                f"{resize.get('from')} -> {resize.get('to')} "
                f"({resize.get('direction')})"
            )
    if len(lines) == 1:
        lines.append("  (no admission activity in this trace)")
    return "\n".join(lines)
