"""Declarative SLOs over the virtual clock.

An :class:`SloSpec` states the promise ("p-fraction of ``getLocation``
calls complete under T ms, with at most E errors") and the
:class:`SloEngine` checks it over a sliding virtual-time window, fed
either live (``observe``) or from exported dispatch spans
(``ingest_records``).

Evaluation emits:

* ``slo.attainment`` / ``slo.error_rate`` / ``slo.window_count`` gauges
  per SLO into the attached :class:`~repro.obs.metrics.MetricsRegistry`;
* an edge-triggered ``slo.breaches`` counter, and — when a tracer is
  attached — an ``slo:evaluate`` span carrying one ``slo.breach`` event
  per newly-breached SLO.

Everything is a pure function of the observation stream and the
evaluation times: no wall clock, no randomness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SloSpec:
    """One service-level objective for one proxied operation.

    ``platform=None`` matches the operation on every platform; the
    window slides on the device's virtual clock.
    """

    operation: str
    latency_threshold_ms: float
    target_ratio: float = 0.99
    error_budget: float = 0.01
    window_ms: float = 60_000.0
    platform: Optional[str] = None

    def __post_init__(self) -> None:
        if self.latency_threshold_ms <= 0:
            raise ConfigurationError("latency_threshold_ms must be positive")
        if not 0.0 < self.target_ratio <= 1.0:
            raise ConfigurationError("target_ratio must be in (0, 1]")
        if not 0.0 <= self.error_budget <= 1.0:
            raise ConfigurationError("error_budget must be in [0, 1]")
        if self.window_ms <= 0:
            raise ConfigurationError("window_ms must be positive")

    @property
    def name(self) -> str:
        return f"{self.operation}@{self.platform or '*'}"

    def matches(self, operation: str, platform: Optional[str]) -> bool:
        if operation != self.operation:
            return False
        return self.platform is None or self.platform == platform

    @classmethod
    def parse(cls, text: str) -> "SloSpec":
        """``op:threshold_ms[:target[:window_ms[:platform]]]`` (CLI form)."""
        parts = text.split(":")
        if len(parts) < 2:
            raise ConfigurationError(
                f"SLO spec {text!r} must be op:threshold_ms[:target[:window_ms[:platform]]]"
            )
        kwargs: Dict[str, Any] = {
            "operation": parts[0],
            "latency_threshold_ms": float(parts[1]),
        }
        if len(parts) > 2 and parts[2]:
            kwargs["target_ratio"] = float(parts[2])
        if len(parts) > 3 and parts[3]:
            kwargs["window_ms"] = float(parts[3])
        if len(parts) > 4 and parts[4]:
            kwargs["platform"] = parts[4]
        return cls(**kwargs)


@dataclass
class SloStatus:
    """One SLO's state at one evaluation instant."""

    spec: SloSpec
    at_ms: float
    window_count: int
    good: int
    errors: int
    breached: bool
    reasons: List[str] = field(default_factory=list)

    @property
    def attainment(self) -> float:
        """Fraction of windowed calls that met the latency promise
        (vacuously 1.0 on an empty window)."""
        if not self.window_count:
            return 1.0
        return self.good / self.window_count

    @property
    def error_rate(self) -> float:
        if not self.window_count:
            return 0.0
        return self.errors / self.window_count

    def to_dict(self) -> Dict[str, Any]:
        return {
            "slo": self.spec.name,
            "operation": self.spec.operation,
            "platform": self.spec.platform,
            "at_ms": round(self.at_ms, 6),
            "window_count": self.window_count,
            "attainment": round(self.attainment, 6),
            "target_ratio": self.spec.target_ratio,
            "error_rate": round(self.error_rate, 6),
            "error_budget": self.spec.error_budget,
            "latency_threshold_ms": self.spec.latency_threshold_ms,
            "breached": self.breached,
            "reasons": list(self.reasons),
        }


class SloEngine:
    """Evaluates a set of :class:`SloSpec` over sliding windows.

    Parameters
    ----------
    specs:
        The objectives to track.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` receiving
        the ``slo.*`` series on every :meth:`evaluate`.
    tracer:
        Optional tracer; newly-breached SLOs are recorded as an
        ``slo:evaluate`` span with one ``slo.breach`` event each.
    """

    def __init__(
        self,
        specs: Sequence[SloSpec],
        *,
        metrics=None,
        tracer=None,
        flight=None,
    ) -> None:
        if not specs:
            raise ConfigurationError("an SLO engine needs at least one spec")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate SLO names: {sorted(names)}")
        self.specs = tuple(specs)
        self.metrics = metrics
        self.tracer = tracer
        #: Optional flight recorder; every newly-breached SLO triggers a dump.
        self.flight = flight
        #: per-spec window entries: (t_ms, latency_ms, ok)
        self._windows: Dict[str, List[Tuple[float, float, bool]]] = {
            spec.name: [] for spec in self.specs
        }
        self._breached: Dict[str, bool] = {spec.name: False for spec in self.specs}

    # -- feeding -------------------------------------------------------------

    def observe(
        self,
        operation: str,
        latency_ms: float,
        *,
        ok: bool = True,
        platform: Optional[str] = None,
        t_ms: float = 0.0,
    ) -> None:
        """Record one completed invocation against every matching SLO."""
        for spec in self.specs:
            if spec.matches(operation, platform):
                self._windows[spec.name].append((t_ms, latency_ms, ok))

    def ingest_records(self, records: Iterable[Dict[str, Any]]) -> int:
        """Feed exported span records; only finished ``dispatch:*`` spans
        count.  Returns the number of invocations ingested."""
        dispatches = [
            record
            for record in records
            if record.get("name", "").startswith("dispatch:")
            and record.get("end_virtual_ms") is not None
        ]
        dispatches.sort(key=lambda r: (r["end_virtual_ms"], r["span_id"]))
        for record in dispatches:
            operation = record["name"].split(":", 1)[1]
            attributes = record.get("attributes") or {}
            start = record.get("start_virtual_ms") or 0.0
            end = record["end_virtual_ms"]
            self.observe(
                operation,
                max(0.0, end - start),
                ok=record.get("status") == "ok",
                platform=attributes.get("platform"),
                t_ms=end,
            )
        return len(dispatches)

    def ingest_spans(self, spans: Iterable) -> int:
        """Feed live :class:`~repro.obs.span.Span` objects."""
        return self.ingest_records(
            span.to_dict() for span in spans if span.finished
        )

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, now_ms: float) -> List[SloStatus]:
        """Prune every window to ``(now - window, now]`` and judge each
        SLO, emitting metrics and breach events."""
        statuses: List[SloStatus] = []
        newly_breached: List[SloStatus] = []
        for spec in self.specs:
            window = [
                entry
                for entry in self._windows[spec.name]
                if now_ms - spec.window_ms < entry[0] <= now_ms
            ]
            self._windows[spec.name] = window
            good = sum(
                1 for _, latency, ok in window
                if ok and latency <= spec.latency_threshold_ms
            )
            errors = sum(1 for _, _, ok in window if not ok)
            status = SloStatus(
                spec=spec,
                at_ms=now_ms,
                window_count=len(window),
                good=good,
                errors=errors,
                breached=False,
            )
            if status.attainment < spec.target_ratio:
                status.reasons.append(
                    f"attainment {status.attainment:.4f} < target {spec.target_ratio}"
                )
            if status.error_rate > spec.error_budget:
                status.reasons.append(
                    f"error rate {status.error_rate:.4f} > budget {spec.error_budget}"
                )
            status.breached = bool(status.reasons)
            if status.breached and not self._breached[spec.name]:
                newly_breached.append(status)
            self._breached[spec.name] = status.breached
            statuses.append(status)

        self._emit(statuses, newly_breached)
        return statuses

    def _emit(
        self, statuses: List[SloStatus], newly_breached: List[SloStatus]
    ) -> None:
        if self.metrics is not None:
            self.metrics.counter("slo.evaluations").inc()
            for status in statuses:
                name = status.spec.name
                self.metrics.gauge("slo.attainment", slo=name).set(status.attainment)
                self.metrics.gauge("slo.error_rate", slo=name).set(status.error_rate)
                self.metrics.gauge("slo.window_count", slo=name).set(
                    status.window_count
                )
            for status in newly_breached:
                self.metrics.counter("slo.breaches", slo=status.spec.name).inc()
        if newly_breached and self.tracer is not None and self.tracer.enabled:
            with self.tracer.span("slo:evaluate", breached=len(newly_breached)):
                for status in newly_breached:
                    self.tracer.event(
                        "slo.breach",
                        slo=status.spec.name,
                        attainment=round(status.attainment, 6),
                        error_rate=round(status.error_rate, 6),
                        window_count=status.window_count,
                        reasons="; ".join(status.reasons),
                    )
        if self.flight is not None:
            for status in newly_breached:
                self.flight.trigger(
                    "slo.breach",
                    slo=status.spec.name,
                    attainment=round(status.attainment, 6),
                    error_rate=round(status.error_rate, 6),
                    reasons="; ".join(status.reasons),
                )

    def breached(self) -> List[str]:
        """Names of the SLOs currently in breach (as of the last
        :meth:`evaluate`)."""
        return sorted(name for name, state in self._breached.items() if state)
