"""Critical-path analysis over concurrent trace exports.

``bench_concurrency`` shows a K-shard drain finishing in roughly
work/K virtual milliseconds — but *roughly* is not an explanation.  This
module walks the lane schedule (the ``queue:<op>`` spans whose virtual
intervals genuinely overlap across shards) **backwards from the last
finisher** and produces the chain of segments that exactly accounts for
the drain makespan:

* a **run** step — a request executing on a lane, reached either because
  it was the latest finisher or because the chain's current request
  queued behind it on the same lane (a resource edge);
* a **wait** step — an interval where no lane span ends (arrival gaps,
  sleeps, substrate timers): nothing the dispatcher did could have
  shortened it.

The steps are contiguous by construction, so their durations sum to the
makespan *exactly* — the acceptance property the concurrency benchmark
asserts.  Alongside the path, every lane span gets a **slack**: how much
longer it could have run without growing the makespan, assuming the work
queued behind it on its lane shifts with it
(``makespan_end − span_end − Σ later same-lane durations``).  Spans on a
fully-packed critical lane have zero slack; big slack elsewhere is the
imbalance that explains "why not K× at K shards".

Everything is virtual-time arithmetic over the export — deterministic
and byte-identical across identically-seeded runs.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.span import Span
from repro.obs.timeline import LaneSegment, ShardLane, ShardTimelines

CRITICAL_PATH_SCHEMA = "repro.obs.critical_path/v1"

#: Two virtual instants closer than this are the same instant.
_EPS = 1e-9


class PathStep:
    """One contiguous interval of the critical path."""

    __slots__ = ("kind", "start_ms", "end_ms", "lane", "span_id", "operation")

    def __init__(
        self,
        kind: str,
        start_ms: float,
        end_ms: float,
        *,
        lane: Optional[str] = None,
        span_id: Optional[int] = None,
        operation: Optional[str] = None,
    ) -> None:
        self.kind = kind  # "run" | "wait"
        self.start_ms = start_ms
        self.end_ms = end_ms
        self.lane = lane
        self.span_id = span_id
        self.operation = operation

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "start_ms": round(self.start_ms, 6),
            "end_ms": round(self.end_ms, 6),
            "duration_ms": round(self.duration_ms, 6),
            "lane": self.lane,
            "span_id": self.span_id,
            "operation": self.operation,
        }


class CriticalPath:
    """The chain of segments that explains a concurrent drain's makespan."""

    def __init__(self) -> None:
        self.t0_ms = 0.0
        self.t_end_ms = 0.0
        #: Chronological path steps; contiguous over [t0, t_end].
        self.steps: List[PathStep] = []
        #: Every lane span with its slack, sorted (lane, start, span_id).
        self.span_slack: List[Dict[str, Any]] = []
        self.lane_count = 0
        self.work_ms = 0.0

    # -- construction --------------------------------------------------------

    @classmethod
    def from_records(cls, records: Sequence[Dict[str, Any]]) -> "CriticalPath":
        return cls.from_timelines(ShardTimelines.from_records(records))

    @classmethod
    def from_spans(cls, spans: Iterable[Span]) -> "CriticalPath":
        return cls.from_records([span.to_dict() for span in spans])

    @classmethod
    def from_timelines(cls, timelines: ShardTimelines) -> "CriticalPath":
        path = cls()
        lanes = [lane for lane in timelines.sorted_lanes() if lane.segments]
        path.lane_count = len(lanes)
        path.work_ms = sum(lane.busy_ms for lane in lanes)
        if not lanes:
            return path
        path.t0_ms = timelines.t0_ms
        path.t_end_ms = timelines.t_end_ms
        flat: List[Tuple[ShardLane, LaneSegment]] = [
            (lane, segment) for lane in lanes for segment in lane.segments
        ]
        path._walk(flat)
        path._compute_slack(lanes)
        return path

    def _walk(self, flat: List[Tuple[ShardLane, LaneSegment]]) -> None:
        """Backward sweep: cover [t0, t_end] with contiguous steps."""
        steps: List[PathStep] = []
        cursor = self.t_end_ms
        current_lane: Optional[str] = None
        while cursor > self.t0_ms + _EPS:
            ending = [
                (lane, segment)
                for lane, segment in flat
                if abs(segment.end_ms - cursor) <= _EPS
            ]
            if ending:
                # Prefer continuing on the chain's lane (a resource
                # edge: the successor queued behind this request), then
                # the earliest-starting (longest) segment, then the
                # smallest span id — all deterministic.
                lane, segment = min(
                    ending,
                    key=lambda item: (
                        0 if item[0].name == current_lane else 1,
                        item[1].start_ms,
                        item[1].span_id,
                    ),
                )
                steps.append(
                    PathStep(
                        "run",
                        segment.start_ms,
                        cursor,
                        lane=lane.name,
                        span_id=segment.span_id,
                        operation=segment.operation,
                    )
                )
                cursor = segment.start_ms
                current_lane = lane.name
            else:
                below = [
                    segment.end_ms
                    for _, segment in flat
                    if segment.end_ms < cursor - _EPS
                ]
                floor = max(below) if below else self.t0_ms
                steps.append(PathStep("wait", floor, cursor))
                cursor = floor
                current_lane = None
        steps.reverse()
        self.steps = steps

    def _compute_slack(self, lanes: List[ShardLane]) -> None:
        entries: List[Dict[str, Any]] = []
        for lane in lanes:
            trailing = 0.0
            # Walk each lane back-to-front accumulating downstream work.
            slack_by_id: Dict[int, float] = {}
            for segment in reversed(lane.segments):
                slack_by_id[segment.span_id] = max(
                    0.0, self.t_end_ms - segment.end_ms - trailing
                )
                trailing += segment.duration_ms
            for segment in lane.segments:
                entries.append(
                    {
                        "lane": lane.name,
                        "span_id": segment.span_id,
                        "operation": segment.operation,
                        "start_ms": round(segment.start_ms, 6),
                        "end_ms": round(segment.end_ms, 6),
                        "slack_ms": round(slack_by_id[segment.span_id], 6),
                    }
                )
        entries.sort(key=lambda e: (e["lane"], e["start_ms"], e["span_id"]))
        self.span_slack = entries

    # -- reading -------------------------------------------------------------

    @property
    def makespan_ms(self) -> float:
        return self.t_end_ms - self.t0_ms

    @property
    def run_ms(self) -> float:
        return sum(step.duration_ms for step in self.steps if step.kind == "run")

    @property
    def wait_ms(self) -> float:
        return sum(step.duration_ms for step in self.steps if step.kind == "wait")

    @property
    def total_ms(self) -> float:
        """Sum of step durations — equals the makespan exactly (the
        steps tile [t0, t_end] contiguously)."""
        return sum(step.duration_ms for step in self.steps)

    @property
    def ideal_ms(self) -> float:
        """Perfectly-balanced makespan: total work / lanes."""
        if not self.lane_count:
            return 0.0
        return self.work_ms / self.lane_count

    @property
    def parallelism(self) -> float:
        """Achieved parallelism: work / makespan (K when lanes are
        fully packed, lower when waits or imbalance stretch the drain)."""
        if self.makespan_ms <= 0:
            return 0.0
        return self.work_ms / self.makespan_ms

    def by_operation(self) -> Dict[str, float]:
        """Critical-path run milliseconds attributed per operation."""
        out: Dict[str, float] = {}
        for step in self.steps:
            if step.kind == "run" and step.operation is not None:
                out[step.operation] = out.get(step.operation, 0.0) + step.duration_ms
        return {name: round(ms, 6) for name, ms in sorted(out.items())}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": CRITICAL_PATH_SCHEMA,
            "t0_ms": round(self.t0_ms, 6),
            "t_end_ms": round(self.t_end_ms, 6),
            "makespan_ms": round(self.makespan_ms, 6),
            "run_ms": round(self.run_ms, 6),
            "wait_ms": round(self.wait_ms, 6),
            "work_ms": round(self.work_ms, 6),
            "lane_count": self.lane_count,
            "ideal_ms": round(self.ideal_ms, 6),
            "parallelism": round(self.parallelism, 6),
            "by_operation": self.by_operation(),
            "steps": [step.to_dict() for step in self.steps],
            "spans": self.span_slack,
        }

    def to_json(self) -> str:
        """Deterministic serialized form (sorted keys, 6-dp rounding)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":")) + "\n"

    def render_text(self, *, max_steps: int = 40) -> str:
        """Operator view: the headline decomposition, the path steps
        (elided in the middle past ``max_steps``), and the biggest-slack
        spans that quantify the imbalance."""
        if not self.steps:
            return "(no lane spans in trace)"
        lines = [
            f"critical path: makespan {self.makespan_ms:.1f}ms = "
            f"run {self.run_ms:.1f}ms + wait {self.wait_ms:.1f}ms "
            f"({len(self.steps)} step(s))",
            f"lanes={self.lane_count} work={self.work_ms:.1f}ms "
            f"ideal={self.ideal_ms:.1f}ms parallelism={self.parallelism:.2f}",
        ]
        operations = self.by_operation()
        if operations:
            parts = ", ".join(f"{name}={ms:.1f}ms" for name, ms in operations.items())
            lines.append(f"run time by operation: {parts}")
        steps = self.steps
        shown: List[Optional[PathStep]]
        if len(steps) > max_steps:
            head = max_steps // 2
            tail = max_steps - head
            shown = list(steps[:head]) + [None] + list(steps[-tail:])
            elided = len(steps) - head - tail
        else:
            shown = list(steps)
            elided = 0
        for step in shown:
            if step is None:
                lines.append(f"  ... {elided} step(s) elided ...")
                continue
            if step.kind == "run":
                lines.append(
                    f"  @{step.start_ms:.1f}ms +{step.duration_ms:.1f}ms run  "
                    f"queue:{step.operation} lane={step.lane} span={step.span_id}"
                )
            else:
                lines.append(
                    f"  @{step.start_ms:.1f}ms +{step.duration_ms:.1f}ms wait"
                )
        slackers = [e for e in self.span_slack if e["slack_ms"] > 0]
        slackers.sort(key=lambda e: (-e["slack_ms"], e["lane"], e["span_id"]))
        if slackers:
            lines.append("largest slack (delay tolerated without growing makespan):")
            for entry in slackers[:5]:
                lines.append(
                    f"  span {entry['span_id']} queue:{entry['operation']} "
                    f"lane={entry['lane']} slack={entry['slack_ms']:.1f}ms"
                )
        return "\n".join(lines)
