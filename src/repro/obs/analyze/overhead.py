"""Per-layer overhead accounting over exported span trees.

The paper's Figure 10 decomposes one proxied invocation into *native
cost* vs *middleware overhead*.  The span vocabulary makes that
decomposition mechanical: a ``dispatch:<op>`` tree contains exactly one
layer per span-name prefix —

``dispatch`` → ``resilience`` → ``binding`` → ``substrate`` /
``bridge``

— so folding the tree into *exclusive self-time* per layer (a span's
duration minus its children's durations) yields the middleware-vs-native
split per invocation, and aggregating over invocations yields it per
operation × platform.  ``substrate`` self-time is the simulated native
charge; everything else is the MobiVine layer.

All arithmetic defaults to the deterministic virtual-time stamps, so
two identically-seeded runs produce byte-identical profiles
(:meth:`OverheadProfile.to_json`).  Traces exported with
``include_real_time=True`` can instead be folded in the ``real`` time
domain (``OverheadProfile.from_records(records, time="real")``) — that
is the profiling view: actual Python execution cost per layer, which
is where the middleware's own overhead shows up (virtual time only
advances on substrate charges, so virtual middleware self-time is
structurally ~0).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.quantiles import StreamingPercentiles
from repro.obs.span import Span

#: The layer vocabulary, in stack order.  ``substrate`` is the native
#: charge; the rest is the middleware.
LAYERS: Tuple[str, ...] = ("dispatch", "resilience", "binding", "bridge", "substrate")

#: Layers billed to the middleware (Figure 10's "overhead" bar segment).
MIDDLEWARE_LAYERS: Tuple[str, ...] = ("dispatch", "resilience", "binding", "bridge")

PROFILE_SCHEMA = "repro.obs.profile/v1"

#: Time domains a trace can be folded in.  ``virtual`` is deterministic;
#: ``real`` requires an export made with ``include_real_time=True``.
TIME_DOMAINS: Tuple[str, ...] = ("virtual", "real")


# ---------------------------------------------------------------------------
# Span records: the dict form every analytics entry point consumes
# ---------------------------------------------------------------------------

def parse_jsonl(text: str) -> List[Dict[str, Any]]:
    """Parse a JSONL trace export into span records (dicts), preserving
    every field so that :func:`records_to_jsonl` round-trips
    byte-identically."""
    records: List[Dict[str, Any]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if not isinstance(record, dict) or "span_id" not in record:
            raise ValueError(f"line {lineno} is not a span record")
        records.append(record)
    return records


def records_to_jsonl(records: Iterable[Dict[str, Any]]) -> str:
    """Re-serialize parsed records exactly as :func:`~repro.obs.exporters.export_jsonl` does."""
    lines = [
        json.dumps(record, sort_keys=True, separators=(",", ":"))
        for record in records
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def spans_to_records(
    spans: Iterable[Span], *, include_real_time: bool = False
) -> List[Dict[str, Any]]:
    """Live :class:`~repro.obs.span.Span` objects as records."""
    return [span.to_dict(include_real_time=include_real_time) for span in spans]


def _duration(record: Dict[str, Any], time_domain: str = "virtual") -> float:
    start = record.get(f"start_{time_domain}_ms") or 0.0
    end = record.get(f"end_{time_domain}_ms")
    if end is None:
        return 0.0
    return max(0.0, end - start)


def _layer_of(name: str) -> str:
    prefix = name.split(":", 1)[0]
    return prefix if prefix in LAYERS else "other"


def _segments(records: Sequence[Dict[str, Any]]) -> List[List[Dict[str, Any]]]:
    """Split a concatenated export into per-tracer segments.

    Span ids are strictly increasing within one tracer's export; a
    repeated id therefore marks the start of another tracer's batch
    (e.g. three platforms appended to one file).  Parent links are only
    resolved within a segment, so id collisions across tracers can
    never mis-link trees.
    """
    segments: List[List[Dict[str, Any]]] = []
    current: List[Dict[str, Any]] = []
    seen: set = set()
    for record in records:
        span_id = record["span_id"]
        if span_id in seen:
            segments.append(current)
            current = []
            seen = set()
        seen.add(span_id)
        current.append(record)
    if current:
        segments.append(current)
    return segments


# ---------------------------------------------------------------------------
# The profile model
# ---------------------------------------------------------------------------

class OperationProfile:
    """Aggregated per-layer accounting for one operation × platform."""

    __slots__ = (
        "operation", "platform", "invocations", "errors",
        "layer_self_ms", "layer_spans", "total_ms", "latency",
    )

    def __init__(self, operation: str, platform: str) -> None:
        self.operation = operation
        self.platform = platform
        self.invocations = 0
        self.errors = 0
        self.layer_self_ms: Dict[str, float] = {layer: 0.0 for layer in LAYERS}
        self.layer_spans: Dict[str, int] = {layer: 0 for layer in LAYERS}
        self.total_ms = 0.0
        self.latency = StreamingPercentiles()

    @property
    def native_ms(self) -> float:
        """Total substrate (simulated native) self-time."""
        return self.layer_self_ms.get("substrate", 0.0)

    @property
    def middleware_ms(self) -> float:
        """Total self-time of every non-substrate layer: the Figure-10
        overhead the proxy adds on top of the native call."""
        return sum(
            ms for layer, ms in self.layer_self_ms.items() if layer != "substrate"
        )

    def per_invocation(self, layer: str) -> float:
        """Mean self-time of one layer per invocation."""
        if not self.invocations:
            return 0.0
        return self.layer_self_ms.get(layer, 0.0) / self.invocations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "operation": self.operation,
            "platform": self.platform,
            "invocations": self.invocations,
            "errors": self.errors,
            "layers": {
                layer: {
                    "self_ms": round(self.layer_self_ms[layer], 6),
                    "spans": self.layer_spans[layer],
                }
                for layer in sorted(self.layer_self_ms)
            },
            "native_ms": round(self.native_ms, 6),
            "middleware_ms": round(self.middleware_ms, 6),
            "total_ms": round(self.total_ms, 6),
            "latency_ms": {
                "mean": round(self.latency.mean, 6),
                "max": round(self.latency.max, 6),
                **{
                    label: round(value, 6)
                    for label, value in self.latency.as_dict().items()
                },
            },
        }


class OverheadProfile:
    """The full Figure-10 decomposition, derived from traces."""

    def __init__(self, *, time_domain: str = "virtual") -> None:
        if time_domain not in TIME_DOMAINS:
            raise ValueError(f"time_domain must be one of {TIME_DOMAINS}")
        self.time_domain = time_domain
        self.operations: Dict[Tuple[str, str], OperationProfile] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def from_records(
        cls, records: Sequence[Dict[str, Any]], *, time: str = "virtual"
    ) -> "OverheadProfile":
        profile = cls(time_domain=time)
        for segment in _segments(records):
            profile._fold_segment(segment)
        return profile

    @classmethod
    def from_jsonl(cls, text: str, *, time: str = "virtual") -> "OverheadProfile":
        return cls.from_records(parse_jsonl(text), time=time)

    @classmethod
    def from_spans(
        cls, spans: Iterable[Span], *, time: str = "virtual"
    ) -> "OverheadProfile":
        return cls.from_records(
            spans_to_records(spans, include_real_time=(time == "real")), time=time
        )

    def _fold_segment(self, segment: Sequence[Dict[str, Any]]) -> None:
        known = {record["span_id"] for record in segment}
        children: Dict[int, List[Dict[str, Any]]] = {}
        roots: List[Dict[str, Any]] = []
        for record in segment:
            parent = record.get("parent_id")
            if parent is not None and parent in known:
                children.setdefault(parent, []).append(record)
            else:
                # Unknown parents happen on partial/filtered exports;
                # treat those spans as roots, like the tree renderer.
                roots.append(record)
        for root in roots:
            self._fold_invocation_tree(root, children)

    def _find_anchor(
        self, record: Dict[str, Any], children: Dict[int, List[Dict[str, Any]]]
    ) -> Optional[Dict[str, Any]]:
        """The invocation anchor: the topmost ``dispatch:*`` span (BFS).

        Guard-only paths (callback registration such as
        ``addProximityAlert``) open no dispatch span; their topmost
        ``binding:*`` span anchors the invocation instead.
        """
        fallback: Optional[Dict[str, Any]] = None
        frontier = [record]
        while frontier:
            nxt: List[Dict[str, Any]] = []
            for entry in frontier:
                if entry["name"].startswith("dispatch:"):
                    return entry
                if fallback is None and entry["name"].startswith("binding:"):
                    fallback = entry
                nxt.extend(children.get(entry["span_id"], []))
            frontier = nxt
        return fallback

    def _fold_invocation_tree(
        self, root: Dict[str, Any], children: Dict[int, List[Dict[str, Any]]]
    ) -> None:
        anchor = self._find_anchor(root, children)
        if anchor is None:
            return  # not an invocation tree (setup spans, bare substrate, …)
        operation = anchor["name"].split(":", 1)[1]
        platform = (anchor.get("attributes") or {}).get("platform", "unknown")
        key = (operation, platform)
        entry = self.operations.get(key)
        if entry is None:
            entry = self.operations[key] = OperationProfile(operation, platform)

        entry.invocations += 1
        if anchor.get("status") != "ok":
            entry.errors += 1
        # On the WebView path the root is the bridge crossing and the
        # dispatch span sits beneath it — bill the whole tree, root
        # included, to the dispatched operation.
        tree_total = _duration(root, self.time_domain)
        entry.total_ms += tree_total
        entry.latency.observe(tree_total)

        stack = [root]
        while stack:
            record = stack.pop()
            kids = children.get(record["span_id"], [])
            self_ms = _duration(record, self.time_domain) - sum(
                _duration(kid, self.time_domain) for kid in kids
            )
            layer = _layer_of(record["name"])
            entry.layer_self_ms[layer] = (
                entry.layer_self_ms.get(layer, 0.0) + max(0.0, self_ms)
            )
            entry.layer_spans[layer] = entry.layer_spans.get(layer, 0) + 1
            stack.extend(kids)

    # -- reading -------------------------------------------------------------

    def sorted_operations(self) -> List[OperationProfile]:
        return [
            self.operations[key] for key in sorted(self.operations)
        ]

    def to_dict(self) -> Dict[str, Any]:
        operations = [entry.to_dict() for entry in self.sorted_operations()]
        return {
            "schema": PROFILE_SCHEMA,
            "time": self.time_domain,
            "operations": operations,
            "totals": {
                "invocations": sum(e.invocations for e in self.operations.values()),
                "errors": sum(e.errors for e in self.operations.values()),
                "native_ms": round(
                    sum(e.native_ms for e in self.operations.values()), 6
                ),
                "middleware_ms": round(
                    sum(e.middleware_ms for e in self.operations.values()), 6
                ),
            },
        }

    def to_json(self) -> str:
        """Deterministic serialized form (sorted keys, 6-dp rounding)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":")) + "\n"

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "OverheadProfile":
        """Rehydrate a saved profile (layer totals and counts only; the
        percentile streams are summarized, not replayable)."""
        if payload.get("schema") != PROFILE_SCHEMA:
            raise ValueError(f"not a {PROFILE_SCHEMA} document")
        profile = cls(time_domain=payload.get("time", "virtual"))
        for item in payload.get("operations", []):
            entry = OperationProfile(item["operation"], item["platform"])
            entry.invocations = item.get("invocations", 0)
            entry.errors = item.get("errors", 0)
            entry.total_ms = item.get("total_ms", 0.0)
            for layer, values in item.get("layers", {}).items():
                entry.layer_self_ms[layer] = values.get("self_ms", 0.0)
                entry.layer_spans[layer] = values.get("spans", 0)
            profile.operations[(entry.operation, entry.platform)] = entry
        return profile


# ---------------------------------------------------------------------------
# Views: table, collapsed stacks, top-N
# ---------------------------------------------------------------------------

def _table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render(cells: List[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = [render(headers), render(["-" * width for width in widths])]
    lines.extend(render(row) for row in rows)
    return "\n".join(lines)


def render_profile_text(profile: OverheadProfile) -> str:
    """The Figure-10 view: per-invocation layer self-times (ms) per
    operation × platform, middleware vs native."""
    headers = (
        ["operation", "platform", "n"]
        + list(LAYERS)
        + ["middleware", "native", "p50", "p95", "p99"]
    )
    rows = []
    for entry in profile.sorted_operations():
        n = entry.invocations or 1
        percentiles = entry.latency.as_dict()
        rows.append(
            [entry.operation, entry.platform, str(entry.invocations)]
            + [f"{entry.per_invocation(layer):.3f}" for layer in LAYERS]
            + [
                f"{entry.middleware_ms / n:.3f}",
                f"{entry.native_ms / n:.3f}",
                f"{percentiles.get('p50', 0.0):.3f}",
                f"{percentiles.get('p95', 0.0):.3f}",
                f"{percentiles.get('p99', 0.0):.3f}",
            ]
        )
    if not rows:
        return "(no dispatch trees in trace)"
    return _table(headers, rows)


def collapsed_stacks(records: Sequence[Dict[str, Any]], *, time: str = "virtual") -> str:
    """Flamegraph collapsed-stack format: ``a;b;c <self-µs>`` per line.

    Weights are exclusive self-time (virtual by default) in integer
    microseconds, aggregated over identical stacks and emitted sorted,
    so the output is deterministic and feeds ``flamegraph.pl`` (or
    speedscope) directly.
    """
    totals: Dict[str, int] = {}
    for segment in _segments(records):
        by_id = {record["span_id"]: record for record in segment}
        children: Dict[int, List[Dict[str, Any]]] = {}
        for record in segment:
            parent = record.get("parent_id")
            if parent is not None and parent in by_id:
                children.setdefault(parent, []).append(record)

        def stack_of(record: Dict[str, Any]) -> str:
            parts = [record["name"]]
            cursor = record
            while True:
                parent = cursor.get("parent_id")
                if parent is None or parent not in by_id:
                    break
                cursor = by_id[parent]
                parts.append(cursor["name"])
            return ";".join(reversed(parts))

        for record in segment:
            kids = children.get(record["span_id"], [])
            self_ms = _duration(record, time) - sum(
                _duration(kid, time) for kid in kids
            )
            weight = int(round(max(0.0, self_ms) * 1_000.0))
            if weight <= 0:
                continue
            stack = stack_of(record)
            totals[stack] = totals.get(stack, 0) + weight
    return "\n".join(f"{stack} {weight}" for stack, weight in sorted(totals.items()))


def top_spans_text(
    records: Sequence[Dict[str, Any]], n: int = 10, *, time: str = "virtual"
) -> str:
    """Top-N span names by aggregate exclusive self-time."""
    totals: Dict[str, Tuple[float, int]] = {}
    for segment in _segments(records):
        known = {record["span_id"] for record in segment}
        children: Dict[int, List[Dict[str, Any]]] = {}
        for record in segment:
            parent = record.get("parent_id")
            if parent is not None and parent in known:
                children.setdefault(parent, []).append(record)
        for record in segment:
            kids = children.get(record["span_id"], [])
            self_ms = max(
                0.0,
                _duration(record, time)
                - sum(_duration(kid, time) for kid in kids),
            )
            total, count = totals.get(record["name"], (0.0, 0))
            totals[record["name"]] = (total + self_ms, count + 1)

    grand_total = sum(total for total, _ in totals.values()) or 1.0
    ranked = sorted(totals.items(), key=lambda item: (-item[1][0], item[0]))[:n]
    headers = ["span", "self_ms", "spans", "self%"]
    rows = [
        [name, f"{total:.3f}", str(count), f"{100.0 * total / grand_total:.1f}"]
        for name, (total, count) in ranked
    ]
    return _table(headers, rows)
