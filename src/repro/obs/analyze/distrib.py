"""Distributed-tier analytics over exported traces.

``python -m repro.obs distrib TRACE`` folds a JSONL trace export into
one :class:`DistribReport`: per-table/per-region replication lag (from
``replicate:<table>`` spans), gossip sweep activity (``gossip:<table>``
spans), partition cuts and heals (``partition:<a>|<b>`` spans), dedup
suppressions (``distrib.dedup`` events on resilience spans) and the
saga span trees (``saga:*`` spans plus their lifecycle events).  Like
the admission report, everything is recomputed from the trace alone —
a saved CI export answers "did the regions converge and was anything
applied twice?" without rerunning the scenario.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

__all__ = ["DistribReport", "render_distrib_text"]


class _LagStat:
    __slots__ = ("count", "total_ms", "max_ms")

    def __init__(self) -> None:
        self.count = 0
        self.total_ms = 0.0
        self.max_ms = 0.0

    def add(self, lag_ms: float) -> None:
        self.count += 1
        self.total_ms += lag_ms
        self.max_ms = max(self.max_ms, lag_ms)

    def to_dict(self) -> Dict[str, Any]:
        mean = self.total_ms / self.count if self.count else 0.0
        return {
            "count": self.count,
            "mean_ms": round(mean, 3),
            "max_ms": round(self.max_ms, 3),
        }


class DistribReport:
    """Replication / dedup / saga activity folded from one trace."""

    def __init__(self) -> None:
        #: "table/region" → lag statistics.
        self.replication: Dict[str, _LagStat] = {}
        #: table → {"sweeps": n, "merges": n}.
        self.gossip: Dict[str, Dict[str, int]] = {}
        #: partition span name → {"cuts": n, "heals": n}.
        self.partitions: Dict[str, Dict[str, int]] = {}
        #: dedup store label → suppression count.
        self.dedup_by_store: Dict[str, int] = {}
        #: dedup site (``sms.submit`` / ``network.request``) → count.
        self.dedup_by_site: Dict[str, int] = {}
        #: saga name → status → count.
        self.sagas: Dict[str, Dict[str, int]] = {}
        #: saga name → failed-step counts.
        self.saga_failures: Dict[str, int] = {}

    @classmethod
    def from_records(cls, records: List[Dict[str, Any]]) -> "DistribReport":
        report = cls()
        for record in records:
            name = record.get("name") or ""
            attributes = record.get("attributes") or {}
            if name.startswith("replicate:"):
                table = str(attributes.get("table", name.split(":", 1)[1]))
                region = str(attributes.get("region", "unknown"))
                lag = attributes.get("lag_ms")
                stat = report.replication.setdefault(
                    f"{table}/{region}", _LagStat()
                )
                stat.add(float(lag) if lag is not None else 0.0)
            elif name.startswith("gossip:"):
                table = str(attributes.get("table", name.split(":", 1)[1]))
                entry = report.gossip.setdefault(
                    table, {"sweeps": 0, "merges": 0}
                )
                entry["sweeps"] += 1
                entry["merges"] += int(attributes.get("merges", 0) or 0)
            elif name.startswith("partition:"):
                pair = name.split(":", 1)[1]
                entry = report.partitions.setdefault(
                    pair, {"cuts": 0, "heals": 0}
                )
                if attributes.get("event") == "heal":
                    entry["heals"] += 1
                else:
                    entry["cuts"] += 1
            elif name.startswith("saga:"):
                saga = str(attributes.get("saga", name.split(":", 1)[1]))
                report.sagas.setdefault(saga, {})
            for event in record.get("events") or []:
                event_name = event.get("name")
                event_attrs = event.get("attributes") or {}
                if event_name == "distrib.dedup":
                    _bump(
                        report.dedup_by_store,
                        str(event_attrs.get("store", "unknown")),
                    )
                    _bump(
                        report.dedup_by_site,
                        str(event_attrs.get("site", "unknown")),
                    )
                elif event_name in ("saga.completed", "saga.compensated"):
                    saga = str(event_attrs.get("saga", "unknown"))
                    status = event_name.split(".", 1)[1]
                    _bump(report.sagas.setdefault(saga, {}), status)
                elif event_name == "saga.step.failed":
                    _bump(
                        report.saga_failures,
                        str(event_attrs.get("saga", "unknown")),
                    )
        return report

    @property
    def dedup_total(self) -> int:
        return sum(self.dedup_by_store.values())

    @property
    def replication_total(self) -> int:
        return sum(stat.count for stat in self.replication.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "replication_total": self.replication_total,
            "replication": {
                key: stat.to_dict()
                for key, stat in sorted(self.replication.items())
            },
            "gossip": {
                table: dict(entry)
                for table, entry in sorted(self.gossip.items())
            },
            "partitions": {
                pair: dict(entry)
                for pair, entry in sorted(self.partitions.items())
            },
            "dedup_total": self.dedup_total,
            "dedup_by_store": dict(sorted(self.dedup_by_store.items())),
            "dedup_by_site": dict(sorted(self.dedup_by_site.items())),
            "sagas": {
                saga: dict(sorted(statuses.items()))
                for saga, statuses in sorted(self.sagas.items())
            },
            "saga_failures": dict(sorted(self.saga_failures.items())),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"


def _bump(table: Dict[str, int], key: str) -> None:
    table[key] = table.get(key, 0) + 1


def render_distrib_text(report: DistribReport) -> str:
    """The operator-facing tables (``--format text``)."""
    lines = [
        f"distrib: {report.replication_total} replication applies, "
        f"{report.dedup_total} dedup suppressions, "
        f"{len(report.sagas)} saga names"
    ]
    if report.replication:
        lines.append("  replication lag (table/region):")
        for key, stat in sorted(report.replication.items()):
            data = stat.to_dict()
            lines.append(
                f"    {key:<24} n={data['count']:<5} "
                f"mean={data['mean_ms']:.1f}ms max={data['max_ms']:.1f}ms"
            )
    if report.gossip:
        lines.append("  gossip:")
        for table, entry in sorted(report.gossip.items()):
            lines.append(
                f"    {table:<24} sweeps={entry['sweeps']} "
                f"merges={entry['merges']}"
            )
    if report.partitions:
        lines.append("  partitions:")
        for pair, entry in sorted(report.partitions.items()):
            lines.append(
                f"    {pair:<24} cuts={entry['cuts']} heals={entry['heals']}"
            )
    if report.dedup_by_store:
        lines.append("  dedup by store:")
        for store, count in sorted(report.dedup_by_store.items()):
            lines.append(f"    {store:<12} {count}")
    if report.dedup_by_site:
        lines.append("  dedup by site:")
        for site, count in sorted(report.dedup_by_site.items()):
            lines.append(f"    {site:<16} {count}")
    if report.sagas:
        lines.append("  sagas:")
        for saga, statuses in sorted(report.sagas.items()):
            completed = statuses.get("completed", 0)
            compensated = statuses.get("compensated", 0)
            failures = report.saga_failures.get(saga, 0)
            lines.append(
                f"    {saga:<16} completed={completed} "
                f"compensated={compensated} failed_steps={failures}"
            )
    if len(lines) == 1:
        lines.append("  (no distrib activity in this trace)")
    return "\n".join(lines)
