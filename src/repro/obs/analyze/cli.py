"""``python -m repro.obs`` — trace analytics from the command line.

Eleven subcommands, all operating on exported JSONL trace files (or,
for ``diff``, saved profile / BENCH documents; for ``flight``, a saved
flight-recorder document).  Every subcommand follows one convention: a
positional ``trace`` input plus ``--format {text,json}`` (``--json`` is
the shorthand), so scripts can pipe any analysis as JSON.

* ``profile`` — the Figure-10 per-layer overhead decomposition, with
  optional flamegraph collapsed stacks, a top-N self-time table, and a
  saveable deterministic JSON profile;
* ``slo`` — replay dispatch spans through an SLO engine and report
  attainment / breaches;
* ``diff`` — compare two profiles and run the perf-regression gate
  (report-only by default; ``--gate`` makes regressions exit non-zero);
* ``timeline`` — fold ``queue:<op>`` spans into per-shard Gantt
  timelines with a USE-style utilization/saturation summary;
* ``critical-path`` — the chain of lane segments that exactly explains
  a concurrent drain's makespan, with per-span slack;
* ``flight`` — render a flight-recorder incident document;
* ``admission`` — shed / throttle / autoscale breakdown from the
  admission plane's span events;
* ``distrib`` — replication-lag / dedup / saga tables from the
  distributed tier's spans and events;
* ``causal`` — the cross-region happens-before graph: visibility
  latency, convergence paths, saga decomposition and the
  causality-violation audit (``--gate`` fails on violations/cycles);
* ``scenario`` — record/replay declarative cross-platform scenarios and
  diff recordings against the declared-divergence table (``--gate``
  fails on undeclared divergences; see ``docs/SCENARIOS.md``);
* ``health`` — the fleet health console: replay a trace through the
  telemetry pipeline and fuse sampling accounting, RED rollups, SLO
  state, admission outcomes, flight incidents and the causal audit into
  one report (``--gate`` fails on drops, overflows, tail misses,
  causal violations or SLO breaches).
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional, Sequence, Tuple

from repro.obs.analyze.admission import AdmissionReport, render_admission_text
from repro.obs.analyze.causal import CausalReport, render_causal_text
from repro.obs.analyze.critical_path import CriticalPath
from repro.obs.analyze.distrib import DistribReport, render_distrib_text
from repro.obs.analyze.diff import (
    DEFAULT_NOISE_FRAC,
    DEFAULT_NOISE_MS,
    diff_profiles,
    load_profile,
)
from repro.obs.analyze.overhead import (
    OverheadProfile,
    collapsed_stacks,
    parse_jsonl,
    render_profile_text,
    top_spans_text,
)
from repro.obs.analyze.slo import SloEngine, SloSpec
from repro.obs.flight import FlightRecorder, render_flight_text
from repro.obs.pipeline import HealthReport, PipelineConfig, render_health_text
from repro.obs.timeline import ShardTimelines

#: (name, one-line description) — single source for subparsers and --help.
COMMANDS: Tuple[Tuple[str, str], ...] = (
    ("profile", "per-layer overhead decomposition of a trace"),
    ("slo", "evaluate SLO specs over a trace's dispatch spans"),
    ("diff", "compare two profiles / traces; optional regression gate"),
    ("timeline", "per-shard Gantt timelines and USE summary from a trace"),
    ("critical-path", "the lane-segment chain explaining a drain's makespan"),
    ("flight", "render a saved flight-recorder incident document"),
    ("admission", "shed/throttle/autoscale breakdown from a trace"),
    ("distrib", "replication-lag/dedup/saga breakdown from a trace"),
    ("causal", "cross-region happens-before graph and consistency audit"),
    ("scenario", "record/replay cross-platform scenarios; divergence gate"),
    ("health", "fleet health console over a trace; telemetry health gate"),
)


def _read(path: str) -> str:
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def _format_parent() -> argparse.ArgumentParser:
    """The shared output-format options every subcommand takes."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parent.add_argument(
        "--json", action="store_const", const="json", dest="format",
        help="shorthand for --format json",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    summary = "\n".join(f"  {name:<14} {text}" for name, text in COMMANDS)
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        description=(
            "Trace analytics over exported JSONL span files.\n\n"
            "commands:\n"
            f"{summary}\n\n"
            "Every command takes its input file as a positional argument and\n"
            "supports --format {text,json} (--json for short)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)
    parent = _format_parent()
    helps = dict(COMMANDS)

    profile = commands.add_parser(
        "profile", help=helps["profile"], parents=[parent]
    )
    profile.add_argument("trace", help="JSONL trace export")
    profile.add_argument(
        "--time", choices=("virtual", "real"), default="virtual",
        help="time domain to fold in (real needs an include_real_time export)",
    )
    profile.add_argument("--top", type=int, default=0, metavar="N",
                         help="also print the top-N spans by self-time")
    profile.add_argument("--flame", action="store_true",
                         help="print flamegraph collapsed stacks instead of the table")
    profile.add_argument("--out", metavar="PATH",
                         help="also save the JSON profile to PATH")

    slo = commands.add_parser("slo", help=helps["slo"], parents=[parent])
    slo.add_argument("trace", help="JSONL trace export")
    slo.add_argument(
        "--slo", action="append", required=True, metavar="SPEC", dest="specs",
        help="op:threshold_ms[:target[:window_ms[:platform]]] (repeatable)",
    )

    diff = commands.add_parser("diff", help=helps["diff"], parents=[parent])
    diff.add_argument("base", help="baseline trace JSONL, profile JSON, or BENCH json")
    diff.add_argument("new", help="candidate trace JSONL, profile JSON, or BENCH json")
    diff.add_argument("--noise-ms", type=float, default=DEFAULT_NOISE_MS)
    diff.add_argument("--noise-frac", type=float, default=DEFAULT_NOISE_FRAC)
    diff.add_argument("--gate", action="store_true",
                      help="exit 1 on regressions (default: report only)")

    timeline = commands.add_parser(
        "timeline", help=helps["timeline"], parents=[parent]
    )
    timeline.add_argument("trace", help="JSONL trace export")
    timeline.add_argument("--width", type=int, default=60, metavar="COLS",
                          help="Gantt cell columns (default: 60)")
    timeline.add_argument("--out", metavar="PATH",
                          help="also save the JSON timeline document to PATH")

    critical = commands.add_parser(
        "critical-path", help=helps["critical-path"], parents=[parent]
    )
    critical.add_argument("trace", help="JSONL trace export")
    critical.add_argument("--max-steps", type=int, default=40, metavar="N",
                          help="path steps to show before eliding (default: 40)")
    critical.add_argument("--out", metavar="PATH",
                          help="also save the JSON path document to PATH")

    flight = commands.add_parser(
        "flight", help=helps["flight"], parents=[parent]
    )
    flight.add_argument("trace", help="saved flight-recorder JSON document")

    admission = commands.add_parser(
        "admission", help=helps["admission"], parents=[parent]
    )
    admission.add_argument("trace", help="JSONL trace export")
    admission.add_argument("--out", metavar="PATH",
                           help="also save the JSON report to PATH")

    distrib = commands.add_parser(
        "distrib", help=helps["distrib"], parents=[parent]
    )
    distrib.add_argument("trace", help="JSONL trace export")
    distrib.add_argument("--out", metavar="PATH",
                         help="also save the JSON report to PATH")

    causal = commands.add_parser(
        "causal", help=helps["causal"], parents=[parent]
    )
    causal.add_argument("trace", help="JSONL trace export")
    causal.add_argument("--out", metavar="PATH",
                        help="also save the JSON report to PATH")
    causal.add_argument(
        "--gate", action="store_true",
        help="exit 1 on causal violations or a happens-before cycle",
    )

    scenario = commands.add_parser("scenario", help=helps["scenario"])
    actions = scenario.add_subparsers(dest="scenario_command", required=True)
    actions.add_parser(
        "list", help="list the bundled scenario library", parents=[parent]
    )
    sc_record = actions.add_parser(
        "record", help="record a scenario into a JSONL recording",
        parents=[parent],
    )
    sc_record.add_argument(
        "scenario", help="bundled scenario name or scenario JSON file"
    )
    sc_record.add_argument(
        "--platform", metavar="NAME", default=None,
        help="record on this platform (default: the scenario's own)",
    )
    sc_record.add_argument("--out", metavar="PATH",
                           help="write the JSONL recording to PATH")
    sc_replay = actions.add_parser(
        "replay", help="replay a recording on a platform and diff",
        parents=[parent],
    )
    sc_replay.add_argument("recording", help="JSONL scenario recording")
    sc_replay.add_argument(
        "--platform", metavar="NAME", default=None,
        help="replay on this platform (default: the recording's own)",
    )
    sc_replay.add_argument("--out", metavar="PATH",
                           help="also save the JSON diff document to PATH")
    sc_replay.add_argument(
        "--gate", action="store_true",
        help="exit 1 on any undeclared divergence",
    )
    sc_diff = actions.add_parser(
        "diff", help="diff two recordings of the same scenario",
        parents=[parent],
    )
    sc_diff.add_argument("base", help="baseline JSONL scenario recording")
    sc_diff.add_argument("other", help="candidate JSONL scenario recording")
    sc_diff.add_argument("--out", metavar="PATH",
                         help="also save the JSON diff document to PATH")
    sc_diff.add_argument(
        "--gate", action="store_true",
        help="exit 1 on any undeclared divergence",
    )

    health = commands.add_parser(
        "health", help=helps["health"], parents=[parent]
    )
    health.add_argument("trace", help="JSONL trace export")
    health.add_argument(
        "--flight", metavar="PATH", default=None,
        help="also fold a saved flight-recorder JSON document in",
    )
    health.add_argument(
        "--slo", action="append", metavar="SPEC", dest="specs", default=[],
        help="op:threshold_ms[:target[:window_ms[:platform]]] (repeatable)",
    )
    health.add_argument(
        "--rate", type=float, default=1.0, metavar="R",
        help="head-sampling keep rate to replay at (default: 1.0)",
    )
    health.add_argument(
        "--rate-op", action="append", metavar="CLASS=R", dest="rate_ops",
        default=[], help="per-op-class rate override (repeatable)",
    )
    health.add_argument("--seed", type=int, default=0,
                        help="sampling seed (default: 0)")
    health.add_argument(
        "--retain", type=int, default=4096, metavar="N",
        help="retention ring capacity in spans (default: 4096)",
    )
    health.add_argument(
        "--max-series", type=int, default=64, metavar="N",
        help="rollup key-cardinality bound (default: 64)",
    )
    health.add_argument(
        "--max-metric-series", type=int, default=None, metavar="N",
        help="label-cardinality guard on the pipeline's metrics registry",
    )
    health.add_argument("--out", metavar="PATH",
                        help="also save the JSON health report to PATH")
    health.add_argument(
        "--gate", action="store_true",
        help="exit 1 on drops, overflows, tail misses, causal violations "
             "or SLO breaches",
    )
    health.add_argument(
        "--strict", action="store_true",
        help="with --gate, also fail on any anomalous trace at all",
    )
    return parser


def _cmd_profile(args: argparse.Namespace) -> int:
    records = parse_jsonl(_read(args.trace))
    profile = OverheadProfile.from_records(records, time=args.time)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(profile.to_json())
    if args.flame:
        print(collapsed_stacks(records, time=args.time))
    elif args.format == "json":
        print(profile.to_json(), end="")
    else:
        print(render_profile_text(profile))
    if args.top:
        print()
        print(top_spans_text(records, args.top, time=args.time))
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    specs = [SloSpec.parse(text) for text in args.specs]
    records = parse_jsonl(_read(args.trace))
    engine = SloEngine(specs)
    ingested = engine.ingest_records(records)
    last_t = max(
        (record["end_virtual_ms"] for record in records
         if record.get("end_virtual_ms") is not None),
        default=0.0,
    )
    statuses = engine.evaluate(last_t)
    if args.format == "json":
        print(json.dumps(
            {"ingested": ingested, "statuses": [s.to_dict() for s in statuses]},
            sort_keys=True, indent=2,
        ))
    else:
        print(f"{ingested} invocations ingested; evaluated at t={last_t:.1f}ms")
        for status in statuses:
            verdict = "BREACHED" if status.breached else "ok"
            print(
                f"  {status.spec.name}: {verdict} "
                f"attainment={status.attainment:.4f} (target {status.spec.target_ratio}) "
                f"errors={status.error_rate:.4f} (budget {status.spec.error_budget}) "
                f"n={status.window_count}"
            )
            for reason in status.reasons:
                print(f"    - {reason}")
    return 1 if any(status.breached for status in statuses) else 0


def _cmd_diff(args: argparse.Namespace) -> int:
    diff = diff_profiles(
        load_profile(args.base),
        load_profile(args.new),
        noise_ms=args.noise_ms,
        noise_frac=args.noise_frac,
    )
    if args.format == "json":
        print(json.dumps(diff.to_dict(), sort_keys=True, indent=2))
    else:
        print(diff.render_text())
    if args.gate and not diff.passed:
        return 1
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    timelines = ShardTimelines.from_records(parse_jsonl(_read(args.trace)))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(timelines.to_json())
    if args.format == "json":
        print(timelines.to_json(), end="")
    else:
        print(timelines.render_text(width=args.width))
    return 0


def _cmd_critical_path(args: argparse.Namespace) -> int:
    path = CriticalPath.from_records(parse_jsonl(_read(args.trace)))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(path.to_json())
    if args.format == "json":
        print(path.to_json(), end="")
    else:
        print(path.render_text(max_steps=args.max_steps))
    return 0


def _cmd_flight(args: argparse.Namespace) -> int:
    payload = FlightRecorder.parse(_read(args.trace))
    if args.format == "json":
        print(json.dumps(payload, sort_keys=True, indent=2))
    else:
        print(render_flight_text(payload))
    return 0


def _cmd_admission(args: argparse.Namespace) -> int:
    report = AdmissionReport.from_records(parse_jsonl(_read(args.trace)))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
    if args.format == "json":
        print(report.to_json(), end="")
    else:
        print(render_admission_text(report))
    return 0


def _cmd_distrib(args: argparse.Namespace) -> int:
    report = DistribReport.from_records(parse_jsonl(_read(args.trace)))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
    if args.format == "json":
        print(report.to_json(), end="")
    else:
        print(render_distrib_text(report))
    return 0


def _cmd_causal(args: argparse.Namespace) -> int:
    report = CausalReport.from_records(parse_jsonl(_read(args.trace)))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
    if args.format == "json":
        print(report.to_json(), end="")
    else:
        print(render_causal_text(report))
    if args.gate and (report.violations or not report.acyclic):
        return 1
    return 0


def _load_scenario(spec: str):
    """A bundled library name, or a path to a scenario JSON document."""
    import os

    from repro.scenario import LIBRARY, Scenario, build

    if spec in LIBRARY:
        return build(spec)
    if os.path.exists(spec):
        return Scenario.from_dict(json.loads(_read(spec)))
    raise SystemExit(
        f"unknown scenario {spec!r}: not a bundled name "
        f"({', '.join(sorted(LIBRARY))}) and not a file"
    )


def _emit_diff(diff, args: argparse.Namespace) -> int:
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(diff.to_json())
    if args.format == "json":
        print(diff.to_json(), end="")
    else:
        print(diff.render_text())
    if args.gate and not diff.passed:
        return 1
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.scenario import (
        LIBRARY,
        ScenarioRecording,
        diff_recordings,
        replay,
    )
    from repro.scenario import record as record_scenario

    if args.scenario_command == "list":
        entries = [
            {"name": name, "platform": (s := LIBRARY[name]()).platform,
             "steps": len(s.steps), "description": s.description}
            for name in sorted(LIBRARY)
        ]
        if args.format == "json":
            print(json.dumps(entries, sort_keys=True, indent=2))
        else:
            for entry in entries:
                print(
                    f"{entry['name']:<18} {entry['platform']:<8} "
                    f"{entry['steps']:>2} steps  {entry['description']}"
                )
        return 0
    if args.scenario_command == "record":
        recording = record_scenario(
            _load_scenario(args.scenario), platform=args.platform
        )
        text = recording.to_jsonl()
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(
                f"recorded {recording.scenario.name} on "
                f"{recording.platform}: {len(recording.outcomes)} outcomes "
                f"-> {args.out}"
            )
        else:
            print(text, end="")
        return 0
    if args.scenario_command == "replay":
        base = ScenarioRecording.parse(_read(args.recording))
        result = replay(base, platform=args.platform)
        return _emit_diff(result.diff, args)
    # diff
    diff = diff_recordings(
        ScenarioRecording.parse(_read(args.base)),
        ScenarioRecording.parse(_read(args.other)),
    )
    return _emit_diff(diff, args)


def _cmd_health(args: argparse.Namespace) -> int:
    rates = {}
    for override in args.rate_ops:
        op, sep, rate = override.partition("=")
        if not sep:
            raise SystemExit(f"--rate-op must be CLASS=RATE, got {override!r}")
        rates[op] = float(rate)
    config = PipelineConfig(
        default_rate=args.rate,
        rates=rates,
        seed=args.seed,
        span_capacity=args.retain,
        max_series=args.max_series,
        max_metric_series=args.max_metric_series,
    )
    flight_payload = (
        FlightRecorder.parse(_read(args.flight)) if args.flight else None
    )
    report = HealthReport.from_records(
        parse_jsonl(_read(args.trace)),
        config=config,
        slo_specs=[SloSpec.parse(text) for text in args.specs],
        flight_payload=flight_payload,
        strict=args.strict,
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
    if args.format == "json":
        print(report.to_json(), end="")
    else:
        print(render_health_text(report))
    if args.gate and not report.healthy:
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(list(argv) if argv is not None else None)
    handlers = {
        "profile": _cmd_profile,
        "slo": _cmd_slo,
        "diff": _cmd_diff,
        "timeline": _cmd_timeline,
        "critical-path": _cmd_critical_path,
        "flight": _cmd_flight,
        "admission": _cmd_admission,
        "distrib": _cmd_distrib,
        "causal": _cmd_causal,
        "scenario": _cmd_scenario,
        "health": _cmd_health,
    }
    return handlers[args.command](args)
