"""``python -m repro.obs`` — trace analytics from the command line.

Three subcommands, all operating on exported JSONL trace files (or, for
``diff``, saved profile / BENCH documents):

* ``profile`` — the Figure-10 per-layer overhead decomposition, with
  optional flamegraph collapsed stacks, a top-N self-time table, and a
  saveable deterministic JSON profile;
* ``slo`` — replay dispatch spans through an SLO engine and report
  attainment / breaches;
* ``diff`` — compare two profiles and run the perf-regression gate
  (report-only by default; ``--gate`` makes regressions exit non-zero).
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional, Sequence

from repro.obs.analyze.diff import (
    DEFAULT_NOISE_FRAC,
    DEFAULT_NOISE_MS,
    diff_profiles,
    load_profile,
)
from repro.obs.analyze.overhead import (
    OverheadProfile,
    collapsed_stacks,
    parse_jsonl,
    render_profile_text,
    top_spans_text,
)
from repro.obs.analyze.slo import SloEngine, SloSpec


def _read(path: str) -> str:
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Trace analytics over exported JSONL span files.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    profile = commands.add_parser(
        "profile", help="per-layer overhead decomposition of a trace"
    )
    profile.add_argument("trace", help="JSONL trace export")
    profile.add_argument(
        "--time", choices=("virtual", "real"), default="virtual",
        help="time domain to fold in (real needs an include_real_time export)",
    )
    profile.add_argument("--top", type=int, default=0, metavar="N",
                         help="also print the top-N spans by self-time")
    profile.add_argument("--flame", action="store_true",
                         help="print flamegraph collapsed stacks instead of the table")
    profile.add_argument("--json", action="store_true", dest="as_json",
                         help="print the deterministic JSON profile")
    profile.add_argument("--out", metavar="PATH",
                         help="also save the JSON profile to PATH")

    slo = commands.add_parser("slo", help="evaluate SLOs over a trace")
    slo.add_argument("trace", help="JSONL trace export")
    slo.add_argument(
        "--slo", action="append", required=True, metavar="SPEC", dest="specs",
        help="op:threshold_ms[:target[:window_ms[:platform]]] (repeatable)",
    )
    slo.add_argument("--json", action="store_true", dest="as_json")

    diff = commands.add_parser(
        "diff", help="compare two profiles / traces; optional regression gate"
    )
    diff.add_argument("base", help="baseline trace JSONL, profile JSON, or BENCH json")
    diff.add_argument("new", help="candidate trace JSONL, profile JSON, or BENCH json")
    diff.add_argument("--noise-ms", type=float, default=DEFAULT_NOISE_MS)
    diff.add_argument("--noise-frac", type=float, default=DEFAULT_NOISE_FRAC)
    diff.add_argument("--gate", action="store_true",
                      help="exit 1 on regressions (default: report only)")
    diff.add_argument("--json", action="store_true", dest="as_json")
    return parser


def _cmd_profile(args: argparse.Namespace) -> int:
    records = parse_jsonl(_read(args.trace))
    profile = OverheadProfile.from_records(records, time=args.time)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(profile.to_json())
    if args.flame:
        print(collapsed_stacks(records, time=args.time))
    elif args.as_json:
        print(profile.to_json(), end="")
    else:
        print(render_profile_text(profile))
    if args.top:
        print()
        print(top_spans_text(records, args.top, time=args.time))
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    specs = [SloSpec.parse(text) for text in args.specs]
    records = parse_jsonl(_read(args.trace))
    engine = SloEngine(specs)
    ingested = engine.ingest_records(records)
    last_t = max(
        (record["end_virtual_ms"] for record in records
         if record.get("end_virtual_ms") is not None),
        default=0.0,
    )
    statuses = engine.evaluate(last_t)
    if args.as_json:
        print(json.dumps(
            {"ingested": ingested, "statuses": [s.to_dict() for s in statuses]},
            sort_keys=True, indent=2,
        ))
    else:
        print(f"{ingested} invocations ingested; evaluated at t={last_t:.1f}ms")
        for status in statuses:
            verdict = "BREACHED" if status.breached else "ok"
            print(
                f"  {status.spec.name}: {verdict} "
                f"attainment={status.attainment:.4f} (target {status.spec.target_ratio}) "
                f"errors={status.error_rate:.4f} (budget {status.spec.error_budget}) "
                f"n={status.window_count}"
            )
            for reason in status.reasons:
                print(f"    - {reason}")
    return 1 if any(status.breached for status in statuses) else 0


def _cmd_diff(args: argparse.Namespace) -> int:
    diff = diff_profiles(
        load_profile(args.base),
        load_profile(args.new),
        noise_ms=args.noise_ms,
        noise_frac=args.noise_frac,
    )
    if args.as_json:
        print(json.dumps(diff.to_dict(), sort_keys=True, indent=2))
    else:
        print(diff.render_text())
    if args.gate and not diff.passed:
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(list(argv) if argv is not None else None)
    handlers = {"profile": _cmd_profile, "slo": _cmd_slo, "diff": _cmd_diff}
    return handlers[args.command](args)
