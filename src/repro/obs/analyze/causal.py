"""Cross-region causal graph analytics over exported traces.

``python -m repro.obs causal TRACE`` stitches the distributed tier's
per-hop spans into one happens-before DAG and answers the questions the
per-table aggregates (``repro.obs.analyze.distrib``) cannot:

* **Graph** — every span is a node; edges are parent→child span links
  plus the cross-region ``causal.origin`` references stamped on
  ``replicate:`` / ``invalidate:`` spans and ``gossip.merge`` events
  (each pointing back at the originating ``write:<table>`` span).  The
  report checks the graph is acyclic — a cycle means a hop claimed an
  origin that itself descends from the hop, i.e. causality is broken.
* **Visibility latency** — for every write (identified by its
  ``table/key/version`` stamp) the virtual time each region first saw
  it, via replication apply or gossip merge; folded into per
  ``(table, region)`` P² percentiles and per-write convergence windows
  whose sorted visibility steps tile the window exactly.
* **Saga decomposition** — each ``saga:`` span tree split into step
  time, compensation time and replication wait (how long the saga's
  own writes took to reach their last region), so "where did the saga
  go" has a cross-region answer.
* **Audit results** — every ``causal.violation`` event found in the
  trace, plus dedup-chain joins from the ``chain`` tags on
  ``distrib.dedup`` events.

Everything is recomputed from the trace alone and exported as
deterministic JSON (sorted keys, rounded floats): two identically
seeded runs produce byte-identical reports.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.obs.quantiles import StreamingPercentiles

__all__ = ["CAUSAL_SCHEMA", "CausalReport", "render_causal_text"]

CAUSAL_SCHEMA = "repro.obs.causal/v1"

#: Span-name prefixes that mark distributed-tier hops.
_HOP_PREFIXES = (
    "write:", "replicate:", "gossip:", "invalidate:", "flush:",
)


class _Write:
    """One replicated write reassembled from its ``write:`` span."""

    __slots__ = ("table", "key", "version", "region", "t_ms", "ref", "visible")

    def __init__(
        self, table: str, key: str, version: str, region: str,
        t_ms: float, ref: Optional[str],
    ) -> None:
        self.table = table
        self.key = key
        self.version = version
        self.region = region
        self.t_ms = t_ms
        self.ref = ref
        #: region → (first-visibility virtual ms, via) with via one of
        #: ``origin`` / ``replicate`` / ``gossip``.
        self.visible: Dict[str, Tuple[float, str]] = {region: (t_ms, "origin")}

    def saw(self, region: str, t_ms: float, via: str) -> None:
        known = self.visible.get(region)
        if known is None or t_ms < known[0]:
            self.visible[region] = (t_ms, via)

    @property
    def label(self) -> str:
        return f"{self.table}/{self.key}@{self.version}"

    def steps(self) -> List[Dict[str, Any]]:
        """Visibility steps in arrival order; the deltas between
        consecutive steps tile ``[t_ms, last-visibility]`` exactly."""
        ordered = sorted(
            self.visible.items(), key=lambda item: (item[1][0], item[0])
        )
        steps = []
        previous = self.t_ms
        for region, (t_ms, via) in ordered:
            steps.append(
                {
                    "region": region,
                    "t_ms": round(t_ms, 6),
                    "delta_ms": round(t_ms - previous, 6),
                    "via": via,
                }
            )
            previous = t_ms
        return steps

    @property
    def window_ms(self) -> float:
        return max(t for t, _ in self.visible.values()) - self.t_ms


class CausalReport:
    """The cross-region happens-before graph folded from one trace."""

    def __init__(self) -> None:
        #: span ref (``trace_id:span_id``) → span name.
        self.nodes: Dict[str, str] = {}
        #: (src ref, dst ref, kind) — ``child`` for span parentage,
        #: ``replicate`` / ``gossip`` / ``invalidate`` for cross-region
        #: causal references.
        self.edges: List[Tuple[str, str, str]] = []
        self.acyclic = True
        #: write label → :class:`_Write`.
        self.writes: Dict[str, _Write] = {}
        #: "table/region" → streaming percentiles over visibility lag.
        self.visibility: Dict[str, StreamingPercentiles] = {}
        #: Regions observed anywhere in the trace.
        self.regions: Set[str] = set()
        #: hop kind → count (replicate/gossip/invalidate/flush/...).
        self.hops: Dict[str, int] = {}
        #: Saga decompositions, in span order.
        self.sagas: List[Dict[str, Any]] = []
        #: ``causal.violation`` events found in the trace.
        self.violations: List[Dict[str, Any]] = []
        #: chain tag → number of dedup suppressions joined to it.
        self.dedup_chains: Dict[str, int] = {}

    # -- folding --------------------------------------------------------------

    @classmethod
    def from_records(cls, records: List[Dict[str, Any]]) -> "CausalReport":
        report = cls()
        children: Dict[Tuple[int, Optional[int]], List[Dict[str, Any]]] = {}
        for record in records:
            ref = _ref(record)
            report.nodes[ref] = record.get("name") or ""
            parent_id = record.get("parent_id")
            if parent_id is not None:
                report.edges.append(
                    (f"{record.get('trace_id')}:{parent_id}", ref, "child")
                )
            children.setdefault(
                (record.get("trace_id"), parent_id), []
            ).append(record)
            report._fold_record(record)
        report._check_acyclic()
        report._fold_sagas(records, children)
        return report

    def _fold_record(self, record: Dict[str, Any]) -> None:
        name = record.get("name") or ""
        attributes = record.get("attributes") or {}
        ref = _ref(record)
        region = attributes.get("region")
        if region:
            self.regions.add(str(region))
        if name.startswith("write:"):
            self._bump_hop("write")
            write = _Write(
                str(attributes.get("table", name.split(":", 1)[1])),
                str(attributes.get("key", "")),
                str(attributes.get("version", "")),
                str(region or "unknown"),
                float(record.get("start_virtual_ms") or 0.0),
                ref,
            )
            self.writes.setdefault(write.label, write)
        elif name.startswith("replicate:"):
            self._bump_hop("replicate")
            self._fold_visibility(record, attributes, via="replicate")
        elif name.startswith("gossip:"):
            self._bump_hop("gossip_sweep")
        elif name.startswith("invalidate:"):
            self._bump_hop("invalidate")
            origin_ref = attributes.get("causal.origin")
            if origin_ref:
                self.edges.append((str(origin_ref), ref, "invalidate"))
        elif name.startswith("flush:"):
            self._bump_hop("flush")
        elif name == "notify.drain":
            self._bump_hop("notify.drain")
        for event in record.get("events") or []:
            self._fold_event(record, event)

    def _fold_event(
        self, record: Dict[str, Any], event: Dict[str, Any]
    ) -> None:
        event_name = event.get("name")
        attributes = event.get("attributes") or {}
        if event_name == "gossip.merge":
            self._bump_hop("gossip")
            sample = dict(attributes)
            sample["end_t"] = event.get("t_virtual_ms")
            self._fold_visibility_attrs(
                sample, _ref(record), via="gossip",
                t_ms=float(event.get("t_virtual_ms") or 0.0),
            )
        elif event_name == "causal.violation":
            violation = {"t_ms": event.get("t_virtual_ms")}
            violation.update(
                {key: attributes[key] for key in sorted(attributes)}
            )
            self.violations.append(violation)
        elif event_name == "distrib.dedup":
            self._bump_hop("dedup")
            chain = attributes.get("chain")
            if chain:
                chain = str(chain)
                self.dedup_chains[chain] = self.dedup_chains.get(chain, 0) + 1

    def _fold_visibility(
        self, record: Dict[str, Any], attributes: Dict[str, Any], *, via: str
    ) -> None:
        t_ms = float(
            record.get("end_virtual_ms")
            if record.get("end_virtual_ms") is not None
            else record.get("start_virtual_ms") or 0.0
        )
        self._fold_visibility_attrs(attributes, _ref(record), via=via, t_ms=t_ms)

    def _fold_visibility_attrs(
        self,
        attributes: Dict[str, Any],
        ref: str,
        *,
        via: str,
        t_ms: float,
    ) -> None:
        origin_ref = attributes.get("causal.origin")
        if origin_ref:
            self.edges.append((str(origin_ref), ref, via))
        region = str(attributes.get("region", "unknown"))
        self.regions.add(region)
        table = str(attributes.get("table", "unknown"))
        label = (
            f"{table}/{attributes.get('key', '')}@{attributes.get('version', '')}"
        )
        write = self.writes.get(label)
        if write is None:
            return
        before = write.visible.get(region)
        write.saw(region, t_ms, via)
        if before is None:
            lag_ms = t_ms - write.t_ms
            self.visibility.setdefault(
                f"{table}/{region}", StreamingPercentiles()
            ).observe(lag_ms)

    def _bump_hop(self, kind: str) -> None:
        self.hops[kind] = self.hops.get(kind, 0) + 1

    def _check_acyclic(self) -> None:
        """Kahn's algorithm over the stitched graph."""
        indegree: Dict[str, int] = {ref: 0 for ref in self.nodes}
        outgoing: Dict[str, List[str]] = {}
        for src, dst, _ in self.edges:
            if src not in indegree or dst not in indegree:
                continue  # reference into another export; not an edge here
            outgoing.setdefault(src, []).append(dst)
            indegree[dst] += 1
        queue = [ref for ref, degree in indegree.items() if degree == 0]
        visited = 0
        while queue:
            ref = queue.pop()
            visited += 1
            for dst in outgoing.get(ref, ()):
                indegree[dst] -= 1
                if indegree[dst] == 0:
                    queue.append(dst)
        self.acyclic = visited == len(indegree)

    def _fold_sagas(
        self,
        records: List[Dict[str, Any]],
        children: Dict[Tuple[int, Optional[int]], List[Dict[str, Any]]],
    ) -> None:
        for record in records:
            name = record.get("name") or ""
            if not name.startswith("saga:"):
                continue
            attributes = record.get("attributes") or {}
            start = float(record.get("start_virtual_ms") or 0.0)
            end = record.get("end_virtual_ms")
            total = (float(end) - start) if end is not None else 0.0
            steps_ms = 0.0
            compensation_ms = 0.0
            step_count = 0
            replication_wait_ms = 0.0
            write_count = 0
            status = "pending"
            for event in record.get("events") or []:
                if event.get("name") == "saga.completed":
                    status = "completed"
                elif event.get("name") == "saga.compensated":
                    status = "compensated"
            stack = [record]
            while stack:
                current = stack.pop()
                stack.extend(
                    children.get(
                        (current.get("trace_id"), current.get("span_id")), ()
                    )
                )
                if current is record:
                    continue
                child_name = current.get("name") or ""
                child_end = current.get("end_virtual_ms")
                duration = (
                    float(child_end) - float(current.get("start_virtual_ms") or 0.0)
                    if child_end is not None
                    else 0.0
                )
                if child_name.startswith("saga.step:"):
                    steps_ms += duration
                    step_count += 1
                elif child_name.startswith("saga.compensate:"):
                    compensation_ms += duration
                elif child_name.startswith("write:"):
                    write_count += 1
                    child_attrs = current.get("attributes") or {}
                    label = (
                        f"{child_attrs.get('table', '')}/"
                        f"{child_attrs.get('key', '')}@"
                        f"{child_attrs.get('version', '')}"
                    )
                    write = self.writes.get(label)
                    if write is not None:
                        replication_wait_ms = max(
                            replication_wait_ms, write.window_ms
                        )
            self.sagas.append(
                {
                    "saga": str(attributes.get("saga", name.split(":", 1)[1])),
                    "saga_id": attributes.get("saga_id"),
                    "region": attributes.get("region"),
                    "chain": attributes.get("chain"),
                    "status": status,
                    "total_ms": round(total, 6),
                    "steps": step_count,
                    "steps_ms": round(steps_ms, 6),
                    "compensation_ms": round(compensation_ms, 6),
                    "writes": write_count,
                    "replication_wait_ms": round(replication_wait_ms, 6),
                }
            )

    # -- derived views --------------------------------------------------------

    @property
    def write_count(self) -> int:
        return len(self.writes)

    @property
    def converged_count(self) -> int:
        """Writes every observed region eventually saw."""
        if not self.regions:
            return 0
        return sum(
            1
            for write in self.writes.values()
            if self.regions <= set(write.visible)
        )

    def convergence_entries(self) -> List[Dict[str, Any]]:
        """Per-write convergence windows and their tiling steps, in
        write order (the in-memory view the property suite checks)."""
        return [
            {
                "write": write.label,
                "region": write.region,
                "t_ms": round(write.t_ms, 6),
                "window_ms": round(write.window_ms, 6),
                "steps": write.steps(),
            }
            for write in self.writes.values()
        ]

    def to_dict(self) -> Dict[str, Any]:
        entries = self.convergence_entries()
        windows = [entry["window_ms"] for entry in entries]
        slowest = sorted(
            entries, key=lambda entry: (-entry["window_ms"], entry["write"])
        )[:5]
        cross = sum(1 for _, _, kind in self.edges if kind != "child")
        return {
            "schema": CAUSAL_SCHEMA,
            "graph": {
                "nodes": len(self.nodes),
                "edges": len(self.edges),
                "cross_region_edges": cross,
                "acyclic": self.acyclic,
            },
            "hops": dict(sorted(self.hops.items())),
            "writes": self.write_count,
            "visibility": {
                key: _percentile_dict(stats)
                for key, stats in sorted(self.visibility.items())
            },
            "convergence": {
                "writes": len(entries),
                "converged": self.converged_count,
                "regions": sorted(self.regions),
                "mean_window_ms": round(
                    sum(windows) / len(windows), 6
                ) if windows else 0.0,
                "max_window_ms": round(max(windows), 6) if windows else 0.0,
                "slowest": slowest,
            },
            "sagas": self.sagas,
            "dedup_chains": dict(sorted(self.dedup_chains.items())),
            "violations": self.violations,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"


def _ref(record: Dict[str, Any]) -> str:
    return f"{record.get('trace_id')}:{record.get('span_id')}"


def _percentile_dict(stats: StreamingPercentiles) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "count": stats.count,
        "mean_ms": round(stats.mean, 6),
        "max_ms": round(stats.max, 6),
    }
    for label, value in stats.as_dict().items():
        out[f"{label}_ms"] = round(value, 6)
    return out


def render_causal_text(report: CausalReport) -> str:
    """The operator-facing summary (``--format text``)."""
    data = report.to_dict()
    graph = data["graph"]
    lines = [
        f"causal graph: {graph['nodes']} nodes, {graph['edges']} edges "
        f"({graph['cross_region_edges']} cross-region), "
        f"{'acyclic' if graph['acyclic'] else 'CYCLE DETECTED'}"
    ]
    if data["hops"]:
        hops = ", ".join(
            f"{kind}={count}" for kind, count in data["hops"].items()
        )
        lines.append(f"  hops: {hops}")
    convergence = data["convergence"]
    lines.append(
        f"  writes: {data['writes']} "
        f"({convergence['converged']} fully visible in "
        f"{len(convergence['regions'])} region(s)); "
        f"window mean={convergence['mean_window_ms']:.1f}ms "
        f"max={convergence['max_window_ms']:.1f}ms"
    )
    if data["visibility"]:
        lines.append("  visibility lag (table/region):")
        for key, stats in data["visibility"].items():
            lines.append(
                f"    {key:<28} n={stats['count']:<5} "
                f"mean={stats['mean_ms']:.1f}ms p95={stats['p95_ms']:.1f}ms "
                f"max={stats['max_ms']:.1f}ms"
            )
    for entry in convergence["slowest"]:
        path = " -> ".join(
            f"{step['region']}(+{step['delta_ms']:.0f}ms,{step['via']})"
            for step in entry["steps"]
        )
        lines.append(f"    slow {entry['write']}: {path}")
    if data["sagas"]:
        lines.append("  sagas (step / compensation / replication wait):")
        for saga in data["sagas"]:
            lines.append(
                f"    {saga['saga']:<16} #{saga['saga_id']} {saga['status']:<12} "
                f"steps={saga['steps_ms']:.1f}ms "
                f"comp={saga['compensation_ms']:.1f}ms "
                f"repl={saga['replication_wait_ms']:.1f}ms"
            )
    if data["dedup_chains"]:
        lines.append(
            f"  dedup chains joined: {len(data['dedup_chains'])} "
            f"({sum(data['dedup_chains'].values())} suppression(s))"
        )
    if data["violations"]:
        lines.append(f"  VIOLATIONS: {len(data['violations'])}")
        for violation in data["violations"]:
            details = ", ".join(
                f"{key}={value}"
                for key, value in violation.items()
                if key not in ("kind", "t_ms")
            )
            lines.append(
                f"    {violation.get('kind')} @{violation.get('t_ms')}ms"
                + (f" ({details})" if details else "")
            )
    else:
        lines.append("  audit: clean (no causal violations)")
    return "\n".join(lines)
