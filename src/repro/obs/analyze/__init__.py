"""Trace analytics over the observability plane.

Everything here is *post-hoc*: it consumes the span trees and metric
series the PR-2 plane records and answers the paper's evaluation
question — how much time does the middleware layer add on top of the
native call (Figure 10) — directly from traces:

* :mod:`repro.obs.analyze.overhead` — folds each ``dispatch:*`` span
  tree into exclusive self-time per layer (dispatch / resilience /
  binding / bridge / substrate) and aggregates per
  operation × platform, with collapsed-stack (flamegraph) and top-N
  text views;
* :mod:`repro.obs.quantiles` (re-exported) — the P² streaming
  percentile engine behind every latency figure;
* :mod:`repro.obs.analyze.slo` — declarative latency/error-budget SLOs
  evaluated over sliding virtual-time windows;
* :mod:`repro.obs.analyze.diff` — profile diff and the perf-regression
  gate the CI bench smoke runs in report-only mode;
* :mod:`repro.obs.analyze.critical_path` — the chain of lane segments
  that exactly explains a concurrent drain's makespan, plus per-span
  slack (see ``docs/CONCURRENCY.md``);
* :mod:`repro.obs.analyze.admission` — shed / throttle / autoscale
  breakdown folded from the admission plane's span events (see
  ``docs/ADMISSION.md``);
* :mod:`repro.obs.analyze.distrib` — replication-lag / dedup / saga
  tables folded from the distributed tier's spans and events (see
  ``docs/DISTRIBUTION.md``);
* :mod:`repro.obs.analyze.causal` — the cross-region happens-before
  graph: write→visibility latency percentiles, gossip convergence
  paths, saga decomposition and the causality-violation audit.

The determinism contract extends here: no wall-clock reads, no
unseeded RNGs (policed by ``tests/chaos/test_determinism_lint.py``,
whose scope includes all of ``obs/``) — two identically-seeded runs
produce byte-identical profiles.

CLI: ``python -m repro.obs {profile,slo,diff,timeline,critical-path,
flight,admission,distrib,causal}`` operates on exported JSONL trace
files (see ``docs/PERFORMANCE.md``).
"""

from repro.obs.analyze.admission import AdmissionReport, render_admission_text
from repro.obs.analyze.causal import (
    CAUSAL_SCHEMA,
    CausalReport,
    render_causal_text,
)
from repro.obs.analyze.distrib import DistribReport, render_distrib_text
from repro.obs.analyze.critical_path import (
    CRITICAL_PATH_SCHEMA,
    CriticalPath,
    PathStep,
)
from repro.obs.analyze.diff import (
    LayerDelta,
    ProfileDiff,
    diff_profiles,
    load_profile,
)
from repro.obs.analyze.overhead import (
    LAYERS,
    OperationProfile,
    OverheadProfile,
    collapsed_stacks,
    parse_jsonl,
    records_to_jsonl,
    render_profile_text,
    top_spans_text,
)
from repro.obs.analyze.slo import SloEngine, SloSpec, SloStatus
from repro.obs.quantiles import (
    DEFAULT_QUANTILES,
    P2Quantile,
    StreamingPercentiles,
    quantile_label,
)

__all__ = [
    "AdmissionReport",
    "CAUSAL_SCHEMA",
    "CRITICAL_PATH_SCHEMA",
    "CausalReport",
    "CriticalPath",
    "DEFAULT_QUANTILES",
    "DistribReport",
    "LAYERS",
    "LayerDelta",
    "PathStep",
    "OperationProfile",
    "OverheadProfile",
    "P2Quantile",
    "ProfileDiff",
    "SloEngine",
    "SloSpec",
    "SloStatus",
    "StreamingPercentiles",
    "collapsed_stacks",
    "diff_profiles",
    "load_profile",
    "parse_jsonl",
    "quantile_label",
    "records_to_jsonl",
    "render_admission_text",
    "render_causal_text",
    "render_distrib_text",
    "render_profile_text",
    "top_spans_text",
]
