"""Streaming quantile estimation: the P² algorithm.

The analytics layer needs p50/p95/p99 of invocation latency without
storing samples — the fleet scenarios run millions of virtual
invocations and the registry must stay O(1) per series.  The P²
(piecewise-parabolic) estimator of Jain & Chlamtac (CACM 1985) keeps
five markers per tracked quantile and updates them in constant time per
observation.

Determinism contract: the estimate is a pure function of the
observation *sequence* — no randomness, no clocks — so two
identically-seeded runs produce bit-identical quantile estimates.  For
fewer than five observations the exact order statistic is returned.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError

#: The quantiles every latency stream tracks by default.
DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)


def quantile_label(q: float) -> str:
    """``0.5 -> "p50"``, ``0.99 -> "p99"``, ``0.999 -> "p99.9"``."""
    scaled = q * 100.0
    if abs(scaled - round(scaled)) < 1e-9:
        return f"p{int(round(scaled))}"
    return f"p{scaled:g}"


class P2Quantile:
    """One P² marker set estimating a single quantile.

    ``observe`` is O(1); ``value`` is the current estimate (exact while
    fewer than five observations have arrived, the P² interpolation
    afterwards).
    """

    __slots__ = ("q", "count", "_initial", "_heights", "_positions", "_desired", "_dn")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ConfigurationError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self.count = 0
        self._initial: List[float] = []
        self._heights: List[float] = []
        self._positions: List[int] = []
        self._desired: List[float] = []
        self._dn = (0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0)

    # -- recording -----------------------------------------------------------

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        if self.count <= 5:
            self._initial.append(value)
            if self.count == 5:
                self._heights = sorted(self._initial)
                self._positions = [0, 1, 2, 3, 4]
                q = self.q
                self._desired = [0.0, 2.0 * q, 4.0 * q, 2.0 + 2.0 * q, 4.0]
            return

        h, n, ns = self._heights, self._positions, self._desired
        # Locate the cell the new observation falls into, stretching the
        # extreme markers when it lands outside them.
        if value < h[0]:
            h[0] = value
            cell = 0
        elif value >= h[4]:
            h[4] = value
            cell = 3
        else:
            cell = 0
            for i in range(3, 0, -1):
                if value >= h[i]:
                    cell = i
                    break
        for i in range(cell + 1, 5):
            n[i] += 1
        for i in range(5):
            ns[i] += self._dn[i]
        # Nudge the three interior markers toward their desired positions.
        for i in (1, 2, 3):
            drift = ns[i] - n[i]
            if (drift >= 1.0 and n[i + 1] - n[i] > 1) or (
                drift <= -1.0 and n[i - 1] - n[i] < -1
            ):
                step = 1 if drift > 0 else -1
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, step)
                n[i] += step

    def _parabolic(self, i: int, step: int) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: int) -> float:
        h, n = self._heights, self._positions
        return h[i] + step * (h[i + step] - h[i]) / (n[i + step] - n[i])

    # -- reading -------------------------------------------------------------

    @property
    def value(self) -> float:
        """The current estimate (0.0 before any observation)."""
        if self.count == 0:
            return 0.0
        if self.count <= 5:
            ordered = sorted(self._initial)
            rank = max(0, min(len(ordered) - 1, math.ceil(self.q * len(ordered)) - 1))
            return ordered[rank]
        return self._heights[2]


class StreamingPercentiles:
    """A bundle of P² estimators fed from one observation stream."""

    __slots__ = ("quantiles", "_estimators", "count", "sum", "max")

    def __init__(self, quantiles: Sequence[float] = DEFAULT_QUANTILES) -> None:
        if not quantiles:
            raise ConfigurationError("at least one quantile is required")
        self.quantiles = tuple(quantiles)
        self._estimators = [P2Quantile(q) for q in self.quantiles]
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value > self.max or self.count == 1:
            self.max = value
        for estimator in self._estimators:
            estimator.observe(value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def value(self, q: float) -> float:
        for estimator in self._estimators:
            if estimator.q == q:
                return estimator.value
        raise ConfigurationError(f"quantile {q} is not tracked")

    def as_dict(self) -> Dict[str, float]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` (current estimates)."""
        return {
            quantile_label(estimator.q): estimator.value
            for estimator in self._estimators
        }
