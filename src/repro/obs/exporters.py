"""Trace and metric exporters.

Three export surfaces, matched to three consumers:

* :class:`InMemoryExporter` — tests assert on structured span dicts;
* :func:`export_jsonl` / :class:`JsonlFileExporter` — one JSON object
  per span, sorted keys, virtual-time stamps only — byte-identical for
  identical seeded runs;
* :func:`render_span_tree` / :func:`render_metrics_text` — the
  human-readable operator view.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.span import Span


class InMemoryExporter:
    """Collects span dicts for programmatic inspection."""

    def __init__(self, *, include_real_time: bool = False) -> None:
        self._include_real_time = include_real_time
        self.exported: List[Dict[str, Any]] = []

    def export(self, spans: Iterable[Span]) -> List[Dict[str, Any]]:
        batch = [
            span.to_dict(include_real_time=self._include_real_time) for span in spans
        ]
        self.exported.extend(batch)
        return batch


def export_jsonl(spans: Iterable[Span], *, include_real_time: bool = False) -> str:
    """Spans as JSON Lines (deterministic: sorted keys, virtual time only
    unless ``include_real_time``)."""
    lines = [
        json.dumps(
            span.to_dict(include_real_time=include_real_time),
            sort_keys=True,
            separators=(",", ":"),
        )
        for span in spans
    ]
    return "\n".join(lines) + ("\n" if lines else "")


class JsonlFileExporter:
    """Writes span batches to a JSONL file.

    The file is opened lazily in append mode with an explicit UTF-8
    encoding (exports must be byte-identical across locales), flushed
    after every batch, and closed via :meth:`close` or by using the
    exporter as a context manager.
    """

    def __init__(self, path, *, include_real_time: bool = False) -> None:
        self.path = path
        self._include_real_time = include_real_time
        self._handle = None

    def export(self, spans: Iterable[Span]) -> int:
        """Append ``spans``; returns the number written."""
        payload = export_jsonl(spans, include_real_time=self._include_real_time)
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(payload)
        self._handle.flush()
        return payload.count("\n")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlFileExporter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def render_span_tree(spans: Iterable[Span], *, include_events: bool = True) -> str:
    """ASCII rendering of the span forest, in start order.

    A span whose ``parent_id`` is not present in the rendered batch
    (partial or filtered exports) is treated as a root rather than
    silently dropped.
    """
    spans = list(spans)
    known_ids = {span.span_id for span in spans}
    children: Dict[int, List[Span]] = {}
    roots: List[Span] = []
    for span in spans:
        if span.parent_id is not None and span.parent_id in known_ids:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)

    lines: List[str] = []

    def _walk(span: Span, depth: int) -> None:
        indent = "  " * depth
        status = "" if span.status == "ok" else f" [{span.status}: {span.error}]"
        attrs = ""
        if span.attributes:
            rendered = ", ".join(
                f"{key}={value}" for key, value in sorted(span.attributes.items())
            )
            attrs = f" ({rendered})"
        lines.append(
            f"{indent}{span.name}{attrs} "
            f"@{span.start_virtual_ms:.1f}ms +{span.duration_virtual_ms:.1f}ms"
            f"{status}"
        )
        if include_events:
            for event in span.events:
                event_attrs = ""
                if event.attributes:
                    rendered = ", ".join(
                        f"{key}={value}"
                        for key, value in sorted(event.attributes.items())
                    )
                    event_attrs = f" ({rendered})"
                lines.append(
                    f"{indent}  * {event.name}{event_attrs} @{event.t_virtual_ms:.1f}ms"
                )
        for child in children.get(span.span_id, []):
            _walk(child, depth + 1)

    for root in roots:
        _walk(root, 0)
    return "\n".join(lines)


def _instrument_kind(instrument) -> str:
    if isinstance(instrument, Histogram):
        return "histogram"
    if isinstance(instrument, Gauge):
        return "gauge"
    if isinstance(instrument, Counter):
        return "counter"
    return type(instrument).__name__.lower()


def render_metrics_text(registry: MetricsRegistry) -> str:
    """Flat, sorted, human-readable metric dump.

    Every series states its kind; histograms additionally render their
    streaming percentiles and the cumulative bucket line.
    """
    lines: List[str] = []
    for instrument in registry.collect():
        labels = ",".join(
            f"{key}={value}" for key, value in sorted(instrument.labels.items())
        )
        series = f"{instrument.name}{{{labels}}}" if labels else instrument.name
        kind = _instrument_kind(instrument)
        if isinstance(instrument, Histogram):
            percentiles = " ".join(
                f"{label}={value:.3f}"
                for label, value in instrument.percentiles().items()
            )
            lines.append(
                f"{series} {kind} count={instrument.count} "
                f"sum={instrument.sum:.3f} mean={instrument.mean:.3f} {percentiles}"
            )
            buckets = " ".join(
                f"le{'+Inf' if bound == float('inf') else format(bound, 'g')}"
                f"={count}"
                for bound, count in instrument.cumulative()
            )
            lines.append(f"  buckets: {buckets}")
        else:
            lines.append(f"{series} {kind} {instrument.value}")
    return "\n".join(lines)
