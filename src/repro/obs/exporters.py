"""Trace and metric exporters.

Three export surfaces, matched to three consumers:

* :class:`InMemoryExporter` — tests assert on structured span dicts;
* :func:`export_jsonl` / :class:`JsonlFileExporter` — one JSON object
  per span, sorted keys, virtual-time stamps only — byte-identical for
  identical seeded runs;
* :func:`render_span_tree` / :func:`render_metrics_text` — the
  human-readable operator view.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.span import Span


class InMemoryExporter:
    """Collects span dicts for programmatic inspection."""

    def __init__(self, *, include_real_time: bool = False) -> None:
        self._include_real_time = include_real_time
        self.exported: List[Dict[str, Any]] = []

    def export(self, spans: Iterable[Span]) -> List[Dict[str, Any]]:
        batch = [
            span.to_dict(include_real_time=self._include_real_time) for span in spans
        ]
        self.exported.extend(batch)
        return batch


def export_jsonl(spans: Iterable[Span], *, include_real_time: bool = False) -> str:
    """Spans as JSON Lines (deterministic: sorted keys, virtual time only
    unless ``include_real_time``)."""
    lines = [
        json.dumps(
            span.to_dict(include_real_time=include_real_time),
            sort_keys=True,
            separators=(",", ":"),
        )
        for span in spans
    ]
    return "\n".join(lines) + ("\n" if lines else "")


class JsonlFileExporter:
    """Writes span batches to a JSONL file."""

    def __init__(self, path, *, include_real_time: bool = False) -> None:
        self.path = path
        self._include_real_time = include_real_time

    def export(self, spans: Iterable[Span]) -> int:
        """Append ``spans``; returns the number written."""
        payload = export_jsonl(spans, include_real_time=self._include_real_time)
        count = payload.count("\n")
        with open(self.path, "a") as handle:
            handle.write(payload)
        return count


def render_span_tree(spans: Iterable[Span], *, include_events: bool = True) -> str:
    """ASCII rendering of the span forest, in start order."""
    spans = list(spans)
    children: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)

    lines: List[str] = []

    def _walk(span: Span, depth: int) -> None:
        indent = "  " * depth
        status = "" if span.status == "ok" else f" [{span.status}: {span.error}]"
        attrs = ""
        if span.attributes:
            rendered = ", ".join(
                f"{key}={value}" for key, value in sorted(span.attributes.items())
            )
            attrs = f" ({rendered})"
        lines.append(
            f"{indent}{span.name}{attrs} "
            f"@{span.start_virtual_ms:.1f}ms +{span.duration_virtual_ms:.1f}ms"
            f"{status}"
        )
        if include_events:
            for event in span.events:
                event_attrs = ""
                if event.attributes:
                    rendered = ", ".join(
                        f"{key}={value}"
                        for key, value in sorted(event.attributes.items())
                    )
                    event_attrs = f" ({rendered})"
                lines.append(
                    f"{indent}  * {event.name}{event_attrs} @{event.t_virtual_ms:.1f}ms"
                )
        for child in children.get(span.span_id, []):
            _walk(child, depth + 1)

    for root in children.get(None, []):
        _walk(root, 0)
    return "\n".join(lines)


def render_metrics_text(registry: MetricsRegistry) -> str:
    """Flat, sorted, human-readable metric dump."""
    lines: List[str] = []
    for instrument in registry.collect():
        labels = ",".join(
            f"{key}={value}" for key, value in sorted(instrument.labels.items())
        )
        series = f"{instrument.name}{{{labels}}}" if labels else instrument.name
        if isinstance(instrument, Histogram):
            lines.append(
                f"{series} count={instrument.count} sum={instrument.sum:.3f} "
                f"mean={instrument.mean:.3f}"
            )
        else:
            lines.append(f"{series} {instrument.value}")
    return "\n".join(lines)
