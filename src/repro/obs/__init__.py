"""The observability plane: tracing, metrics and run reports.

One :class:`Observability` hub per device bundles:

* a tracer — :class:`~repro.obs.tracer.Tracer` when enabled, the shared
  :data:`~repro.obs.tracer.NOOP_TRACER` otherwise;
* a :class:`~repro.obs.metrics.MetricsRegistry` — always live, because
  the resilience counters and fault counts must work even when tracing
  is off (they have been part of the chaos contract since PR 1).

The hub is attached at device construction
(``MobileDevice(..., observability=Observability())``) and flows to
every mounted platform, the fault injector, and — via the proxy
factory — every proxy and its resilience runtime.  The default hub is
disabled: instrumentation sites check ``tracer.enabled`` first, so the
Figure-10 invocation path pays one attribute read and a branch.

Span vocabulary (see ``docs/OBSERVABILITY.md``):

``dispatch:<op>`` → ``resilience:<op>`` → ``binding:<op>`` →
``substrate:<native-op>`` / ``bridge:<method>``, with resilience events
(``retry``, ``timeout``, ``circuit.rejected``, ``fallback.served``,
``breaker.transition``) and fault events (``fault.injected``) attached
to whichever span is in flight.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.exporters import (
    InMemoryExporter,
    JsonlFileExporter,
    export_jsonl,
    render_metrics_text,
    render_span_tree,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.report import (
    breaker_report,
    chaos_summary,
    fault_report,
    instrumentation_points,
    registry_report,
    resilience_report,
)
from repro.obs.span import Span, SpanEvent
from repro.obs.tracer import NOOP_TRACER, NoopTracer, Tracer
from repro.obs.quantiles import P2Quantile, StreamingPercentiles, quantile_label
from repro.obs.flight import FlightRecorder, render_flight_text
from repro.obs.timeline import ShardTimelines
from repro.obs.timeseries import TimeSeries, TimeSeriesSampler
from repro.obs.analyze import (
    CausalReport,
    CriticalPath,
    LayerDelta,
    OperationProfile,
    OverheadProfile,
    ProfileDiff,
    SloEngine,
    SloSpec,
    SloStatus,
    collapsed_stacks,
    diff_profiles,
    load_profile,
    parse_jsonl,
    records_to_jsonl,
    render_causal_text,
    render_profile_text,
    top_spans_text,
)
from repro.obs.pipeline import (
    HealthReport,
    PipelineConfig,
    RedRollups,
    SpanRetention,
    TelemetryPipeline,
    render_health_text,
)
from repro.util.clock import SimulatedClock


class Observability:
    """One device's tracing + metrics hub.

    Parameters
    ----------
    enabled:
        ``True`` builds a recording tracer; ``False`` (the deviceless
        default) attaches the shared no-op tracer.  The metrics
        registry is live either way.
    clock:
        Virtual clock for span stamps; usually left ``None`` and bound
        by the adopting device.
    capture_real_time:
        Passed through to the tracer; disable for fully constant span
        objects in tests.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        clock: Optional[SimulatedClock] = None,
        capture_real_time: bool = True,
    ) -> None:
        self.metrics = MetricsRegistry()
        self.tracer = (
            Tracer(clock, capture_real_time=capture_real_time)
            if enabled
            else NOOP_TRACER
        )
        self._clock = clock
        #: Optional metric time-series sampler (see ``install_sampler``).
        self.sampler: Optional[TimeSeriesSampler] = None
        #: Optional flight recorder (see ``install_flight_recorder``).
        self.flight: Optional[FlightRecorder] = None
        #: Optional telemetry pipeline (see ``install_pipeline``).
        self.pipeline: Optional[TelemetryPipeline] = None

    @classmethod
    def disabled(cls) -> "Observability":
        """The default hub: live metrics, no-op tracer."""
        return cls(enabled=False)

    @property
    def enabled(self) -> bool:
        """Whether tracing is recording (metrics always are)."""
        return self.tracer.enabled

    def bind_clock(self, clock: SimulatedClock) -> None:
        self._clock = clock
        self.tracer.bind_clock(clock)
        if self.sampler is not None:
            self.sampler.bind_clock(clock)
        if self.flight is not None:
            self.flight.bind_clock(clock)

    # -- concurrency observability --------------------------------------------

    def install_sampler(self, **kwargs) -> TimeSeriesSampler:
        """Attach a :class:`~repro.obs.timeseries.TimeSeriesSampler`
        over this hub's registry (idempotent: returns the existing one).
        Runtime components call :meth:`tick` at their scheduling points;
        with no sampler installed a tick is one ``None`` check."""
        if self.sampler is None:
            kwargs.setdefault("clock", self._clock)
            self.sampler = TimeSeriesSampler(self.metrics, **kwargs)
            if self.flight is not None:
                self.sampler.add_sink(self.flight.record_sample)
        return self.sampler

    def install_flight_recorder(self, **kwargs) -> FlightRecorder:
        """Attach a :class:`~repro.obs.flight.FlightRecorder` shadowing
        this hub's tracer (and sampler, when present).  Idempotent."""
        if self.flight is None:
            kwargs.setdefault("clock", self._clock)
            self.flight = FlightRecorder(**kwargs)
            self.flight.attach(self.tracer)
            if self.sampler is not None:
                self.sampler.add_sink(self.flight.record_sample)
        return self.flight

    def install_pipeline(
        self,
        config: Optional[PipelineConfig] = None,
        *,
        source: Optional[str] = None,
    ) -> TelemetryPipeline:
        """Attach a :class:`~repro.obs.pipeline.TelemetryPipeline` as a
        sink of this hub's tracer, sharing this hub's metrics registry
        (the ``obs.*`` accounting series land next to everything else).
        Idempotent: returns the existing pipeline.  With
        ``config.streaming`` the tracer stops retaining spans and the
        pipeline's bounded ring becomes the only span storage."""
        if self.pipeline is None:
            self.pipeline = TelemetryPipeline(config, metrics=self.metrics)
            self.pipeline.attach(self.tracer, source=source)
        return self.pipeline

    def tick(self) -> int:
        """Sample tracked time series at the current virtual instant
        (runtime scheduling hooks call this unconditionally)."""
        if self.sampler is None:
            return 0
        return self.sampler.tick()

    # -- convenience export surface -----------------------------------------

    def export_jsonl(self, *, include_real_time: bool = False) -> str:
        """Finished spans as deterministic JSON Lines."""
        return export_jsonl(
            self.tracer.finished_spans(), include_real_time=include_real_time
        )

    def render_trace(self) -> str:
        """Human-readable span forest."""
        return render_span_tree(self.tracer.spans)

    def render_metrics(self) -> str:
        """Human-readable metric dump."""
        return render_metrics_text(self.metrics)

    def report(self) -> dict:
        """Registry-derived summary (see :func:`~repro.obs.report.registry_report`)."""
        return registry_report(self.metrics)


__all__ = [
    "CausalReport",
    "Counter",
    "CriticalPath",
    "FlightRecorder",
    "Gauge",
    "HealthReport",
    "Histogram",
    "InMemoryExporter",
    "JsonlFileExporter",
    "LayerDelta",
    "MetricsRegistry",
    "NOOP_TRACER",
    "NoopTracer",
    "Observability",
    "OperationProfile",
    "OverheadProfile",
    "P2Quantile",
    "PipelineConfig",
    "ProfileDiff",
    "RedRollups",
    "SloEngine",
    "SloSpec",
    "SloStatus",
    "ShardTimelines",
    "Span",
    "SpanEvent",
    "SpanRetention",
    "StreamingPercentiles",
    "TelemetryPipeline",
    "TimeSeries",
    "TimeSeriesSampler",
    "Tracer",
    "breaker_report",
    "chaos_summary",
    "collapsed_stacks",
    "diff_profiles",
    "export_jsonl",
    "fault_report",
    "instrumentation_points",
    "load_profile",
    "parse_jsonl",
    "quantile_label",
    "records_to_jsonl",
    "registry_report",
    "render_causal_text",
    "render_flight_text",
    "render_health_text",
    "render_metrics_text",
    "render_profile_text",
    "render_span_tree",
    "resilience_report",
    "top_spans_text",
]
