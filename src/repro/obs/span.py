"""The span model: one timed unit of work inside the M-Proxy stack.

A span is stamped with **two** clocks:

* *virtual* milliseconds from the device's
  :class:`~repro.util.clock.SimulatedClock` — deterministic, and the
  only timestamps that appear in exported traces by default;
* *real* milliseconds from ``perf_counter`` — the Python execution cost
  of the span, used by the profiling benchmarks and excluded from
  deterministic exports.

Span identifiers are small sequential integers drawn from the owning
tracer, never random — two runs of the same seeded scenario produce the
same ids in the same order, which is what makes trace exports
byte-comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Span status values.
STATUS_OK = "ok"
STATUS_ERROR = "error"


def _clean_attributes(attributes: Dict[str, Any]) -> Dict[str, Any]:
    """Attributes must be JSON-representable scalars (exporters rely on it)."""
    cleaned: Dict[str, Any] = {}
    for key, value in attributes.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            cleaned[key] = value
        else:
            cleaned[key] = repr(value)
    return cleaned


@dataclass
class SpanEvent:
    """A point-in-time annotation inside a span (virtual-clock stamped)."""

    name: str
    t_virtual_ms: float
    attributes: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "t_virtual_ms": round(self.t_virtual_ms, 6),
            "attributes": self.attributes,
        }


@dataclass
class Span:
    """One node of a trace tree."""

    name: str
    trace_id: int
    span_id: int
    parent_id: Optional[int]
    start_virtual_ms: float
    start_real_ms: float
    end_virtual_ms: Optional[float] = None
    end_real_ms: Optional[float] = None
    status: str = STATUS_OK
    error: Optional[str] = None
    attributes: Dict[str, Any] = field(default_factory=dict)
    events: List[SpanEvent] = field(default_factory=list)

    # -- recording -----------------------------------------------------------

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes.update(_clean_attributes({key: value}))

    def add_event(self, name: str, t_virtual_ms: float, **attributes: Any) -> SpanEvent:
        event = SpanEvent(name, t_virtual_ms, _clean_attributes(attributes))
        self.events.append(event)
        return event

    def mark_error(self, error: BaseException) -> None:
        self.status = STATUS_ERROR
        self.error = f"{type(error).__name__}: {error}"

    # -- reading -------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.end_virtual_ms is not None

    @property
    def duration_virtual_ms(self) -> float:
        """Virtual time spent in this span (0.0 while unfinished)."""
        if self.end_virtual_ms is None:
            return 0.0
        return self.end_virtual_ms - self.start_virtual_ms

    @property
    def duration_real_ms(self) -> float:
        """Real (Python execution) time spent in this span."""
        if self.end_real_ms is None:
            return 0.0
        return self.end_real_ms - self.start_real_ms

    def to_dict(self, *, include_real_time: bool = False) -> Dict[str, Any]:
        """Deterministic dict form.

        Real-time stamps are excluded by default so that exports of
        seeded runs are byte-identical across executions; pass
        ``include_real_time=True`` for profiling output.
        """
        out: Dict[str, Any] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_virtual_ms": round(self.start_virtual_ms, 6),
            "end_virtual_ms": (
                None if self.end_virtual_ms is None else round(self.end_virtual_ms, 6)
            ),
            "status": self.status,
            "error": self.error,
            "attributes": self.attributes,
            "events": [event.to_dict() for event in self.events],
        }
        if include_real_time:
            out["start_real_ms"] = self.start_real_ms
            out["end_real_ms"] = self.end_real_ms
        return out
