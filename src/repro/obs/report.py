"""Registry-backed run reports.

The aggregation helpers the chaos suite consumes
(:func:`resilience_report`, :func:`fault_report`, :func:`breaker_report`,
:func:`chaos_summary`) live here, rebuilt on top of the
:class:`~repro.obs.metrics.MetricsRegistry` series the resilience
runtimes and the fault injector populate.  ``repro.analysis.metrics``
re-exports them with unchanged public signatures.

Every helper is guarded for empty/zero-sample runs: no proxies, no
runtimes, no injector and no faults all yield well-formed zeroed
reports instead of raising.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List

#: The resilience counter fields, in report order (the registry stores
#: them as ``resilience.<field>{runtime=<label>}`` series).
RESILIENCE_FIELDS = (
    "attempts",
    "successes",
    "failures",
    "retries",
    "timeouts",
    "circuit_rejections",
    "fallbacks_served",
)


def zeroed_resilience_stats() -> Dict[str, int]:
    """The shape of one runtime's counters with no samples."""
    return {field: 0 for field in RESILIENCE_FIELDS}


def resilience_report(proxies: Iterable) -> Dict[str, Dict[str, int]]:
    """Per-proxy resilience counters, keyed by runtime label.

    Accepts any iterable of proxies; proxies without an attached runtime
    are skipped.  An extra ``"total"`` entry sums every counter and is
    fully zeroed when no runtime contributed anything.
    """
    report: Dict[str, Dict[str, int]] = {}
    totals = zeroed_resilience_stats()
    for proxy in proxies or ():
        runtime = getattr(proxy, "resilience", None)
        if runtime is None:
            continue
        stats = runtime.stats.as_dict()
        report[runtime.label] = stats
        for key, value in stats.items():
            totals[key] = totals.get(key, 0) + value
    report["total"] = totals
    return report


def fault_report(injector) -> Dict[str, Any]:
    """What the fault plane actually injected: counts plus fingerprint.

    ``injector`` may be ``None`` (or a fault-free injector); the report
    is then well-formed and zeroed.
    """
    if injector is None:
        return {"total": 0, "by_site": {}, "schedule": []}
    return {
        "total": injector.total_injected(),
        "by_site": injector.counts(),
        "schedule": injector.schedule(),
    }


def breaker_report(proxies: Iterable) -> Dict[str, list]:
    """Every circuit-breaker transition, keyed by runtime label."""
    report: Dict[str, list] = {}
    for proxy in proxies or ():
        runtime = getattr(proxy, "resilience", None)
        if runtime is None:
            continue
        transitions = runtime.breaker_transitions()
        if transitions:
            report[runtime.label] = [
                (operation, t_ms, frm.value, to.value)
                for operation, t_ms, frm, to in transitions
            ]
    return report


def chaos_summary(injector, proxies: Iterable) -> Dict[str, Any]:
    """The one-stop JSON-able summary of a chaos run."""
    proxies = list(proxies or ())
    return {
        "faults": fault_report(injector),
        "resilience": resilience_report(proxies),
        "breakers": breaker_report(proxies),
    }


def registry_report(registry) -> Dict[str, Any]:
    """A full metrics snapshot plus derived resilience totals.

    The snapshot half is the raw registry dump; the totals half gives
    the cross-runtime sums the dashboards chart, zeroed when the
    registry has no resilience series yet.
    """
    totals = {
        field: int(registry.total(f"resilience.{field}"))
        for field in RESILIENCE_FIELDS
    }
    return {
        "resilience_totals": totals,
        "faults_injected": int(registry.total("faults.injected")),
        "metrics": registry.snapshot(),
    }


def instrumentation_points(descriptor) -> List[Dict[str, Any]]:
    """The span names one proxy's invocations can produce, per method.

    Derived from the descriptor's semantic plane — the same structured
    data that drives the runtime — so the documentation can never drift
    from the dispatch instrumentation in ``MProxy._invoke``.
    """
    points: List[Dict[str, Any]] = []
    for method in descriptor.semantic.methods:
        points.append(
            {
                "method": method.name,
                "spans": [
                    f"dispatch:{method.name}",
                    f"resilience:{method.name}",
                    f"binding:{method.name}",
                    "substrate:<native operation>",
                ],
                "metrics": [
                    f'resilience.<field>{{runtime="{descriptor.interface}/<platform>"}}'
                ],
            }
        )
    return points
