"""The metrics registry: counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` lives on each device's observability hub
and is shared by the fault injector, every proxy's resilience runtime,
and the substrate instrumentation.  Instruments are identified by
``(name, labels)`` — asking twice for the same pair returns the same
instrument, so call sites never need to cache handles (though hot paths
may, cheaply).

Everything is deterministic: no timestamps, no randomness; a snapshot
is a pure function of the increments that produced it, serialized in
sorted order.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.quantiles import DEFAULT_QUANTILES, StreamingPercentiles

#: Default histogram bucket upper bounds (milliseconds-flavoured).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1_000.0, 2_500.0, 5_000.0, 10_000.0, 30_000.0,
)

LabelsKey = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Dict[str, Any]) -> LabelsKey:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


class Counter:
    """A monotonically increasing integer-or-float count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ConfigurationError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down (e.g. open breakers, queue depth)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Fixed-bucket histogram (cumulative counts, like Prometheus).

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``; a final
    implicit +Inf bucket (``overflow``) catches the rest.  Alongside the
    buckets, a P² marker set per default quantile
    (:mod:`repro.obs.quantiles`) streams p50/p95/p99 estimates without
    storing samples.
    """

    __slots__ = (
        "name", "labels", "bounds", "bucket_counts", "overflow", "count", "sum",
        "_percentiles",
    )

    def __init__(
        self,
        name: str,
        labels: Dict[str, str],
        bounds: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ConfigurationError("histogram bounds must be sorted and non-empty")
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * len(self.bounds)
        self.overflow = 0
        self.count = 0
        self.sum = 0.0
        self._percentiles = StreamingPercentiles(DEFAULT_QUANTILES)

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        if index < len(self.bounds):
            self.bucket_counts[index] += 1
        else:
            self.overflow += 1
        self.count += 1
        self.sum += value
        self._percentiles.observe(value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentiles(self) -> Dict[str, float]:
        """Streaming P² estimates, e.g. ``{"p50": ..., "p95": ..., "p99": ...}``."""
        return self._percentiles.as_dict()

    def quantile(self, q: float) -> float:
        """One tracked quantile's current estimate."""
        return self._percentiles.value(q)

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, +Inf last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.bucket_counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self.overflow))
        return out


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


#: Label set every over-limit series collapses into (see the guard below).
OVERFLOW_LABELS: Dict[str, str] = {"other": "true"}

#: The guard's own accounting series must never trip the guard.
_GUARD_EXEMPT = ("obs.cardinality_overflow",)


class MetricsRegistry:
    """The per-device instrument store.

    ``max_series_per_metric`` is the label-cardinality guard: once a
    metric name holds that many distinct label sets, further *new* label
    sets collapse into one ``{other="true"}`` series and the
    ``obs.cardinality_overflow`` counter (labelled with the offending
    metric name) increments — memory stays O(config) even when a label
    like ``tenant=`` is fed unbounded traffic.  ``None`` (the default)
    keeps the registry unbounded, which is what every existing plane
    expects; the telemetry pipeline opts the bound in.
    """

    def __init__(self, *, max_series_per_metric: Optional[int] = None) -> None:
        #: (name, labels_key) -> instrument
        self._instruments: Dict[Tuple[str, LabelsKey], Any] = {}
        #: name -> kind string, to reject kind clashes early.
        self._kinds: Dict[str, str] = {}
        self.max_series_per_metric = max_series_per_metric
        #: name -> count of distinct (non-overflow) label sets.
        self._series_counts: Dict[str, int] = {}

    def set_cardinality_limit(self, max_series_per_metric: Optional[int]) -> None:
        """(Re)configure the guard; existing series are never evicted."""
        if max_series_per_metric is not None and max_series_per_metric < 1:
            raise ConfigurationError("max_series_per_metric must be >= 1")
        self.max_series_per_metric = max_series_per_metric

    # -- instrument access ---------------------------------------------------

    def _get(self, kind: str, name: str, labels: Dict[str, Any], **extra: Any):
        declared = self._kinds.setdefault(name, kind)
        if declared != kind:
            raise ConfigurationError(
                f"metric {name!r} already registered as a {declared}, "
                f"requested as a {kind}"
            )
        key = (name, _labels_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            limit = self.max_series_per_metric
            counted = labels != OVERFLOW_LABELS
            if (
                limit is not None
                and counted
                and name not in _GUARD_EXEMPT
                and self._series_counts.get(name, 0) >= limit
            ):
                overflow = self._instruments.get((name, _labels_key(OVERFLOW_LABELS)))
                self._get(
                    "counter", "obs.cardinality_overflow", {"metric": name}
                ).inc()
                if overflow is not None:
                    return overflow
                labels = dict(OVERFLOW_LABELS)
                key = (name, _labels_key(labels))
                counted = False
            label_strs = {k: str(v) for k, v in labels.items()}
            instrument = _KINDS[kind](name, label_strs, **extra)
            self._instruments[key] = instrument
            if counted:
                self._series_counts[name] = self._series_counts.get(name, 0) + 1
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(
        self,
        name: str,
        buckets: Optional[Tuple[float, ...]] = None,
        **labels: Any,
    ) -> Histogram:
        if buckets is None:
            return self._get("histogram", name, labels)
        return self._get("histogram", name, labels, bounds=tuple(buckets))

    # -- reading -------------------------------------------------------------

    def collect(self, name: Optional[str] = None) -> Iterator[Any]:
        """Iterate instruments (optionally one metric name) in sorted order."""
        for (metric_name, _), instrument in sorted(self._instruments.items()):
            if name is None or metric_name == name:
                yield instrument

    def kind_of(self, name: str) -> Optional[str]:
        return self._kinds.get(name)

    def counter_values(self, name: str) -> Dict[LabelsKey, int]:
        """``labels_key -> value`` for every series of one counter."""
        return {
            _labels_key(instrument.labels): instrument.value
            for instrument in self.collect(name)
        }

    def total(self, name: str) -> float:
        """Sum of a counter across all label sets (0 when unregistered)."""
        return sum(instrument.value for instrument in self.collect(name))

    def snapshot(self) -> Dict[str, List[Dict[str, Any]]]:
        """Deterministic JSON-able dump of every instrument."""
        out: Dict[str, List[Dict[str, Any]]] = {}
        for instrument in self.collect():
            entry: Dict[str, Any] = {"labels": dict(sorted(instrument.labels.items()))}
            if isinstance(instrument, Histogram):
                entry["count"] = instrument.count
                entry["sum"] = round(instrument.sum, 6)
                entry["buckets"] = [
                    [bound if bound != float("inf") else "+Inf", count]
                    for bound, count in instrument.cumulative()
                ]
                entry["percentiles"] = {
                    label: round(value, 6)
                    for label, value in instrument.percentiles().items()
                }
            else:
                entry["value"] = instrument.value
            out.setdefault(instrument.name, []).append(entry)
        return out
