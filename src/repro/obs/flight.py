"""The flight recorder: a near-zero-cost ring buffer of recent activity.

Post-hoc trace exports answer "what happened over the whole run"; an
operator debugging a crash wants "what happened in the moments *before*
it".  The :class:`FlightRecorder` shadows one or more tracers (span
sinks), the time-series sampler (sample sinks) and the runtime's own
incident notes into small bounded ring buffers, and **dumps** them —
spans, events and metric samples, newest last — when something goes
wrong:

* a cooperative task crashes (scheduler crash isolation),
* a shard queue sheds a burst of requests,
* a circuit breaker opens,
* an SLO enters breach.

Each trigger site calls :meth:`trigger`; a per-reason cooldown collapses
a burst of identical incidents (sixty sheds in one blackout) into one
dump with a ``suppressed`` count, which is what keeps the recorder
near-zero-cost even mid-incident.

Determinism: everything is stamped from the virtual clock; ring
contents are a pure function of the seeded run, so
:meth:`to_json` is byte-identical across identically-seeded runs.
"""

from __future__ import annotations

import collections
import json
from typing import Any, Deque, Dict, List, Optional

from repro.obs.span import Span, _clean_attributes

FLIGHT_SCHEMA = "repro.obs.flight/v1"


class FlightRecorder:
    """Bounded recent-history buffers plus incident-triggered dumps.

    Parameters
    ----------
    clock:
        Virtual clock stamping notes and dumps; may be bound later
        (:meth:`bind_clock`).
    span_capacity / event_capacity / sample_capacity:
        Ring bounds for the three recent-history buffers.
    dump_capacity:
        How many dumps are retained (oldest evicted; ``sequence``
        numbers stay monotonic so consumers can detect eviction).
    cooldown_ms:
        Minimum virtual time between two dumps for the *same reason*;
        suppressed triggers are counted on the retained dump.
    """

    def __init__(
        self,
        *,
        clock=None,
        span_capacity: int = 128,
        event_capacity: int = 128,
        sample_capacity: int = 128,
        dump_capacity: int = 8,
        cooldown_ms: float = 1_000.0,
    ) -> None:
        if cooldown_ms < 0:
            raise ValueError(f"cooldown_ms must be >= 0, got {cooldown_ms}")
        self._clock = clock
        self._spans: Deque[Dict[str, Any]] = collections.deque(maxlen=span_capacity)
        self._events: Deque[Dict[str, Any]] = collections.deque(maxlen=event_capacity)
        self._samples: Deque[Dict[str, Any]] = collections.deque(
            maxlen=sample_capacity
        )
        self.dump_capacity = dump_capacity
        self.cooldown_ms = float(cooldown_ms)
        #: Retained dumps, oldest first (see ``dump_capacity``).
        self.dumps: List[Dict[str, Any]] = []
        #: Total dumps ever taken (monotonic; survives eviction).
        self.triggered = 0
        #: reason -> virtual time of its most recent dump.
        self._last_dump_ms: Dict[str, float] = {}

    def bind_clock(self, clock) -> None:
        self._clock = clock

    def _now(self) -> float:
        return self._clock.now_ms if self._clock is not None else 0.0

    # -- feeding -------------------------------------------------------------

    def attach(self, tracer, *, source: Optional[str] = None) -> None:
        """Shadow ``tracer``: every span it finishes (and that span's
        events) lands in the recent-history rings.  ``source`` tags the
        records when several tracers share one recorder (a fleet's
        agents) — span ids are only unique per tracer."""
        tracer.add_sink(lambda span: self.record_span(span, source=source))

    def record_span(self, span: Span, *, source: Optional[str] = None) -> None:
        record = span.to_dict()
        if source is not None:
            record["source"] = source
        self._spans.append(record)
        for event in span.events:
            entry = dict(event.to_dict())
            entry["span_id"] = span.span_id
            if source is not None:
                entry["source"] = source
            self._events.append(entry)

    def note(self, name: str, **attributes: Any) -> None:
        """Record a standalone incident event (shed, crash, breach) at
        the current virtual instant."""
        self._events.append(
            {
                "attributes": _clean_attributes(attributes),
                "name": name,
                "span_id": None,
                "t_virtual_ms": round(self._now(), 6),
            }
        )

    def record_sample(
        self, metric: str, labels: Dict[str, str], t_ms: float, value: float
    ) -> None:
        """Sample-sink form matching :meth:`TimeSeriesSampler.add_sink`."""
        self._samples.append(
            {
                "labels": dict(sorted(labels.items())),
                "metric": metric,
                "t_virtual_ms": round(t_ms, 6),
                "value": round(value, 6),
            }
        )

    # -- dumping -------------------------------------------------------------

    def trigger(self, reason: str, **attributes: Any) -> Optional[Dict[str, Any]]:
        """Capture the ring contents as one dump.

        Returns the dump, or ``None`` when a dump for the same reason
        fired within ``cooldown_ms`` (the retained dump's ``suppressed``
        count is incremented instead — one dump per burst).
        """
        now = self._now()
        last = self._last_dump_ms.get(reason)
        if last is not None and now - last < self.cooldown_ms:
            for dump in reversed(self.dumps):
                if dump["reason"] == reason:
                    dump["suppressed"] += 1
                    break
            return None
        self._last_dump_ms[reason] = now
        self.triggered += 1
        dump: Dict[str, Any] = {
            "attributes": _clean_attributes(attributes),
            "events": list(self._events),
            "reason": reason,
            "samples": list(self._samples),
            "sequence": self.triggered,
            "spans": list(self._spans),
            "suppressed": 0,
            "t_virtual_ms": round(now, 6),
        }
        self.dumps.append(dump)
        if len(self.dumps) > self.dump_capacity:
            del self.dumps[: len(self.dumps) - self.dump_capacity]
        return dump

    # -- reading -------------------------------------------------------------

    @property
    def last_dump(self) -> Optional[Dict[str, Any]]:
        return self.dumps[-1] if self.dumps else None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": FLIGHT_SCHEMA,
            "cooldown_ms": round(self.cooldown_ms, 6),
            "dumps": list(self.dumps),
            "triggered": self.triggered,
        }

    def to_json(self) -> str:
        """Deterministic serialized form (sorted keys)."""
        return (
            json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":")) + "\n"
        )

    @classmethod
    def parse(cls, text: str) -> Dict[str, Any]:
        """Validate and return a saved flight document (CLI entry)."""
        payload = json.loads(text)
        if not isinstance(payload, dict) or payload.get("schema") != FLIGHT_SCHEMA:
            raise ValueError(f"not a {FLIGHT_SCHEMA} document")
        return payload


def render_flight_text(payload: Dict[str, Any]) -> str:
    """Human-readable view of a flight document (live ``to_dict`` or a
    file reloaded via :meth:`FlightRecorder.parse`)."""
    dumps = payload.get("dumps", [])
    lines = [
        f"flight recorder: {payload.get('triggered', 0)} dump(s) taken, "
        f"{len(dumps)} retained"
    ]
    for dump in dumps:
        attrs = ", ".join(
            f"{key}={value}"
            for key, value in sorted((dump.get("attributes") or {}).items())
        )
        suffix = f" ({attrs})" if attrs else ""
        suppressed = dump.get("suppressed", 0)
        burst = f" +{suppressed} suppressed" if suppressed else ""
        lines.append(
            f"dump #{dump['sequence']}: {dump['reason']} "
            f"@{dump['t_virtual_ms']:.1f}ms{suffix}{burst}"
        )
        spans = dump.get("spans", [])
        events = dump.get("events", [])
        samples = dump.get("samples", [])
        lines.append(
            f"  buffered: {len(spans)} span(s), {len(events)} event(s), "
            f"{len(samples)} sample(s)"
        )
        for record in spans:
            source = record.get("source")
            tag = f" [{source}]" if source else ""
            start = record.get("start_virtual_ms", 0.0)
            end = record.get("end_virtual_ms")
            duration = 0.0 if end is None else end - start
            status = record.get("status", "ok")
            verdict = "" if status == "ok" else f" [{status}: {record.get('error')}]"
            lines.append(
                f"    span {record['span_id']}{tag} {record['name']} "
                f"@{start:.1f}ms +{duration:.1f}ms{verdict}"
            )
        for event in events:
            source = event.get("source")
            tag = f" [{source}]" if source else ""
            attrs = ", ".join(
                f"{key}={value}"
                for key, value in sorted((event.get("attributes") or {}).items())
            )
            suffix = f" ({attrs})" if attrs else ""
            lines.append(
                f"    event {event['name']}{tag} "
                f"@{event['t_virtual_ms']:.1f}ms{suffix}"
            )
        for sample in samples:
            labels = ",".join(
                f"{key}={value}"
                for key, value in sorted((sample.get("labels") or {}).items())
            )
            series = (
                f"{sample['metric']}{{{labels}}}" if labels else sample["metric"]
            )
            lines.append(
                f"    sample {series}={sample['value']:g} "
                f"@{sample['t_virtual_ms']:.1f}ms"
            )
    return "\n".join(lines)
