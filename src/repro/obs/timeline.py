"""Per-shard Gantt timelines reconstructed from concurrent trace exports.

The dispatcher stamps every executed request with a ``queue:<op>`` span
carrying ``platform``, ``shard`` and ``wait_ms`` attributes; because the
span's virtual interval is the request's *lane residency*, the set of
queue spans **is** the shard schedule.  This module folds them back into
per-lane timelines:

* **busy segments** — the lane executing a request (serial per lane, so
  segments within one lane never overlap — asserted by the property
  suite);
* **queue-wait intervals** — ``[start − wait_ms, start)`` per request,
  i.e. time the request sat admitted behind earlier work;
* **shed marks** — requests rejected at admission (``outcome="shed"``).

On top of the schedule sits a USE-style summary per lane (Utilization:
busy fraction; Saturation: time-weighted queue-depth percentiles and
peak; Errors: sheds and error-status executions), a deterministic text
Gantt rendering, and a collapsed JSON export.

Everything is derived from virtual-time stamps, so identically-seeded
runs render and export byte-identically.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.span import Span

TIMELINE_SCHEMA = "repro.obs.timeline/v1"

#: The span-name prefix marking lane residency.
LANE_SPAN_PREFIX = "queue:"

#: Queue-depth percentiles reported per lane (time-weighted).
DEPTH_PERCENTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)


def _spans_to_records(spans: Iterable[Span]) -> List[Dict[str, Any]]:
    return [span.to_dict() for span in spans]


class LaneSegment:
    """One executed request's residency on its lane."""

    __slots__ = ("span_id", "operation", "start_ms", "end_ms", "wait_ms", "status")

    def __init__(
        self,
        span_id: int,
        operation: str,
        start_ms: float,
        end_ms: float,
        wait_ms: float,
        status: str,
    ) -> None:
        self.span_id = span_id
        self.operation = operation
        self.start_ms = start_ms
        self.end_ms = end_ms
        self.wait_ms = wait_ms
        self.status = status

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms

    @property
    def submit_ms(self) -> float:
        return self.start_ms - self.wait_ms

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "operation": self.operation,
            "start_ms": round(self.start_ms, 6),
            "end_ms": round(self.end_ms, 6),
            "wait_ms": round(self.wait_ms, 6),
            "status": self.status,
        }


class ShardLane:
    """One worker shard's reconstructed schedule."""

    def __init__(self, platform: str, shard: int) -> None:
        self.platform = platform
        self.shard = shard
        #: Busy segments in start order (serial — never overlapping).
        self.segments: List[LaneSegment] = []
        self.sheds = 0

    @property
    def key(self) -> Tuple[str, int]:
        return (self.platform, self.shard)

    @property
    def name(self) -> str:
        return f"{self.platform}/{self.shard}"

    @property
    def busy_ms(self) -> float:
        return sum(segment.duration_ms for segment in self.segments)

    @property
    def executed(self) -> int:
        return len(self.segments)

    @property
    def errors(self) -> int:
        return sum(1 for segment in self.segments if segment.status != "ok")

    def utilization(self, window_ms: float) -> float:
        if window_ms <= 0:
            return 0.0
        return self.busy_ms / window_ms

    @property
    def shed_rate(self) -> float:
        offered = self.executed + self.sheds
        return self.sheds / offered if offered else 0.0

    # -- queue depth ---------------------------------------------------------

    def depth_steps(self) -> List[Tuple[float, int]]:
        """The lane's queue depth as a step function: ``(t, depth)``
        change points, chronological.  Depth counts requests admitted
        (submitted) but not yet executing; at one instant arrivals are
        applied before departures, so instantaneous bursts peak."""
        deltas: List[Tuple[float, int]] = []
        for segment in self.segments:
            deltas.append((segment.submit_ms, +1))
            deltas.append((segment.start_ms, -1))
        # +1 before -1 at the same instant (sort key: departures last).
        deltas.sort(key=lambda item: (item[0], -item[1]))
        steps: List[Tuple[float, int]] = []
        depth = 0
        for t, delta in deltas:
            depth += delta
            if steps and abs(steps[-1][0] - t) <= 1e-9:
                # Keep the pre-collapse peak: never lower an existing
                # same-instant step, so bursts remain visible.
                steps[-1] = (t, max(steps[-1][1], depth))
            else:
                steps.append((t, depth))
        return steps

    @property
    def peak_depth(self) -> int:
        steps = self.depth_steps()
        return max((depth for _, depth in steps), default=0)

    def depth_percentiles(self, t_end: float) -> Dict[str, float]:
        """Time-weighted queue-depth percentiles over the lane's
        observed window (ending at ``t_end``)."""
        steps = self.depth_steps()
        out = {f"p{int(q * 100)}": 0.0 for q in DEPTH_PERCENTILES}
        if not steps:
            return out
        #: (depth, dwell_ms) — how long the lane sat at each depth.
        dwell: Dict[int, float] = {}
        for (t, depth), nxt in zip(steps, steps[1:] + [(t_end, 0)]):
            dwell[depth] = dwell.get(depth, 0.0) + max(0.0, nxt[0] - t)
        total = sum(dwell.values())
        if total <= 0:
            return out
        cumulative = 0.0
        ordered = sorted(dwell.items())
        for q in DEPTH_PERCENTILES:
            target = q * total
            cumulative = 0.0
            value = float(ordered[-1][0])
            for depth, weight in ordered:
                cumulative += weight
                if cumulative >= target - 1e-12:
                    value = float(depth)
                    break
            out[f"p{int(q * 100)}"] = value
        return out


class ShardTimelines:
    """The full reconstructed schedule: every lane of every platform."""

    def __init__(self) -> None:
        self.lanes: Dict[Tuple[str, int], ShardLane] = {}
        self.t0_ms = 0.0
        self.t_end_ms = 0.0

    # -- construction --------------------------------------------------------

    @classmethod
    def from_records(cls, records: Sequence[Dict[str, Any]]) -> "ShardTimelines":
        timelines = cls()
        starts: List[float] = []
        ends: List[float] = []
        for record in records:
            name = record.get("name", "")
            if not name.startswith(LANE_SPAN_PREFIX):
                continue
            attributes = record.get("attributes") or {}
            shard = attributes.get("shard")
            if shard is None:
                continue
            platform = attributes.get("platform", "unknown")
            lane = timelines._lane(platform, int(shard))
            if attributes.get("outcome") == "shed":
                lane.sheds += 1
                continue
            end = record.get("end_virtual_ms")
            if end is None:
                continue
            start = record.get("start_virtual_ms") or 0.0
            wait = float(attributes.get("wait_ms", 0.0) or 0.0)
            lane.segments.append(
                LaneSegment(
                    record["span_id"],
                    name[len(LANE_SPAN_PREFIX):],
                    start,
                    end,
                    wait,
                    record.get("status", "ok"),
                )
            )
            starts.append(start - wait)
            ends.append(end)
        for lane in timelines.lanes.values():
            lane.segments.sort(key=lambda s: (s.start_ms, s.span_id))
        timelines.t0_ms = min(starts) if starts else 0.0
        timelines.t_end_ms = max(ends) if ends else 0.0
        return timelines

    @classmethod
    def from_spans(cls, spans: Iterable[Span]) -> "ShardTimelines":
        return cls.from_records(_spans_to_records(spans))

    def _lane(self, platform: str, shard: int) -> ShardLane:
        key = (platform, shard)
        lane = self.lanes.get(key)
        if lane is None:
            lane = self.lanes[key] = ShardLane(platform, shard)
        return lane

    # -- reading -------------------------------------------------------------

    @property
    def window_ms(self) -> float:
        return self.t_end_ms - self.t0_ms

    def sorted_lanes(self) -> List[ShardLane]:
        return [self.lanes[key] for key in sorted(self.lanes)]

    def utilization_by_lane(self) -> Dict[str, float]:
        """``"platform/shard" -> busy fraction`` over the shared window."""
        window = self.window_ms
        return {
            lane.name: round(lane.utilization(window), 6)
            for lane in self.sorted_lanes()
        }

    def summary(self) -> Dict[str, Any]:
        """The USE view per lane: Utilization (busy fraction),
        Saturation (queue-depth percentiles, peak), Errors (sheds,
        error executions)."""
        window = self.window_ms
        lanes = []
        for lane in self.sorted_lanes():
            lanes.append(
                {
                    "lane": lane.name,
                    "platform": lane.platform,
                    "shard": lane.shard,
                    "executed": lane.executed,
                    "busy_ms": round(lane.busy_ms, 6),
                    "utilization": round(lane.utilization(window), 6),
                    "queue_depth": {
                        key: round(value, 6)
                        for key, value in lane.depth_percentiles(
                            self.t_end_ms
                        ).items()
                    },
                    "peak_depth": lane.peak_depth,
                    "sheds": lane.sheds,
                    "shed_rate": round(lane.shed_rate, 6),
                    "errors": lane.errors,
                }
            )
        return {
            "window_ms": round(window, 6),
            "t0_ms": round(self.t0_ms, 6),
            "t_end_ms": round(self.t_end_ms, 6),
            "lanes": lanes,
        }

    def to_dict(self) -> Dict[str, Any]:
        """Collapsed export: summary plus every lane's segments."""
        out = self.summary()
        out["schema"] = TIMELINE_SCHEMA
        segments = {}
        for lane in self.sorted_lanes():
            segments[lane.name] = [segment.to_dict() for segment in lane.segments]
        out["segments"] = segments
        return out

    def to_json(self) -> str:
        """Deterministic serialized form (sorted keys, 6-dp rounding)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":")) + "\n"

    # -- rendering -----------------------------------------------------------

    def render_text(self, *, width: int = 60) -> str:
        """The operator Gantt: one row per lane over a fixed-width time
        axis (``#`` mostly busy, ``+`` partially busy, ``~`` idle with
        requests queued, ``.`` idle), followed by the USE summary."""
        if width < 10:
            raise ValueError(f"width must be >= 10, got {width}")
        window = self.window_ms
        lanes = self.sorted_lanes()
        if not lanes or window <= 0:
            return "(no lane spans in trace)"
        name_width = max(len(lane.name) for lane in lanes)
        bucket_ms = window / width
        lines = [
            f"shard timelines: {self.t0_ms:.1f}ms .. {self.t_end_ms:.1f}ms "
            f"({window:.1f}ms window, {bucket_ms:.1f}ms/cell)"
        ]
        for lane in lanes:
            cells = []
            for index in range(width):
                lo = self.t0_ms + index * bucket_ms
                hi = lo + bucket_ms
                busy = 0.0
                for segment in lane.segments:
                    busy += max(
                        0.0, min(segment.end_ms, hi) - max(segment.start_ms, lo)
                    )
                queued = any(
                    segment.submit_ms < hi and segment.start_ms > lo
                    for segment in lane.segments
                )
                fraction = busy / bucket_ms
                if fraction >= 0.5:
                    cells.append("#")
                elif fraction > 0.0:
                    cells.append("+")
                elif queued:
                    cells.append("~")
                else:
                    cells.append(".")
            util = lane.utilization(window)
            lines.append(
                f"{lane.name.ljust(name_width)} |{''.join(cells)}| "
                f"util={util:.2f} n={lane.executed} shed={lane.sheds}"
            )
        lines.append("")
        lines.append("USE summary (Utilization / Saturation / Errors):")
        for entry in self.summary()["lanes"]:
            depth = entry["queue_depth"]
            lines.append(
                f"  {entry['lane']}: util={entry['utilization']:.2f} "
                f"busy={entry['busy_ms']:.1f}ms n={entry['executed']} | "
                f"depth p50={depth['p50']:g} p95={depth['p95']:g} "
                f"p99={depth['p99']:g} peak={entry['peak_depth']} | "
                f"shed={entry['sheds']} ({entry['shed_rate']:.2%}) "
                f"errors={entry['errors']}"
            )
        return "\n".join(lines)
