"""Virtual-clock metric time series: bounded ring buffers over gauges
and counters.

The metrics registry answers "what is the value now"; production
debugging needs "what was it over time" — was the queue depth a plateau
or a spike, when did the breaker trip relative to the shed burst?  The
:class:`TimeSeriesSampler` turns selected registry series into bounded
``(t_virtual_ms, value)`` sequences, sampled at the runtime's own
scheduling ticks (dispatcher submit/drain/settle, cooperative-scheduler
drains), so a burst's internal shape is visible rather than just its
endpoints.

Determinism: timestamps are virtual-clock reads, the ring buffers are
plain deques, and the JSONL export is sorted series-major — two
identically-seeded runs export byte-identical time series.

Same-instant semantics: many runtime ticks can land on one virtual
instant (a submission burst at t=0).  A series keeps **one point per
instant**, updated in place to the latest value, while ``peak`` tracks
the largest value seen at (or carried into) that instant — so a queue
that spiked to 64 and drained back to 12 inside one tick still shows
``peak=64``.
"""

from __future__ import annotations

import collections
import json
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.obs.metrics import Histogram, MetricsRegistry, _labels_key

#: A single sample: (t_virtual_ms, value, peak-at-or-before-this-instant).
Point = Tuple[float, float, float]

TIMESERIES_SCHEMA = "repro.obs.timeseries/v1"

#: Tolerance for "the same virtual instant".
_EPS = 1e-9


class TimeSeries:
    """One tracked metric series' bounded sample history."""

    __slots__ = ("metric", "labels", "points", "dropped", "_carry_peak")

    def __init__(self, metric: str, labels: Dict[str, str], capacity: int) -> None:
        self.metric = metric
        self.labels = dict(labels)
        self.points: Deque[Point] = collections.deque(maxlen=capacity)
        #: Samples evicted by the ring bound (oldest-first).
        self.dropped = 0
        self._carry_peak: Optional[float] = None

    def record(self, t_ms: float, value: float) -> bool:
        """Fold one observation in; returns True when a new point was
        appended (False for an in-place same-instant update)."""
        if self.points and abs(self.points[-1][0] - t_ms) <= _EPS:
            _, _, peak = self.points[-1]
            self.points[-1] = (t_ms, value, max(peak, value))
            return False
        carry = self._carry_peak
        self._carry_peak = None
        peak = value if carry is None else max(carry, value)
        if len(self.points) == self.points.maxlen:
            self.dropped += 1
        self.points.append((t_ms, value, peak))
        return True

    def values(self) -> List[float]:
        return [value for _, value, _ in self.points]

    def peaks(self) -> List[float]:
        return [peak for _, _, peak in self.points]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "metric": self.metric,
            "labels": dict(sorted(self.labels.items())),
            "dropped": self.dropped,
            "points": [
                {
                    "t_virtual_ms": round(t, 6),
                    "value": round(value, 6),
                    "peak": round(peak, 6),
                }
                for t, value, peak in self.points
            ],
        }


class TimeSeriesSampler:
    """Samples selected registry series against the virtual clock.

    Parameters
    ----------
    metrics:
        The registry to read from (values only; never mutated).
    clock:
        Virtual clock stamping samples; may be bound later
        (:meth:`bind_clock`) — until then samples stamp 0.0.
    period_ms:
        Minimum virtual time between appended points per series.  The
        default 0.0 keeps one point per distinct virtual instant.  With
        a coarser period, values seen between points still feed the next
        point's ``peak``, so spikes are never silently dropped.
    capacity:
        Ring-buffer bound per series (oldest points evicted; the
        eviction count is exported as ``dropped``).
    """

    def __init__(
        self,
        metrics: MetricsRegistry,
        *,
        clock=None,
        period_ms: float = 0.0,
        capacity: int = 512,
    ) -> None:
        if period_ms < 0:
            raise ValueError(f"period_ms must be >= 0, got {period_ms}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._metrics = metrics
        self._clock = clock
        self.period_ms = float(period_ms)
        self.capacity = capacity
        #: (metric name, labels subset) selectors, in track order.
        self._selectors: List[Tuple[str, Dict[str, str]]] = []
        self._series: Dict[Tuple[str, Any], TimeSeries] = {}
        self._sinks: List[Callable[[str, Dict[str, str], float, float], None]] = []

    def bind_clock(self, clock) -> None:
        self._clock = clock

    def add_sink(
        self, sink: Callable[[str, Dict[str, str], float, float], None]
    ) -> None:
        """Register a callable invoked as ``sink(metric, labels, t, value)``
        for every appended point (the flight recorder subscribes here)."""
        self._sinks.append(sink)

    # -- selection -----------------------------------------------------------

    def track(self, metric: str, **labels: Any) -> None:
        """Select every series of ``metric`` whose labels contain the
        given subset (no labels = every series of the metric)."""
        self._selectors.append(
            (metric, {key: str(value) for key, value in labels.items()})
        )

    def tracked_series(self) -> List[TimeSeries]:
        """Every series sampled so far, in deterministic sorted order."""
        return [self._series[key] for key in sorted(self._series)]

    def series(self, metric: str, **labels: Any) -> Optional[TimeSeries]:
        """One series' history (exact label match), or ``None``."""
        key = (metric, _labels_key({k: str(v) for k, v in labels.items()}))
        return self._series.get(key)

    # -- sampling ------------------------------------------------------------

    def _now(self) -> float:
        return self._clock.now_ms if self._clock is not None else 0.0

    @staticmethod
    def _value_of(instrument) -> float:
        # Histograms are trackable by their observation count; gauges
        # and counters by their value.
        if isinstance(instrument, Histogram):
            return float(instrument.count)
        return float(instrument.value)

    def tick(self) -> int:
        """Sample every selected series at the current virtual instant;
        returns the number of points appended (in-place same-instant
        updates and sub-period peak folds return 0)."""
        now = self._now()
        appended = 0
        for metric, subset in self._selectors:
            for instrument in self._metrics.collect(metric):
                if any(
                    instrument.labels.get(key) != value
                    for key, value in subset.items()
                ):
                    continue
                key = (metric, _labels_key(instrument.labels))
                series = self._series.get(key)
                if series is None:
                    series = self._series[key] = TimeSeries(
                        metric, instrument.labels, self.capacity
                    )
                value = self._value_of(instrument)
                last = series.points[-1] if series.points else None
                if (
                    last is not None
                    and now - last[0] > _EPS
                    and now - last[0] < self.period_ms - _EPS
                ):
                    # Inside the sampling period: fold into the next
                    # point's peak instead of appending.
                    carry = series._carry_peak
                    series._carry_peak = (
                        value if carry is None else max(carry, value)
                    )
                    continue
                if series.record(now, value):
                    appended += 1
                    for sink in self._sinks:
                        sink(metric, series.labels, now, value)
        return appended

    # -- export --------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": TIMESERIES_SCHEMA,
            "period_ms": round(self.period_ms, 6),
            "capacity": self.capacity,
            "series": [series.to_dict() for series in self.tracked_series()],
        }

    def export_jsonl(self) -> str:
        """One JSON object per sample point: series-major (sorted by
        metric then labels), chronological within a series.  Sorted keys
        throughout — identically-seeded runs export byte-identically."""
        lines: List[str] = []
        for series in self.tracked_series():
            base = dict(sorted(series.labels.items()))
            for t, value, peak in series.points:
                lines.append(
                    json.dumps(
                        {
                            "labels": base,
                            "metric": series.metric,
                            "peak": round(peak, 6),
                            "t_virtual_ms": round(t, 6),
                            "value": round(value, 6),
                        },
                        sort_keys=True,
                        separators=(",", ":"),
                    )
                )
        return "\n".join(lines) + ("\n" if lines else "")

    def render_text(self) -> str:
        """Compact operator view: one line per series with its last
        value, peak, and point count."""
        lines: List[str] = []
        for series in self.tracked_series():
            labels = ",".join(
                f"{key}={value}" for key, value in sorted(series.labels.items())
            )
            name = f"{series.metric}{{{labels}}}" if labels else series.metric
            if series.points:
                t, value, _ = series.points[-1]
                peak = max(series.peaks())
                lines.append(
                    f"{name} points={len(series.points)} last={value:g}@{t:.1f}ms "
                    f"peak={peak:g} dropped={series.dropped}"
                )
            else:
                lines.append(f"{name} points=0")
        return "\n".join(lines)
