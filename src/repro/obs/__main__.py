"""Entry point: ``python -m repro.obs
{profile,slo,diff,timeline,critical-path,flight,admission,distrib,causal,
scenario,health}``."""

import sys

from repro.obs.analyze.cli import main

if __name__ == "__main__":
    sys.exit(main())
