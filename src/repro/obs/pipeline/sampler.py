"""Sampling decisions: deterministic head sampling + tail keep rules.

Head sampling decides *before looking at the trace* whether it is kept,
from a seeded hash of the trace identity — cheap, stateless, and
deterministic (same seed, same traffic, same keeps), unlike
``random()``-based samplers whose exports differ run to run.

Tail rules decide *after the trace completes* and exist to make
sampling safe: a trace exhibiting any anomaly — error status, queue
shed/throttle, breaker open, SLO breach, causal violation, or a
duration above the op class's streaming P² p99 — is always kept no
matter what the head decision said.  The chaos suite asserts zero
tail-rule misses at 1% head sampling.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence

from repro.obs.pipeline.records import SpanLike
from repro.obs.quantiles import P2Quantile

#: Event names whose presence anywhere in a trace forces retention.
ANOMALY_EVENTS = frozenset(
    {
        "queue.shed",
        "queue.throttled",
        "breaker.open",
        "slo.breach",
        "causal.violation",
    }
)

#: Tail-keep rule identifiers, in reporting order.
RULE_ERROR = "error"
RULE_SLOW = "slow.p99"


def head_keep(seed: int, source: Optional[str], trace_id: int, rate: float) -> bool:
    """The deterministic keep/drop decision for one trace.

    Hashes ``seed:source:trace_id`` (SHA-256, first 8 bytes as a uniform
    draw in ``[0, 1)``) and keeps the trace when the draw lands under
    ``rate``.  Pure: no state, no clock, no randomness.
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    key = f"{seed}:{source or ''}:{trace_id}".encode("utf-8")
    digest = hashlib.sha256(key).digest()
    draw = int.from_bytes(digest[:8], "big") / 2.0**64
    return draw < rate


def anomaly_rules(spans: Sequence[SpanLike]) -> List[str]:
    """Tail-keep rules the trace trips, deduplicated, in rule order.

    ``breaker.transition`` events count as ``breaker.open`` when the
    transition lands in the open state — the resilience runtime emits
    transitions, not a dedicated open event.

    This runs for *every* completed trace (it is what makes sampling
    safe), so the scan branches once per span on its shape and skips
    event handling entirely for the event-free common case instead of
    going through the generic ``records`` accessors.
    """
    rules: List[str] = []
    seen = set()
    for span in spans:
        if isinstance(span, dict):
            status = span.get("status", "ok")
            events = span.get("events")
        else:
            status = span.status
            events = span.events
        if status != "ok" and RULE_ERROR not in seen:
            seen.add(RULE_ERROR)
            rules.append(RULE_ERROR)
        if not events:
            continue
        for event in events:
            if isinstance(event, dict):
                name = event.get("name", "")
                attributes = event.get("attributes") or {}
            else:
                name = event.name
                attributes = event.attributes
            if name in ANOMALY_EVENTS:
                rule = name
            elif (
                name == "breaker.transition"
                and attributes.get("to_state") == "open"
            ):
                rule = "breaker.open"
            else:
                continue
            if rule not in seen:
                seen.add(rule)
                rules.append(rule)
    return rules


class TailRules:
    """The stateful slow-trace rule: per-op-class streaming P² p99.

    Event/error anomalies are stateless (:func:`anomaly_rules`); the
    latency rule needs history.  Each op class streams its root
    durations through one P² estimator and, once ``min_count``
    observations have armed it, any duration strictly above the current
    p99 estimate is kept.  Check-then-observe: a trace is judged against
    the threshold built from the traffic *before* it, so the decision
    sequence is deterministic and independent of the keep outcomes.
    """

    def __init__(self, *, min_count: int = 32) -> None:
        self.min_count = min_count
        self._p99: Dict[str, P2Quantile] = {}

    def is_slow(self, op: str, duration_ms: float) -> bool:
        estimator = self._p99.get(op)
        if estimator is None or estimator.count < self.min_count:
            return False
        return duration_ms > estimator.value

    def observe(self, op: str, duration_ms: float) -> None:
        estimator = self._p99.get(op)
        if estimator is None:
            estimator = self._p99[op] = P2Quantile(0.99)
        estimator.observe(duration_ms)

    def threshold(self, op: str) -> Optional[float]:
        """The current p99 estimate for an op class (``None`` before the
        rule arms)."""
        estimator = self._p99.get(op)
        if estimator is None or estimator.count < self.min_count:
            return None
        return estimator.value
