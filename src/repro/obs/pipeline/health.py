"""The fleet health console: one report fusing every analysis plane.

``python -m repro.obs health TRACE`` replays an exported trace through
a fresh :class:`~repro.obs.pipeline.pipeline.TelemetryPipeline` and
folds the results together with the admission report, the causal audit,
optional SLO evaluation and an optional flight-recorder document into a
single text/JSON answer to "is this run healthy?".

The ``--gate`` contract (CI's telemetry health gate) fails the report
when telemetry integrity was compromised or promises were broken:

* ``obs.dropped_spans`` > 0 — the retention ring evicted kept spans;
* ``obs.cardinality_overflow`` > 0 — a label or rollup key bound was
  hit and series collapsed into ``other=true``;
* tail misses > 0 — an anomalous trace was not retained (must never
  happen; structural invariant of the tail rules);
* the causal graph has a cycle or recorded ``causal.violation`` events;
* any evaluated SLO is in breach.

Captured anomalies (error traces, sheds, breaker opens) do **not** fail
the gate by themselves — capturing those is the pipeline doing its job.
``strict=True`` additionally fails on any anomalous trace at all, for
runs that are supposed to be perfectly clean.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.obs.analyze.admission import AdmissionReport
from repro.obs.analyze.causal import CausalReport
from repro.obs.analyze.slo import SloEngine, SloSpec, SloStatus
from repro.obs.pipeline.config import PipelineConfig
from repro.obs.pipeline.pipeline import TelemetryPipeline

HEALTH_SCHEMA = "repro.obs.health/v1"


def _causal_summary(causal: CausalReport) -> Dict[str, Any]:
    return {
        "acyclic": causal.acyclic,
        "violations": len(causal.violations),
        "writes": len(causal.writes),
        "regions": sorted(causal.regions),
        "hops": dict(sorted(causal.hops.items())),
    }


def _flight_summary(payload: Dict[str, Any]) -> Dict[str, Any]:
    dumps = payload.get("dumps") or []
    reasons: Dict[str, int] = {}
    for dump in dumps:
        reason = str(dump.get("reason", "unknown"))
        reasons[reason] = reasons.get(reason, 0) + 1
    return {
        "triggered": payload.get("triggered", 0),
        "dumps": len(dumps),
        "reasons": dict(sorted(reasons.items())),
    }


class HealthReport:
    """The fused health document (see the module docstring)."""

    def __init__(
        self,
        *,
        telemetry: Dict[str, Any],
        admission: Optional[Dict[str, Any]] = None,
        slo: Optional[List[Dict[str, Any]]] = None,
        causal: Optional[Dict[str, Any]] = None,
        flight: Optional[Dict[str, Any]] = None,
        failures: Sequence[str] = (),
    ) -> None:
        self.telemetry = telemetry
        self.admission = admission
        self.slo = slo
        self.causal = causal
        self.flight = flight
        self.failures = list(failures)

    # -- construction --------------------------------------------------------

    @classmethod
    def build(
        cls,
        pipeline: TelemetryPipeline,
        *,
        admission: Optional[AdmissionReport] = None,
        causal: Optional[CausalReport] = None,
        slo_statuses: Optional[Sequence[SloStatus]] = None,
        flight_payload: Optional[Dict[str, Any]] = None,
        strict: bool = False,
    ) -> "HealthReport":
        accounting = pipeline.accounting()
        failures: List[str] = []
        if accounting["dropped_spans"]:
            failures.append(
                f"retention ring evicted {accounting['dropped_spans']} kept "
                f"span(s) (obs.dropped_spans) — raise span_capacity"
            )
        if accounting["cardinality_overflow"]:
            failures.append(
                f"{accounting['cardinality_overflow']} series collapsed into "
                f"other=true (obs.cardinality_overflow)"
            )
        if accounting["tail_misses"]:
            failures.append(
                f"{accounting['tail_misses']} anomalous trace(s) were not "
                f"retained (tail-rule miss)"
            )
        if causal is not None:
            if not causal.acyclic:
                failures.append("causal happens-before graph has a cycle")
            if causal.violations:
                failures.append(
                    f"{len(causal.violations)} causal.violation event(s) in trace"
                )
        breached = [
            status for status in (slo_statuses or []) if status.breached
        ]
        for status in breached:
            failures.append(
                f"SLO {status.spec.name} in breach: {'; '.join(status.reasons)}"
            )
        if strict and accounting["anomalous_traces"]:
            failures.append(
                f"strict: {accounting['anomalous_traces']} anomalous trace(s) "
                f"in a run expected clean"
            )
        return cls(
            telemetry=pipeline.to_dict(),
            admission=admission.to_dict() if admission is not None else None,
            slo=(
                [status.to_dict() for status in slo_statuses]
                if slo_statuses is not None
                else None
            ),
            causal=_causal_summary(causal) if causal is not None else None,
            flight=(
                _flight_summary(flight_payload)
                if flight_payload is not None
                else None
            ),
            failures=failures,
        )

    @classmethod
    def from_records(
        cls,
        records: List[Dict[str, Any]],
        *,
        config: Optional[PipelineConfig] = None,
        slo_specs: Iterable[SloSpec] = (),
        flight_payload: Optional[Dict[str, Any]] = None,
        strict: bool = False,
    ) -> "HealthReport":
        """Offline entry: replay exported span records through a fresh
        pipeline and fold in every analyzer the records can feed."""
        pipeline = TelemetryPipeline(config)
        pipeline.ingest_records(records)
        admission = AdmissionReport.from_records(records)
        causal = CausalReport.from_records(records)
        statuses: Optional[List[SloStatus]] = None
        specs = list(slo_specs)
        if specs:
            engine = SloEngine(specs)
            engine.ingest_records(records)
            now_ms = max(
                (record.get("end_virtual_ms") or 0.0 for record in records),
                default=0.0,
            )
            statuses = engine.evaluate(now_ms)
        return cls.build(
            pipeline,
            admission=admission,
            causal=causal,
            slo_statuses=statuses,
            flight_payload=flight_payload,
            strict=strict,
        )

    # -- reading -------------------------------------------------------------

    @property
    def healthy(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": HEALTH_SCHEMA,
            "healthy": self.healthy,
            "failures": list(self.failures),
            "telemetry": self.telemetry,
            "admission": self.admission,
            "slo": self.slo,
            "causal": self.causal,
            "flight": self.flight,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"


def render_health_text(report: HealthReport, *, top: int = 8) -> str:
    """The operator-facing console view."""
    accounting = report.telemetry.get("accounting", {})
    retention = report.telemetry.get("retention", {})
    rollups = report.telemetry.get("rollups", {})
    verdict = "HEALTHY" if report.healthy else "UNHEALTHY"
    lines = [
        f"telemetry health: {verdict}"
        + ("" if report.healthy else f" ({len(report.failures)} failure(s))")
    ]
    for failure in report.failures:
        lines.append(f"  ! {failure}")
    lines.append(
        "sampling: kept {kept}/{total} trace(s) "
        "(head {head}, anomalous {anom}, tail misses {miss})".format(
            kept=accounting.get("traces_kept", 0),
            total=accounting.get("traces_total", 0),
            head=accounting.get("head_kept", 0),
            anom=accounting.get("anomalous_traces", 0),
            miss=accounting.get("tail_misses", 0),
        )
    )
    lines.append(
        "retention: {retained}/{capacity} span(s) in ring, "
        "{dropped} dropped, {out} sampled out".format(
            retained=retention.get("retained", 0),
            capacity=retention.get("capacity", 0),
            dropped=retention.get("dropped", 0),
            out=accounting.get("sampled_out", 0),
        )
    )
    series = rollups.get("series") or []
    lines.append(
        "rollups: {n} series, {req} request(s), {err} error(s), "
        "{collapsed} collapsed observation(s)".format(
            n=len(series),
            req=rollups.get("requests", 0),
            err=rollups.get("errors", 0),
            collapsed=rollups.get("collapsed_observations", 0),
        )
    )
    ranked = sorted(series, key=lambda s: (-s["count"], str(s["labels"])))
    for entry in ranked[:top]:
        labels = entry["labels"]
        if labels.get("other") == "true":
            key = "(other)"
        else:
            key = (
                f"{labels.get('op')}@{labels.get('platform')}"
                f"/{labels.get('region')}/{labels.get('tenant')}"
            )
        percentiles = entry.get("percentiles", {})
        lines.append(
            f"  {key:<40} n={entry['count']:<6} err={entry['errors']:<4} "
            f"p50={percentiles.get('p50', 0.0):.1f}ms "
            f"p99={percentiles.get('p99', 0.0):.1f}ms "
            f"rate={entry.get('rate_per_s', 0.0):.2f}/s"
        )
    if len(ranked) > top:
        lines.append(f"  ... {len(ranked) - top} more series")
    if report.slo is not None:
        for status in report.slo:
            state = "BREACHED" if status.get("breached") else "ok"
            lines.append(
                f"slo: {status.get('slo'):<24} {state:<8} "
                f"attainment={status.get('attainment', 0.0):.4f} "
                f"(target {status.get('target_ratio')}) "
                f"errors={status.get('error_rate', 0.0):.4f} "
                f"over {status.get('window_count', 0)} call(s)"
            )
    if report.admission is not None:
        lines.append(
            "admission: {shed} shed, {throttled} throttled, "
            "{resizes} autoscaler resize(s)".format(
                shed=report.admission.get("shed_total", 0),
                throttled=report.admission.get("throttled_total", 0),
                resizes=len(report.admission.get("resizes") or []),
            )
        )
    if report.causal is not None:
        lines.append(
            "causal: {state}, {violations} violation(s), {writes} write(s) "
            "across {regions} region(s)".format(
                state="acyclic" if report.causal.get("acyclic") else "CYCLIC",
                violations=report.causal.get("violations", 0),
                writes=report.causal.get("writes", 0),
                regions=len(report.causal.get("regions") or []),
            )
        )
    if report.flight is not None:
        reasons = report.flight.get("reasons") or {}
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(reasons.items()))
        lines.append(
            f"flight: {report.flight.get('triggered', 0)} trigger(s), "
            f"{report.flight.get('dumps', 0)} dump(s) retained"
            + (f" ({rendered})" if rendered else "")
        )
    return "\n".join(lines)
