"""The telemetry pipeline: tracer sink → sampling → rollups → retention.

:class:`TelemetryPipeline` is the single choke point all spans flow
through on their way out of a tracer.  Per completed trace it:

1. feeds the RED rollups (before any sampling — rollup counts always
   equal the unsampled truth);
2. applies the head-sampling decision and the tail keep rules;
3. either converts the trace to records and retains it in the bounded
   ring, or drops it with explicit ``obs.sampled_out`` accounting;
4. notifies observers (the fleet's SLO engine subscribes here so SLO
   evaluation sees every trace even when the tracer itself retains
   nothing).

The same pipeline runs offline: ``ingest_records`` replays an exported
JSONL trace through identical logic, which is what the
``python -m repro.obs health`` console does.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, Iterable, List, NamedTuple, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.pipeline.config import PipelineConfig, op_class
from repro.obs.pipeline.records import (
    SpanLike,
    span_attributes,
    span_duration_ms,
    span_name,
    span_parent_id,
    span_record,
    span_status,
    span_trace_id,
)
from repro.obs.pipeline.retention import SpanRetention
from repro.obs.pipeline.rollup import UNKNOWN, RedRollups, RollupKey
from repro.obs.pipeline.sampler import RULE_SLOW, TailRules, anomaly_rules, head_keep

PIPELINE_SCHEMA = "repro.obs.pipeline/v1"

#: ``(source, spans)`` callback fired for every completed trace.
TraceObserver = Callable[[Optional[str], List[SpanLike]], None]


class TraceDecision(NamedTuple):
    """The sampling outcome for one completed trace."""

    kept: bool
    head: bool
    rules: Tuple[str, ...]


def trace_ref(source: Optional[str], trace_id: int) -> str:
    """The exemplar reference a rollup bucket stores for a kept trace."""
    return f"{source}:{trace_id}" if source else str(trace_id)


class TelemetryPipeline:
    """See the module docstring.  One pipeline may serve many tracers
    (a fleet attaches every agent's), disambiguated by ``source``."""

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if self.config.max_metric_series is not None:
            self.metrics.set_cardinality_limit(self.config.max_metric_series)
        self.rollups = RedRollups(
            bounds=self.config.buckets,
            max_series=self.config.max_series,
            metrics=self.metrics,
        )
        self.retention = SpanRetention(self.config.span_capacity)
        self.tail = TailRules(min_count=self.config.slow_trace_min_count)
        #: Open traces: (source, trace_id) -> spans seen so far.
        self._buffers: Dict[Tuple[Optional[str], int], List[SpanLike]] = {}
        self._observers: List[TraceObserver] = []
        # Eager counters so accounting reads zero instead of absent.
        counter = self.metrics.counter
        self._c_spans = counter("obs.spans_total")
        self._c_traces = counter("obs.traces_total")
        self._c_kept = counter("obs.traces_kept")
        self._c_traces_out = counter("obs.traces_sampled_out")
        self._c_sampled_out = counter("obs.sampled_out")
        self._c_dropped = counter("obs.dropped_spans")
        self._c_anomalous = counter("obs.anomalous_traces")
        self._c_anomalous_kept = counter("obs.anomalous_kept")
        self._c_head_kept = counter("obs.head_kept")

    # -- ingestion -----------------------------------------------------------

    def attach(self, tracer, *, source: Optional[str] = None) -> None:
        """Subscribe to a tracer's finished spans.

        With ``config.streaming`` the tracer is flipped out of retention:
        this ring becomes the only span storage and tracer memory stays
        O(deepest trace).
        """
        if not getattr(tracer, "enabled", False):
            return
        tracer.add_sink(functools.partial(self.record_span, source=source))
        if self.config.streaming:
            tracer.set_retention(False)

    def record_span(self, span: SpanLike, *, source: Optional[str] = None) -> None:
        """The live sink: buffer until the trace's root finishes.

        Sinks fire in completion order, so the root (``parent_id is
        None``) is always the last span of its trace to arrive.  This is
        the per-span hot path, hence the inlined shape branch.
        """
        if isinstance(span, dict):
            trace_id = span["trace_id"]
            parent_id = span.get("parent_id")
        else:
            trace_id = span.trace_id
            parent_id = span.parent_id
        key = (source, trace_id)
        buffer = self._buffers.get(key)
        if buffer is None:
            buffer = self._buffers[key] = []
        buffer.append(span)
        if parent_id is None:
            del self._buffers[key]
            self._complete(source, trace_id, buffer)

    def ingest_records(self, records: Iterable[Dict[str, Any]]) -> int:
        """Offline replay of exported span records (JSONL order: start
        order, roots first).  Groups by ``(source, trace_id)`` and runs
        each trace through the same completion path as the live sink.
        Returns the number of traces processed.
        """
        groups: Dict[Tuple[Optional[str], int], List[SpanLike]] = {}
        for record in records:
            key = (record.get("source"), record["trace_id"])
            groups.setdefault(key, []).append(record)
        for (source, trace_id), spans in groups.items():
            self._complete(source, trace_id, spans)
        return len(groups)

    def add_observer(self, observer: TraceObserver) -> None:
        """Register a per-completed-trace callback (fired pre-sampling —
        observers see every trace, kept or not)."""
        self._observers.append(observer)

    # -- the decision path ---------------------------------------------------

    def _complete(
        self,
        source: Optional[str],
        trace_id: int,
        spans: List[SpanLike],
    ) -> TraceDecision:
        root = next(
            (span for span in spans if span_parent_id(span) is None), spans[0]
        )
        op = op_class(span_name(root))
        duration = span_duration_ms(root)
        error = span_status(root) != "ok"
        attributes = span_attributes(root)
        start = (
            (root.get("start_virtual_ms") or 0.0)
            if isinstance(root, dict)
            else root.start_virtual_ms
        )

        rules = anomaly_rules(spans)
        if self.tail.is_slow(op, duration):
            rules.append(RULE_SLOW)
        self.tail.observe(op, duration)

        head = head_keep(self.config.seed, source, trace_id, self.config.rate_for(op))
        kept = head or bool(rules)

        self._c_spans.inc(len(spans))
        self._c_traces.inc()
        if rules:
            self._c_anomalous.inc()
        if head:
            self._c_head_kept.inc()

        rollup_key: RollupKey = (
            op,
            str(attributes.get("platform", UNKNOWN)),
            str(attributes.get("region", UNKNOWN)),
            str(attributes.get("tenant", UNKNOWN)),
        )
        end = start + duration
        self.rollups.observe(
            rollup_key,
            duration,
            error=error,
            t_ms=end,
            exemplar=trace_ref(source, trace_id) if kept else None,
        )

        for observer in self._observers:
            observer(source, spans)

        if kept:
            self._c_kept.inc()
            if rules:
                self._c_anomalous_kept.inc()
                for rule in rules:
                    self.metrics.counter("obs.tail_kept", rule=rule).inc()
            before = self.retention.dropped
            self.retention.extend(
                span_record(span, source=source) for span in spans
            )
            evicted = self.retention.dropped - before
            if evicted:
                self._c_dropped.inc(evicted)
        else:
            self._c_traces_out.inc()
            self._c_sampled_out.inc(len(spans))
        return TraceDecision(kept, head, tuple(rules))

    # -- reading -------------------------------------------------------------

    @property
    def open_traces(self) -> int:
        """Traces buffered but not yet completed (root still open)."""
        return len(self._buffers)

    @property
    def dropped_spans(self) -> int:
        return self.retention.dropped

    @property
    def sampled_out(self) -> int:
        return int(self.metrics.total("obs.sampled_out"))

    @property
    def cardinality_overflow(self) -> int:
        return int(self.metrics.total("obs.cardinality_overflow"))

    @property
    def tail_misses(self) -> int:
        """Anomalous traces not retained — structurally zero (tail rules
        force retention); the health gate asserts it stayed zero."""
        return int(
            self.metrics.total("obs.anomalous_traces")
            - self.metrics.total("obs.anomalous_kept")
        )

    def accounting(self) -> Dict[str, int]:
        total = self.metrics.total
        return {
            "spans_total": int(total("obs.spans_total")),
            "traces_total": int(total("obs.traces_total")),
            "traces_kept": int(total("obs.traces_kept")),
            "traces_sampled_out": int(total("obs.traces_sampled_out")),
            "sampled_out": int(total("obs.sampled_out")),
            "dropped_spans": int(total("obs.dropped_spans")),
            "head_kept": int(total("obs.head_kept")),
            "tail_kept": int(total("obs.tail_kept")),
            "anomalous_traces": int(total("obs.anomalous_traces")),
            "anomalous_kept": int(total("obs.anomalous_kept")),
            "tail_misses": self.tail_misses,
            "cardinality_overflow": self.cardinality_overflow,
            "open_traces": self.open_traces,
        }

    def export_jsonl(self) -> str:
        """The retained (sampled) trace as deterministic JSON Lines."""
        return self.retention.export_jsonl()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": PIPELINE_SCHEMA,
            "config": self.config.to_dict(),
            "accounting": self.accounting(),
            "rollups": self.rollups.to_dict(),
            "retention": self.retention.to_dict(),
        }
