"""Bounded span retention: the ring buffer kept traces land in.

Retention is the pipeline's only span storage in streaming mode, so its
bound is what makes telemetry memory O(config) instead of O(traffic).
Evictions are never silent: every span pushed out of the ring is
counted in :attr:`SpanRetention.dropped` (surfaced as
``obs.dropped_spans`` and a health-gate failure) — the operator learns
the ring was sized too small rather than discovering truncated traces
during an incident.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Deque, Dict, Iterable, List

from repro.errors import ConfigurationError


class SpanRetention:
    """A FIFO ring of retained span records (plain dicts)."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError("retention capacity must be >= 1")
        self.capacity = capacity
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self.dropped = 0
        self.total = 0

    def extend(self, records: Iterable[Dict[str, Any]]) -> None:
        ring = self._ring
        for record in records:
            if len(ring) == self.capacity:
                self.dropped += 1
            ring.append(record)
            self.total += 1

    def __len__(self) -> int:
        return len(self._ring)

    def records(self) -> List[Dict[str, Any]]:
        """Retained records, oldest first."""
        return list(self._ring)

    def export_jsonl(self) -> str:
        """Retained records as deterministic JSON Lines (sorted keys —
        byte-identical for identical record sequences)."""
        lines = [
            json.dumps(record, sort_keys=True, separators=(",", ":"))
            for record in self._ring
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "capacity": self.capacity,
            "retained": len(self._ring),
            "total": self.total,
            "dropped": self.dropped,
        }
