"""Pipeline configuration: sampling rates, bounds, and determinism knobs.

One frozen dataclass carries everything the pipeline needs so that a
config can be logged, diffed, and replayed — the keep/drop decision for
any trace is a pure function of ``(config.seed, source, trace_id)`` and
the per-op-class rate, nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.metrics import DEFAULT_BUCKETS


def op_class(name: str) -> str:
    """The op class a span name samples under.

    Span names are ``layer:operation`` (``dispatch:notify``,
    ``queue:capture``); the class is the operation so rates configured
    per op apply across layers and platforms.  Names without a colon
    class as themselves.
    """
    _, sep, rest = name.partition(":")
    return rest if sep else name


@dataclass(frozen=True)
class PipelineConfig:
    """Telemetry pipeline settings.

    Parameters
    ----------
    default_rate:
        Head-sampling keep probability in ``[0, 1]`` applied to op
        classes without an explicit entry in ``rates``.  ``1.0`` keeps
        everything (sampling off).
    rates:
        Per-op-class overrides, e.g. ``{"heartbeat": 0.001}``.
    seed:
        Seed folded into the keep/drop hash — same seed, same traffic,
        same decisions, byte-identical exports.
    streaming:
        When ``True``, attaching the pipeline flips the tracer out of
        retention (spans are discarded once their trace completes and
        the pipeline's ring is the only span storage) — the
        production-scale mode.
    span_capacity:
        Ring-buffer capacity, in spans, for kept traces
        (:class:`~repro.obs.pipeline.retention.SpanRetention`).
    max_series:
        Rollup key-cardinality bound: distinct ``(op, platform, region,
        tenant)`` keys beyond this collapse into the ``other=true``
        series with ``obs.cardinality_overflow`` accounting.
    max_metric_series:
        When set, installed on the attached :class:`MetricsRegistry` as
        its ``max_series_per_metric`` label-cardinality guard.
    slow_trace_min_count:
        Observations an op class must accumulate before the streaming
        P² p99 slow-trace tail rule arms (too few samples would make
        the estimate — and keep decisions — noise).
    buckets:
        Rollup duration-histogram bucket bounds (virtual milliseconds).
    """

    default_rate: float = 1.0
    rates: Mapping[str, float] = field(default_factory=dict)
    seed: int = 0
    streaming: bool = False
    span_capacity: int = 4096
    max_series: int = 64
    max_metric_series: Optional[int] = None
    slow_trace_min_count: int = 32
    buckets: Tuple[float, ...] = DEFAULT_BUCKETS

    def __post_init__(self) -> None:
        for label, rate in [("default_rate", self.default_rate), *self.rates.items()]:
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"sampling rate {label!r} must be in [0, 1], got {rate}"
                )
        if self.span_capacity < 1:
            raise ConfigurationError("span_capacity must be >= 1")
        if self.max_series < 1:
            raise ConfigurationError("max_series must be >= 1")
        if self.max_metric_series is not None and self.max_metric_series < 1:
            raise ConfigurationError("max_metric_series must be >= 1")
        if self.slow_trace_min_count < 5:
            raise ConfigurationError(
                "slow_trace_min_count must be >= 5 (P² needs five markers)"
            )
        object.__setattr__(self, "rates", dict(self.rates))

    def rate_for(self, op: str) -> float:
        """The head-sampling rate for one op class."""
        return self.rates.get(op, self.default_rate)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "default_rate": self.default_rate,
            "rates": dict(sorted(self.rates.items())),
            "seed": self.seed,
            "streaming": self.streaming,
            "span_capacity": self.span_capacity,
            "max_series": self.max_series,
            "max_metric_series": self.max_metric_series,
            "slow_trace_min_count": self.slow_trace_min_count,
        }
