"""Uniform accessors over live :class:`Span` objects and exported dicts.

The pipeline runs in two modes: live (a tracer sink receiving ``Span``
objects) and offline (``python -m repro.obs health`` replaying a JSONL
export, where each span is already a plain dict).  The sampling and
rollup logic is identical in both, so these accessors normalize the two
shapes instead of forcing an up-front conversion — the live fast path
must not pay ``to_dict`` for the ~99% of traces sampling drops.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Tuple, Union

from repro.obs.span import Span

SpanLike = Union[Span, Dict[str, Any]]


def span_name(span: SpanLike) -> str:
    return span["name"] if isinstance(span, dict) else span.name


def span_trace_id(span: SpanLike) -> int:
    return span["trace_id"] if isinstance(span, dict) else span.trace_id


def span_parent_id(span: SpanLike) -> Optional[int]:
    return span.get("parent_id") if isinstance(span, dict) else span.parent_id


def span_status(span: SpanLike) -> str:
    if isinstance(span, dict):
        return span.get("status", "ok")
    return span.status


def span_attributes(span: SpanLike) -> Dict[str, Any]:
    if isinstance(span, dict):
        return span.get("attributes") or {}
    return span.attributes


def span_duration_ms(span: SpanLike) -> float:
    """Virtual duration (0.0 for unfinished spans)."""
    if isinstance(span, dict):
        start = span.get("start_virtual_ms") or 0.0
        end = span.get("end_virtual_ms")
        return (end - start) if end is not None else 0.0
    return span.duration_virtual_ms


def iter_events(span: SpanLike) -> Iterator[Tuple[str, Dict[str, Any]]]:
    """``(name, attributes)`` pairs for every event on the span."""
    if isinstance(span, dict):
        for event in span.get("events") or ():
            yield event.get("name", ""), event.get("attributes") or {}
    else:
        for event in span.events:
            yield event.name, event.attributes


def span_record(span: SpanLike, *, source: Optional[str] = None) -> Dict[str, Any]:
    """The retained dict form (deterministic: virtual time only), with
    the pipeline's ``source`` tag when one was attached."""
    record = dict(span) if isinstance(span, dict) else span.to_dict()
    if source is not None and "source" not in record:
        record["source"] = source
    return record
