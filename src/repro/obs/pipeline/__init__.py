"""The telemetry pipeline: production-scale sampling between the tracer
and the exporters/analyzers.

Tracing every span of every invocation into unbounded lists cannot
survive millions of users — the observability plane itself becomes the
bottleneck.  This package bounds telemetry at the source while
guaranteeing that **every anomaly is captured**:

* :mod:`~repro.obs.pipeline.sampler` — deterministic seeded-hash head
  sampling per trace id (rate configurable per op class) plus the
  tail-based keep rules that always retain anomalous traces (error
  status, ``queue.shed`` / ``queue.throttled``, breaker opens,
  ``slo.breach``, ``causal.violation``, or a duration above the
  streaming P² p99);
* :mod:`~repro.obs.pipeline.rollup` — streaming RED rollups
  (rate/errors/duration) keyed by ``(op, platform, region, tenant)``
  with exemplar trace ids attached to histogram buckets, fed from
  **every** trace before sampling so rollup counts always equal the
  unsampled counts;
* :mod:`~repro.obs.pipeline.retention` — the bounded ring buffer kept
  traces land in, with explicit ``obs.dropped_spans`` accounting;
* :mod:`~repro.obs.pipeline.pipeline` — :class:`TelemetryPipeline`, the
  tracer sink tying the above together (``obs.*`` metric namespace);
* :mod:`~repro.obs.pipeline.health` — the fleet health console behind
  ``python -m repro.obs health`` fusing rollups, SLO state, admission
  outcomes, flight incidents and the causal audit into one report with
  a ``--gate``.

Everything is deterministic: the keep/drop decision is a pure function
of ``(seed, source, trace_id)``, rollups are pure functions of the
trace stream, and same-seed runs export byte-identical sampled traces.
"""

from repro.obs.pipeline.config import PipelineConfig
from repro.obs.pipeline.health import (
    HEALTH_SCHEMA,
    HealthReport,
    render_health_text,
)
from repro.obs.pipeline.pipeline import TelemetryPipeline
from repro.obs.pipeline.retention import SpanRetention
from repro.obs.pipeline.rollup import RedRollups, RollupSeries
from repro.obs.pipeline.sampler import (
    ANOMALY_EVENTS,
    TailRules,
    anomaly_rules,
    head_keep,
)

__all__ = [
    "ANOMALY_EVENTS",
    "HEALTH_SCHEMA",
    "HealthReport",
    "PipelineConfig",
    "RedRollups",
    "RollupSeries",
    "SpanRetention",
    "TailRules",
    "TelemetryPipeline",
    "anomaly_rules",
    "head_keep",
    "render_health_text",
]
