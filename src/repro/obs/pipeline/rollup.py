"""Streaming RED rollups: rate / errors / duration, with exemplars.

One :class:`RollupSeries` per ``(op, platform, region, tenant)`` key
streams request counts, error counts, a fixed-bucket duration histogram
and P² percentiles — O(1) memory per series, O(config) series total
(the key bound collapses excess keys into one ``other=true`` series).

Rollups are fed from **every** completed trace *before* the sampling
decision, which is the pipeline's core accounting guarantee: rollup
request/error counts always equal what an unsampled run would report,
no matter how aggressive the head rate is.  Sampling only affects
*exemplars* — each histogram bucket remembers the most recent **kept**
trace id that landed in it, so an operator can drill from a latency
bucket straight back to a retained trace.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry
from repro.obs.quantiles import DEFAULT_QUANTILES, quantile_label

#: Rollup key: (op, platform, region, tenant).
RollupKey = Tuple[str, str, str, str]

#: Placeholder for key dimensions a trace doesn't carry.
UNKNOWN = "-"


class RollupSeries:
    """RED accumulation for one rollup key.

    Unlike the registry's :class:`~repro.obs.metrics.Histogram`, no P²
    estimators stream alongside the buckets — the rollup path runs per
    completed trace on the invocation hot path, so percentiles are
    interpolated from the bucket counts at *read* time instead
    (``histogram_quantile`` style: exact bucket, linear within it).
    """

    __slots__ = (
        "op", "platform", "region", "tenant", "collapsed",
        "bounds", "bucket_counts", "overflow", "count", "errors", "sum",
        "max", "exemplars", "first_ms", "last_ms",
    )

    def __init__(
        self,
        key: RollupKey,
        *,
        bounds: Tuple[float, ...] = DEFAULT_BUCKETS,
        collapsed: bool = False,
    ) -> None:
        self.op, self.platform, self.region, self.tenant = key
        self.collapsed = collapsed
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * len(self.bounds)
        self.overflow = 0
        self.count = 0
        self.errors = 0
        self.sum = 0.0
        self.max = 0.0
        #: Latest kept trace ref per bucket; index ``len(bounds)`` is +Inf.
        self.exemplars: List[Optional[str]] = [None] * (len(self.bounds) + 1)
        self.first_ms: Optional[float] = None
        self.last_ms: Optional[float] = None

    def observe(
        self,
        duration_ms: float,
        *,
        error: bool,
        t_ms: float,
        exemplar: Optional[str] = None,
    ) -> None:
        index = bisect.bisect_left(self.bounds, duration_ms)
        if index < len(self.bounds):
            self.bucket_counts[index] += 1
        else:
            self.overflow += 1
        if exemplar is not None:
            self.exemplars[min(index, len(self.bounds))] = exemplar
        self.count += 1
        if error:
            self.errors += 1
        self.sum += duration_ms
        if duration_ms > self.max:
            self.max = duration_ms
        if self.first_ms is None:
            self.first_ms = t_ms
        self.last_ms = t_ms

    # -- reading -------------------------------------------------------------

    @property
    def key(self) -> RollupKey:
        return (self.op, self.platform, self.region, self.tenant)

    @property
    def error_ratio(self) -> float:
        return self.errors / self.count if self.count else 0.0

    def rate_per_s(self) -> float:
        """Requests per virtual second over the observed window (count
        itself when the window is degenerate)."""
        if self.first_ms is None or self.last_ms is None:
            return 0.0
        window_ms = self.last_ms - self.first_ms
        if window_ms <= 0.0:
            return float(self.count)
        return self.count / (window_ms / 1_000.0)

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (0.0 when empty; the
        overflow bucket interpolates up to the observed maximum)."""
        if not self.count:
            return 0.0
        rank = q * self.count
        running = 0
        lower = 0.0
        for bound, bucket_count in zip(self.bounds, self.bucket_counts):
            if bucket_count:
                running += bucket_count
                if running >= rank:
                    fraction = (rank - (running - bucket_count)) / bucket_count
                    return min(lower + (bound - lower) * fraction, self.max)
            lower = bound
        if self.overflow:
            fraction = (rank - running) / self.overflow
            return lower + (max(self.max, lower) - lower) * fraction
        return min(lower, self.max)

    def percentiles(self) -> Dict[str, float]:
        return {quantile_label(q): self.quantile(q) for q in DEFAULT_QUANTILES}

    def to_dict(self) -> Dict[str, Any]:
        labels = {
            "op": self.op,
            "platform": self.platform,
            "region": self.region,
            "tenant": self.tenant,
        }
        if self.collapsed:
            labels = {"other": "true"}
        buckets = []
        running = 0
        for bound, bucket_count, exemplar in zip(
            self.bounds, self.bucket_counts, self.exemplars
        ):
            running += bucket_count
            buckets.append({"le": bound, "count": running, "exemplar": exemplar})
        buckets.append(
            {"le": "+Inf", "count": running + self.overflow,
             "exemplar": self.exemplars[-1]}
        )
        return {
            "labels": labels,
            "count": self.count,
            "errors": self.errors,
            "error_ratio": round(self.error_ratio, 6),
            "rate_per_s": round(self.rate_per_s(), 6),
            "duration_sum_ms": round(self.sum, 6),
            "percentiles": {
                label: round(value, 6)
                for label, value in self.percentiles().items()
            },
            "buckets": buckets,
        }


class RedRollups:
    """The bounded series store.

    ``max_series`` caps distinct keys; observations for keys beyond the
    cap fold into one ``other=true`` series, counted in
    ``collapsed_observations`` and — when a registry is attached — the
    ``obs.cardinality_overflow{metric="obs.rollup"}`` counter, so the
    health gate can see the bound was hit.
    """

    def __init__(
        self,
        *,
        bounds: Tuple[float, ...] = DEFAULT_BUCKETS,
        max_series: int = 64,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.bounds = tuple(bounds)
        self.max_series = max_series
        self._metrics = metrics
        self._series: Dict[RollupKey, RollupSeries] = {}
        self._collapsed: Optional[RollupSeries] = None
        self.collapsed_observations = 0

    def observe(
        self,
        key: RollupKey,
        duration_ms: float,
        *,
        error: bool,
        t_ms: float,
        exemplar: Optional[str] = None,
    ) -> RollupSeries:
        series = self._series.get(key)
        if series is None:
            if len(self._series) >= self.max_series:
                self.collapsed_observations += 1
                if self._metrics is not None:
                    self._metrics.counter(
                        "obs.cardinality_overflow", metric="obs.rollup"
                    ).inc()
                if self._collapsed is None:
                    self._collapsed = RollupSeries(
                        ("other", "other", "other", "other"),
                        bounds=self.bounds,
                        collapsed=True,
                    )
                series = self._collapsed
            else:
                series = self._series[key] = RollupSeries(key, bounds=self.bounds)
        series.observe(duration_ms, error=error, t_ms=t_ms, exemplar=exemplar)
        return series

    # -- reading -------------------------------------------------------------

    def series(self) -> List[RollupSeries]:
        """Every series in sorted key order, the collapsed one last."""
        ordered = [self._series[key] for key in sorted(self._series)]
        if self._collapsed is not None:
            ordered.append(self._collapsed)
        return ordered

    @property
    def requests(self) -> int:
        return sum(series.count for series in self.series())

    @property
    def errors(self) -> int:
        return sum(series.errors for series in self.series())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "series": [series.to_dict() for series in self.series()],
            "distinct_keys": len(self._series),
            "max_series": self.max_series,
            "collapsed_observations": self.collapsed_observations,
            "requests": self.requests,
            "errors": self.errors,
        }
