"""Tracers: the span factory threaded through the M-Proxy stack.

Two implementations share one duck type:

* :class:`Tracer` — records hierarchical spans stamped with virtual and
  real time.  Single-threaded by design (the whole simulation is), so
  the "current span" is a plain stack, not a context variable.
* :class:`NoopTracer` — the default attached to every device.  Its
  ``enabled`` flag is ``False`` and every instrumentation site checks
  that flag *before* doing any span work, which is what keeps the
  Figure-10 invocation path at its pre-observability cost.

Determinism: span and trace ids are sequential integers; virtual
timestamps come from the bound :class:`~repro.util.clock.SimulatedClock`.
The only wall-clock read in the subsystem is the per-span real-time
stamp below, which never feeds back into simulation behaviour and is
excluded from deterministic exports.
"""

from __future__ import annotations

import contextlib
import itertools
import time
from typing import Any, Iterator, List, Optional

from repro.obs.span import Span
from repro.util.clock import SimulatedClock


def _real_now_ms() -> float:
    """Real-time stamp for span profiling (never drives simulation)."""
    return time.perf_counter() * 1_000.0  # wall-clock: measurement


class NoopTracer:
    """The zero-cost tracer: every operation is a no-op.

    Instrumentation sites should guard on :attr:`enabled` and skip span
    construction entirely; the methods below exist so that code holding
    a tracer reference never needs an ``is None`` dance.
    """

    enabled = False

    @property
    def current_span(self) -> None:
        return None

    @contextlib.contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[None]:
        yield None

    def event(self, name: str, **attributes: Any) -> None:
        pass

    def bind_clock(self, clock: SimulatedClock) -> None:
        pass

    def add_sink(self, sink) -> None:
        pass

    retaining = False

    def set_retention(self, retain: bool) -> None:
        pass

    @property
    def spans(self) -> List[Span]:
        return []

    def finished_spans(self) -> List[Span]:
        return []

    def reset(self) -> None:
        pass


#: Shared no-op instance (stateless, safe to share across devices).
NOOP_TRACER = NoopTracer()


class Tracer:
    """Records hierarchical spans against a virtual clock.

    Parameters
    ----------
    clock:
        The virtual clock stamping span boundaries.  May be bound later
        (``bind_clock``) — a device adopts the tracer during
        construction; until then virtual stamps read 0.0.
    capture_real_time:
        When ``False``, real-time stamps are recorded as 0.0 — useful
        for tests that want fully constant span objects.
    """

    enabled = True

    def __init__(
        self,
        clock: Optional[SimulatedClock] = None,
        *,
        capture_real_time: bool = True,
        retain: bool = True,
    ) -> None:
        self._clock = clock
        self._capture_real_time = capture_real_time
        self._spans: List[Span] = []
        self._stack: List[Span] = []
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        self._sinks: List[Any] = []
        #: Streaming mode (``retain=False``): spans flow to sinks and are
        #: discarded once their trace completes — the telemetry pipeline's
        #: bounded ring becomes the only retention, keeping the tracer
        #: O(deepest trace) instead of O(run length).
        self._retain = retain
        # Read-path indices: children by parent id, roots and finished
        # spans in completion order, plus memoized snapshot lists so the
        # analyze/ modules never rescan ``_spans`` per call.
        self._children: dict = {}
        self._roots: List[Span] = []
        self._spans_cache: Optional[List[Span]] = None
        self._finished_cache: Optional[List[Span]] = None

    def bind_clock(self, clock: SimulatedClock) -> None:
        """Adopt the device's virtual clock (done by ``MobileDevice``)."""
        self._clock = clock

    # -- clock reads ---------------------------------------------------------

    def _virtual_now(self) -> float:
        return self._clock.now_ms if self._clock is not None else 0.0

    def _real_now(self) -> float:
        return _real_now_ms() if self._capture_real_time else 0.0

    # -- span lifecycle ------------------------------------------------------

    @property
    def current_span(self) -> Optional[Span]:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    def start_span(self, name: str, **attributes: Any) -> Span:
        """Open a span as a child of the current span (manual lifecycle;
        prefer the :meth:`span` context manager)."""
        parent = self.current_span
        span = Span(
            name=name,
            trace_id=parent.trace_id if parent is not None else next(self._trace_ids),
            span_id=next(self._span_ids),
            parent_id=parent.span_id if parent is not None else None,
            start_virtual_ms=self._virtual_now(),
            start_real_ms=self._real_now(),
        )
        for key, value in attributes.items():
            span.set_attribute(key, value)
        self._spans.append(span)
        self._stack.append(span)
        self._spans_cache = None
        if parent is not None:
            self._children.setdefault(parent.span_id, []).append(span)
        else:
            self._roots.append(span)
        return span

    def add_sink(self, sink) -> None:
        """Register a callable invoked with every span as it finishes.

        Sinks are how the flight recorder shadows the tracer without the
        tracer knowing about it; with no sinks registered the per-span
        cost is one truthiness check.
        """
        self._sinks.append(sink)

    def end_span(self, span: Span) -> None:
        """Close ``span`` (and anything left open beneath it)."""
        while self._stack:
            top = self._stack.pop()
            top.end_virtual_ms = self._virtual_now()
            top.end_real_ms = self._real_now()
            self._finished_cache = None
            if self._sinks:
                for sink in self._sinks:
                    sink(top)
            if top.parent_id is None and not self._retain:
                # Streaming mode: the trace just completed and every sink
                # has seen it — drop the whole tree (traces never
                # interleave on the single span stack, so everything
                # recorded since the root opened belongs to it).
                self._spans.clear()
                self._children.clear()
                self._roots.clear()
                self._spans_cache = None
                self._finished_cache = None
            if top is span:
                return
        raise ValueError(f"span {span.name!r} is not open on this tracer")

    @contextlib.contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a child span for the duration of the ``with`` block.

        An escaping exception marks the span's status as ``error`` (with
        the exception text) and is re-raised untouched.
        """
        span = self.start_span(name, **attributes)
        try:
            yield span
        except BaseException as exc:
            span.mark_error(exc)
            raise
        finally:
            self.end_span(span)

    def event(self, name: str, **attributes: Any) -> None:
        """Attach a virtual-time-stamped event to the current span.

        Outside any span the event is dropped — instrumentation sites
        fire unconditionally and rely on this to stay quiet when no
        invocation is in flight.
        """
        span = self.current_span
        if span is not None:
            span.add_event(name, self._virtual_now(), **attributes)

    # -- reading -------------------------------------------------------------

    @property
    def retaining(self) -> bool:
        """Whether finished traces stay readable on the tracer (see
        ``retain=``); streaming tracers only feed their sinks."""
        return self._retain

    def set_retention(self, retain: bool) -> None:
        """Flip streaming mode (the telemetry pipeline does this when it
        attaches with ``streaming=True``).  Takes effect at the next
        trace completion; already-retained spans stay readable."""
        self._retain = retain

    @property
    def spans(self) -> List[Span]:
        """Every span started so far, in start order (memoized — the
        snapshot list is rebuilt only after new spans arrive)."""
        if self._spans_cache is None:
            self._spans_cache = list(self._spans)
        return self._spans_cache

    def finished_spans(self) -> List[Span]:
        """Finished spans in start order (memoized — rebuilt only after
        a span actually finishes, not on every access)."""
        if self._finished_cache is None:
            self._finished_cache = [span for span in self._spans if span.finished]
        return self._finished_cache

    def roots(self) -> List[Span]:
        """Trace roots in start order (maintained, not rescanned)."""
        return list(self._roots)

    def children_of(self, span: Span) -> List[Span]:
        """Direct children of ``span`` via the parent-id index (O(k),
        not O(n) — the scenario recorder walks whole span forests)."""
        return list(self._children.get(span.span_id, ()))

    def reset(self) -> None:
        """Drop recorded spans (id counters keep running — determinism
        depends on the construction point, not on resets)."""
        if self._stack:
            raise ValueError("cannot reset while spans are open")
        self._spans.clear()
        self._children.clear()
        self._roots.clear()
        self._spans_cache = None
        self._finished_cache = None
