"""MobiVine reproduction package.

This package reproduces *MobiVine — A Middleware Layer to Handle
Fragmentation of Platform Interfaces for Mobile Applications* (IBM Research
Report RI 09009 / MIDDLEWARE 2009).

Layout
------
``repro.util``
    Virtual clock, scheduler, event bus, geo math, latency models.
``repro.device``
    Simulated mobile device hardware: GPS, cellular radio, SMS center,
    network, battery.
``repro.platforms``
    Three deliberately heterogeneous platform substrates: Android-like,
    Nokia S60/J2ME-like, and Android WebView-like.
``repro.core``
    The paper's contribution: the M-Proxy model (descriptors, runtime,
    concrete proxies) and the M-Plugin toolkit integration.
``repro.apps``
    The motivating workforce-management application, native and proxied.
``repro.analysis``
    Software-engineering metrics used by the evaluation.
``repro.bench``
    Benchmark harness and latency calibration for Figure 10.
"""

from repro._version import __version__

__all__ = ["__version__"]
