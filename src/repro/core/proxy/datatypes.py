"""Uniform datatypes shared by every proxy binding.

The paper's portability argument rests on these: ``currentLocation`` in a
``proximityEvent`` is *the same type* on Android, S60 and WebView once
proxies are in play.  The location type also carries the paper's example
enrichment — output in degrees or radians.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.util.geo import haversine_m


class AngleFormat(enum.Enum):
    """Output format for angular fields (the paper's enrichment example)."""

    DEGREES = "degrees"
    RADIANS = "radians"


@dataclass(frozen=True)
class Location:
    """The uniform location value (MobiVine's ``com.ibm...proxy.Location``).

    Internally always decimal degrees; :meth:`latitude_in` /
    :meth:`longitude_in` convert on read.
    """

    latitude: float
    longitude: float
    altitude: float = 0.0
    accuracy_m: float = 0.0
    timestamp_ms: float = 0.0
    speed_mps: float = 0.0

    def latitude_in(self, angle_format: AngleFormat) -> float:
        if angle_format is AngleFormat.RADIANS:
            return math.radians(self.latitude)
        return self.latitude

    def longitude_in(self, angle_format: AngleFormat) -> float:
        if angle_format is AngleFormat.RADIANS:
            return math.radians(self.longitude)
        return self.longitude

    def distance_to_m(self, other: "Location") -> float:
        """Great-circle distance in metres."""
        return haversine_m(
            self.latitude, self.longitude, other.latitude, other.longitude
        )

    def as_tuple(self) -> Tuple[float, float, float]:
        return (self.latitude, self.longitude, self.altitude)


class CallOutcome(enum.Enum):
    """Uniform terminal states of a proxied voice call."""

    COMPLETED = "completed"
    BUSY = "busy"
    UNREACHABLE = "unreachable"
    NO_ANSWER = "no-answer"
    FAILED = "failed"


@dataclass
class CallHandle:
    """Uniform handle for an in-flight proxied call."""

    call_id: str
    number: str
    answered: bool = False
    outcome: Optional[CallOutcome] = None

    @property
    def finished(self) -> bool:
        return self.outcome is not None


@dataclass(frozen=True)
class Contact:
    """The uniform contact value (``com.ibm...proxy.Contact``).

    Flattened from Android cursor rows and S60 PIM items alike.
    """

    contact_id: str
    name: str
    phone_numbers: Tuple[str, ...] = ()
    email: str = ""

    @property
    def primary_number(self) -> Optional[str]:
        return self.phone_numbers[0] if self.phone_numbers else None


@dataclass(frozen=True)
class CalendarEvent:
    """The uniform calendar-event value (``com.ibm...proxy.CalendarEvent``)."""

    event_id: str
    summary: str
    start_ms: float
    end_ms: float
    location: str = ""

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass(frozen=True)
class HttpResult:
    """Uniform HTTP response value."""

    status: int
    body: str
    headers: Tuple[Tuple[str, str], ...] = ()

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300
