"""Uniform exception mapping.

Each binding plane lists the platform exceptions its interface can throw
and the uniform :class:`~repro.errors.ProxyError` subclass each maps to.
:func:`map_platform_exception` performs the mapping at the proxy boundary;
:func:`error_code_for` gives the stable numeric codes the WebView JS
bindings use (exceptions cannot cross the JS/Java bridge, so errors travel
as codes there — paper Section 4.1, step 2).

Transient-vs-permanent classification
-------------------------------------
The resilience layer needs to know whether a failure is worth retrying.
Every uniform error class carries a boolean ``transient`` attribute
(:func:`is_transient` reads it through inheritance).  When a platform
exception would map to the generic :class:`ProxyPlatformError`, the
mapper inspects the exception's cause chain for known *substrate*
failure shapes and refines the result to a transient subclass —
:class:`~repro.errors.ProxyNetworkError` for transport loss,
:class:`~repro.errors.ProxyTimeoutError` for stalled requests,
:class:`~repro.errors.ProxySensorError` for dark sensors,
:class:`~repro.errors.ProxyBridgeError` for lost bridge crossings.  The
refined classes subclass ``ProxyPlatformError`` (timeout excepted, which
has its own longstanding code), so existing handlers are unaffected; the
match is by class *name*, keeping this core module free of device- and
platform-layer imports.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from repro.core.descriptor.model import BindingPlane
from repro.errors import (
    ProxyBridgeError,
    ProxyCircuitOpenError,
    ProxyError,
    ProxyInvalidArgumentError,
    ProxyNetworkError,
    ProxyOverloadError,
    ProxyPermissionError,
    ProxyPlatformError,
    ProxyPropertyError,
    ProxyReplicaUnavailableError,
    ProxySensorError,
    ProxyThrottledError,
    ProxyTimeoutError,
    ProxyTransientError,
    ProxyUnavailableError,
)

#: Uniform error classes addressable from a binding plane's ``mapsTo``.
UNIFORM_ERRORS: Dict[str, Type[ProxyError]] = {
    cls.__name__: cls
    for cls in (
        ProxyError,
        ProxyPermissionError,
        ProxyUnavailableError,
        ProxyInvalidArgumentError,
        ProxyPropertyError,
        ProxyPlatformError,
        ProxyTimeoutError,
        ProxyTransientError,
        ProxyNetworkError,
        ProxyBridgeError,
        ProxyCircuitOpenError,
        ProxySensorError,
        ProxyOverloadError,
        ProxyThrottledError,
        ProxyReplicaUnavailableError,
    )
}

#: Substrate exception class name -> refined transient uniform class.
#: Matched against the platform exception and its ``__cause__`` chain;
#: only consulted when the binding-plane mapping resolves to the generic
#: ``ProxyPlatformError``.
_TRANSIENT_REFINEMENTS: Dict[str, Type[ProxyError]] = {
    "NetworkTimeout": ProxyTimeoutError,
    "NetworkError": ProxyNetworkError,
    "CarrierUnavailableError": ProxyNetworkError,
    "LocationException": ProxySensorError,
}

#: ``JsBridgeError.java_class`` value marking an injected bridge fault.
BRIDGE_FAULT_CLASS = "BridgeFault"


def uniform_error_class(name: str) -> Type[ProxyError]:
    """Resolve a ``mapsTo`` name; unknown names degrade to ProxyPlatformError."""
    return UNIFORM_ERRORS.get(name, ProxyPlatformError)


def error_code_for(name: str) -> int:
    """The stable numeric code for a uniform error class name."""
    return uniform_error_class(name).error_code


def code_to_error_class(code: int) -> Type[ProxyError]:
    """Inverse lookup used by the JS side when decoding bridge error codes."""
    for cls in UNIFORM_ERRORS.values():
        if cls.error_code == code:
            return cls
    return ProxyError


def is_transient(error: BaseException) -> bool:
    """Whether retrying the failed operation may succeed."""
    return bool(getattr(error, "transient", False))


def _refine_platform_error(exc: BaseException) -> Optional[Type[ProxyError]]:
    """Walk the cause chain looking for a known transient substrate failure."""
    seen = set()
    node: Optional[BaseException] = exc
    while node is not None and id(node) not in seen:
        seen.add(id(node))
        name = type(node).__name__
        if name == "JsBridgeError" and getattr(node, "java_class", None) == (
            BRIDGE_FAULT_CLASS
        ):
            return ProxyBridgeError
        refined = _TRANSIENT_REFINEMENTS.get(name)
        if refined is not None:
            return refined
        node = node.__cause__
    return None


def map_platform_exception(
    binding: BindingPlane, exc: BaseException, operation: str
) -> ProxyError:
    """Build the uniform error for a platform exception.

    The platform exception's class name is matched against the binding
    plane's exception list (by simple class name, since descriptor entries
    use Java-style qualified names whose last segment matches our Python
    class names).  Unlisted exceptions map to
    :class:`~repro.errors.ProxyPlatformError` — the proxy never lets a raw
    platform type escape.  Mappings that land on the generic platform
    error are refined to a transient subclass when the cause chain shows
    a recoverable substrate failure.  The original exception is chained
    as ``__cause__``.
    """
    exc_name = type(exc).__name__
    spec = None
    for candidate in binding.exceptions:
        candidate_simple = candidate.platform_class.rsplit(".", 1)[-1]
        if candidate_simple == exc_name:
            spec = candidate
            break
    if spec is not None:
        error_class = uniform_error_class(spec.maps_to)
    else:
        error_class = ProxyPlatformError
    if error_class is ProxyPlatformError:
        refined = _refine_platform_error(exc)
        if refined is not None:
            error_class = refined
    error = error_class(
        f"{operation} failed on {binding.platform}: {exc_name}: {exc}"
    )
    error.__cause__ = exc
    return error
