"""Uniform exception mapping.

Each binding plane lists the platform exceptions its interface can throw
and the uniform :class:`~repro.errors.ProxyError` subclass each maps to.
:func:`map_platform_exception` performs the mapping at the proxy boundary;
:func:`error_code_for` gives the stable numeric codes the WebView JS
bindings use (exceptions cannot cross the JS/Java bridge, so errors travel
as codes there — paper Section 4.1, step 2).
"""

from __future__ import annotations

from typing import Dict, Type

from repro.core.descriptor.model import BindingPlane
from repro.errors import (
    ProxyError,
    ProxyInvalidArgumentError,
    ProxyPermissionError,
    ProxyPlatformError,
    ProxyPropertyError,
    ProxyTimeoutError,
    ProxyUnavailableError,
)

#: Uniform error classes addressable from a binding plane's ``mapsTo``.
UNIFORM_ERRORS: Dict[str, Type[ProxyError]] = {
    cls.__name__: cls
    for cls in (
        ProxyError,
        ProxyPermissionError,
        ProxyUnavailableError,
        ProxyInvalidArgumentError,
        ProxyPropertyError,
        ProxyPlatformError,
        ProxyTimeoutError,
    )
}


def uniform_error_class(name: str) -> Type[ProxyError]:
    """Resolve a ``mapsTo`` name; unknown names degrade to ProxyPlatformError."""
    return UNIFORM_ERRORS.get(name, ProxyPlatformError)


def error_code_for(name: str) -> int:
    """The stable numeric code for a uniform error class name."""
    return uniform_error_class(name).error_code


def code_to_error_class(code: int) -> Type[ProxyError]:
    """Inverse lookup used by the JS side when decoding bridge error codes."""
    for cls in UNIFORM_ERRORS.values():
        if cls.error_code == code:
            return cls
    return ProxyError


def map_platform_exception(
    binding: BindingPlane, exc: BaseException, operation: str
) -> ProxyError:
    """Build the uniform error for a platform exception.

    The platform exception's class name is matched against the binding
    plane's exception list (by simple class name, since descriptor entries
    use Java-style qualified names whose last segment matches our Python
    class names).  Unlisted exceptions map to
    :class:`~repro.errors.ProxyPlatformError` — the proxy never lets a raw
    platform type escape.  The original exception is chained as
    ``__cause__``.
    """
    exc_name = type(exc).__name__
    spec = None
    for candidate in binding.exceptions:
        candidate_simple = candidate.platform_class.rsplit(".", 1)[-1]
        if candidate_simple == exc_name:
            spec = candidate
            break
    if spec is not None:
        error_class = uniform_error_class(spec.maps_to)
    else:
        error_class = ProxyPlatformError
    error = error_class(
        f"{operation} failed on {binding.platform}: {exc_name}: {exc}"
    )
    error.__cause__ = exc
    return error
