"""The M-Proxy runtime.

Everything an application touches when it uses MobiVine instead of a raw
platform: uniform datatypes (:class:`Location`, :class:`HttpResult`),
uniform listener interfaces, the generic ``set_property`` mechanism
validated against the binding plane, and uniform exception mapping.
"""

from repro.core.proxy.datatypes import (
    AngleFormat,
    CallHandle,
    CallOutcome,
    Contact,
    HttpResult,
    Location,
)
from repro.core.proxy.callbacks import (
    CallStateListener,
    FunctionProximityListener,
    HttpResponseListener,
    ProximityListener,
    SmsStatusListener,
)
from repro.core.proxy.properties import PropertySet
from repro.core.proxy.exceptions import map_platform_exception, error_code_for
from repro.core.proxy.base import MProxy

__all__ = [
    "AngleFormat",
    "CallHandle",
    "CallOutcome",
    "CallStateListener",
    "Contact",
    "FunctionProximityListener",
    "HttpResponseListener",
    "HttpResult",
    "Location",
    "MProxy",
    "PropertySet",
    "ProximityListener",
    "SmsStatusListener",
    "error_code_for",
    "map_platform_exception",
]
