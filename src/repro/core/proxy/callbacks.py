"""Uniform listener interfaces — the semantic plane's callback shapes.

Each platform binding adapts its native callback machinery (Android's
Intent broadcasts, S60's one-shot listeners, WebView's polled
notifications) onto these interfaces.  The signatures follow the paper's
Figure 8: ``proximityEvent(refLatitude, refLongitude, refAltitude,
currentLocation, entering)`` is identical on every platform.
"""

from __future__ import annotations

from typing import Callable

from repro.core.proxy.datatypes import CallHandle, HttpResult, Location


class ProximityListener:
    """Uniform proximity callback (``com.ibm...proxy.ProximityListener``)."""

    def proximity_event(
        self,
        ref_latitude: float,
        ref_longitude: float,
        ref_altitude: float,
        current_location: Location,
        entering: bool,
    ) -> None:
        """Called on every region entry (``entering=True``) and exit
        (``entering=False``) until the alert expires."""
        raise NotImplementedError


class FunctionProximityListener(ProximityListener):
    """Adapter: wrap a bare function as a listener.

    This is how the JavaScript syntactic plane's ``function`` callback
    style meets the Java-style ``object`` plane in one runtime.
    """

    def __init__(self, fn: Callable[[float, float, float, Location, bool], None]) -> None:
        self._fn = fn

    def proximity_event(
        self,
        ref_latitude: float,
        ref_longitude: float,
        ref_altitude: float,
        current_location: Location,
        entering: bool,
    ) -> None:
        self._fn(ref_latitude, ref_longitude, ref_altitude, current_location, entering)


class SmsStatusListener:
    """Uniform SMS progress callback."""

    def on_sent(self, message_id: str) -> None:
        """The message was accepted by the network."""

    def on_delivered(self, message_id: str) -> None:
        """The message reached the recipient handset."""

    def on_failed(self, message_id: str, reason: str) -> None:
        """The message could not be delivered."""


class CallStateListener:
    """Uniform voice-call progress callback."""

    def on_ringing(self, call: CallHandle) -> None:
        """The callee is being alerted."""

    def on_answered(self, call: CallHandle) -> None:
        """The call is active."""

    def on_finished(self, call: CallHandle) -> None:
        """The call reached a terminal state (see ``call.outcome``)."""


class HttpResponseListener:
    """Uniform asynchronous HTTP callback."""

    def on_response(self, result: HttpResult) -> None:
        """A response arrived."""

    def on_error(self, reason: str) -> None:
        """The request failed at the transport level."""
