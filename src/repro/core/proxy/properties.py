"""The generic property mechanism (``setProperty`` in the paper).

Platform-mandated attributes — Android's application context, S60's
criteria knobs — do not belong in the common API, but each binding still
needs them.  A :class:`PropertySet` is constructed from the binding
plane's :class:`~repro.core.descriptor.model.PropertySpec` list and
validates keys, allowed values and required-before-use rules uniformly
across every platform.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List

from repro.core.descriptor.model import PropertySpec
from repro.errors import ProxyPropertyError


class PropertySet:
    """Validated key/value store behind ``MProxy.set_property``."""

    def __init__(self, specs: Iterable[PropertySpec]) -> None:
        self._specs: Dict[str, PropertySpec] = {spec.name: spec for spec in specs}
        self._values: Dict[str, Any] = {}

    def spec(self, key: str) -> PropertySpec:
        try:
            return self._specs[key]
        except KeyError:
            raise ProxyPropertyError(
                f"unknown property {key!r} (known: {sorted(self._specs)})"
            ) from None

    def set(self, key: str, value: Any) -> None:
        """Set a property, enforcing the binding plane's allowed values."""
        spec = self.spec(key)
        try:
            spec.validate_value(value)
        except ValueError as exc:
            raise ProxyPropertyError(str(exc)) from exc
        self._values[key] = value

    def get(self, key: str) -> Any:
        """Current value, falling back to the spec default."""
        spec = self.spec(key)
        if key in self._values:
            return self._values[key]
        return spec.default

    def is_set(self, key: str) -> bool:
        """Whether the key was explicitly set (defaults don't count)."""
        return key in self._values

    def require(self, key: str, for_what: str) -> Any:
        """Value of a required property; raises if never set and no default.

        Bindings call this at invocation time so the error message names
        the operation that needed the property.
        """
        spec = self.spec(key)
        if key in self._values:
            return self._values[key]
        if spec.default is not None:
            return spec.default
        raise ProxyPropertyError(
            f"property {key!r} must be set before {for_what} "
            f"(use set_property({key!r}, ...))"
        )

    def known_keys(self) -> List[str]:
        return sorted(self._specs)

    def as_dict(self) -> Dict[str, Any]:
        """Effective values: defaults overlaid with explicit settings."""
        effective = {
            name: spec.default
            for name, spec in self._specs.items()
            if spec.default is not None
        }
        effective.update(self._values)
        return effective
