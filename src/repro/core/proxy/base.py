"""The M-Proxy base class.

A concrete proxy binding (e.g. the Android Location proxy) subclasses
:class:`MProxy` and gets, uniformly:

* ``set_property`` validated against its binding plane;
* semantic-plane argument validation (``_validate_arguments``);
* uniform exception mapping (``_guard`` context manager);
* an invocation log for the evaluation harness.
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, Iterator, List, Tuple

from repro.core.descriptor.model import BindingPlane, ProxyDescriptor
from repro.core.proxy.exceptions import map_platform_exception
from repro.core.proxy.properties import PropertySet
from repro.errors import ProxyError, ProxyInvalidArgumentError


class MProxy:
    """Base of every concrete proxy binding.

    Parameters
    ----------
    descriptor:
        The proxy's three-plane descriptor.
    platform:
        Platform name this binding serves (must have a binding plane).
    """

    #: Interface this proxy class implements (set by subclasses; must match
    #: the descriptor's interface name).
    interface = "abstract"

    def __init__(self, descriptor: ProxyDescriptor, platform: str) -> None:
        if descriptor.interface != self.interface:
            raise ProxyError(
                f"descriptor is for {descriptor.interface!r}, proxy class "
                f"implements {self.interface!r}"
            )
        self.descriptor = descriptor
        self.binding: BindingPlane = descriptor.binding_for(platform)
        self.properties = PropertySet(self.binding.properties)
        self._invocations: List[Tuple[str, Dict[str, Any]]] = []

    # -- the generic property mechanism (paper: setProperty) -----------------

    def set_property(self, key: str, value: Any) -> None:
        """Set a platform-specific attribute (validated against the
        binding plane's property list)."""
        self.properties.set(key, value)

    def get_property(self, key: str) -> Any:
        """Read a property's effective value (explicit or default)."""
        return self.properties.get(key)

    # -- shared invocation plumbing ---------------------------------------------

    def _validate_arguments(self, method_name: str, **arguments: Any) -> None:
        """Check named arguments against the semantic plane's dimensions."""
        method = self.descriptor.semantic.method(method_name)
        for name, value in arguments.items():
            parameter = method.parameter(name)
            try:
                parameter.validate_value(value)
            except ValueError as exc:
                raise ProxyInvalidArgumentError(str(exc)) from exc

    @contextlib.contextmanager
    def _guard(self, operation: str) -> Iterator[None]:
        """Map any escaping platform exception to the uniform hierarchy."""
        try:
            yield
        except ProxyError:
            raise  # already uniform
        except Exception as exc:
            raise map_platform_exception(self.binding, exc, operation) from exc

    def _record(self, method_name: str, **arguments: Any) -> None:
        self._invocations.append((method_name, arguments))

    @property
    def invocation_log(self) -> List[Tuple[str, Dict[str, Any]]]:
        """Every proxied call made through this instance (evaluation aid)."""
        return list(self._invocations)
