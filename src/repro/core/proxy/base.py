"""The M-Proxy base class.

A concrete proxy binding (e.g. the Android Location proxy) subclasses
:class:`MProxy` and gets, uniformly:

* ``set_property`` validated against its binding plane;
* semantic-plane argument validation (``_validate_arguments``);
* uniform exception mapping (``_guard`` context manager);
* resilience-guarded invocation (``_invoke``) when a
  :class:`~repro.core.resilience.ResilienceRuntime` is attached;
* an invocation log for the evaluation harness.
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.descriptor.model import BindingPlane, ProxyDescriptor
from repro.core.proxy.exceptions import map_platform_exception
from repro.core.proxy.properties import PropertySet
from repro.errors import ProxyError, ProxyInvalidArgumentError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.resilience.policy import ResilienceRuntime
    from repro.obs import Observability


class MProxy:
    """Base of every concrete proxy binding.

    Parameters
    ----------
    descriptor:
        The proxy's three-plane descriptor.
    platform:
        Platform name this binding serves (must have a binding plane).
    """

    #: Interface this proxy class implements (set by subclasses; must match
    #: the descriptor's interface name).
    interface = "abstract"

    def __init__(self, descriptor: ProxyDescriptor, platform: str) -> None:
        if descriptor.interface != self.interface:
            raise ProxyError(
                f"descriptor is for {descriptor.interface!r}, proxy class "
                f"implements {self.interface!r}"
            )
        self.descriptor = descriptor
        self.binding: BindingPlane = descriptor.binding_for(platform)
        self.properties = PropertySet(self.binding.properties)
        self._invocations: List[Tuple[str, Dict[str, Any]]] = []
        self._resilience: Optional["ResilienceRuntime"] = None
        self._obs: Optional["Observability"] = None
        self._property_listeners: List[Callable[[str, Any], None]] = []

    # -- the generic property mechanism (paper: setProperty) -----------------

    def set_property(self, key: str, value: Any) -> None:
        """Set a platform-specific attribute (validated against the
        binding plane's property list).

        Subscribed property listeners are notified after a successful
        set — the concurrency runtime's property-read cache relies on
        this to invalidate on every ``setProperty``."""
        self.properties.set(key, value)
        for listener in self._property_listeners:
            listener(key, value)

    def subscribe_property_changes(
        self, listener: Callable[[str, Any], None]
    ) -> None:
        """Register ``listener(key, value)`` to fire after every
        successful :meth:`set_property` (invalid sets never notify)."""
        self._property_listeners.append(listener)

    def get_property(self, key: str) -> Any:
        """Read a property's effective value (explicit or default)."""
        return self.properties.get(key)

    # -- shared invocation plumbing ---------------------------------------------

    def _validate_arguments(self, method_name: str, **arguments: Any) -> None:
        """Check named arguments against the semantic plane's dimensions."""
        method = self.descriptor.semantic.method(method_name)
        for name, value in arguments.items():
            parameter = method.parameter(name)
            try:
                parameter.validate_value(value)
            except ValueError as exc:
                raise ProxyInvalidArgumentError(str(exc)) from exc

    @contextlib.contextmanager
    def _guard(self, operation: str) -> Iterator[None]:
        """Map any escaping platform exception to the uniform hierarchy.

        With tracing enabled the guarded block is recorded as a
        ``binding:<operation>`` span — the binding-plane layer of the
        invocation's span tree.
        """
        obs = self._obs
        if obs is not None and obs.tracer.enabled:
            span_cm = obs.tracer.span(
                f"binding:{operation}", platform=self.binding.platform
            )
        else:
            span_cm = contextlib.nullcontext()
        try:
            with span_cm:
                yield
        except ProxyError:
            raise  # already uniform
        except Exception as exc:
            raise map_platform_exception(self.binding, exc, operation) from exc

    # -- resilience ------------------------------------------------------------

    def attach_resilience(self, runtime: "ResilienceRuntime") -> None:
        """Attach the resilience runtime guarding this proxy's calls.

        Done by the factory so every binding on every platform gets the
        same guard without per-binding wiring.
        """
        self._resilience = runtime

    @property
    def resilience(self) -> Optional["ResilienceRuntime"]:
        """The attached runtime (``None`` for bare proxies)."""
        return self._resilience

    # -- observability ---------------------------------------------------------

    def attach_observability(self, observability: "Observability") -> None:
        """Attach the device's observability hub (done by the factory,
        like :meth:`attach_resilience`)."""
        self._obs = observability

    @property
    def observability(self) -> Optional["Observability"]:
        """The attached hub (``None`` for hand-built proxies)."""
        return self._obs

    def _trace_event(self, name: str, **attributes: Any) -> None:
        """Binding-plane hook: annotate the in-flight span with a
        platform-specific moment (receiver registered, handle created,
        …).  Free when tracing is off."""
        obs = self._obs
        if obs is not None and obs.tracer.enabled:
            obs.tracer.event(name, **attributes)

    def _invoke(
        self,
        operation: str,
        thunk: Callable[[], Any],
        *,
        fallback: Any = None,
    ) -> Any:
        """Run one platform call under the proxy's resilience policy.

        Without an attached runtime this degrades to exactly the old
        ``_guard`` semantics: run the thunk, map escaping platform
        exceptions to the uniform hierarchy.  With a runtime, the call
        additionally gets timeout accounting, bounded retry with backoff
        on the virtual clock, circuit breaking, and (when enabled by the
        policy) the ``fallback`` — either the
        :data:`~repro.core.resilience.LAST_RESULT` sentinel or a
        zero-argument callable.
        """
        obs = self._obs
        if obs is not None and obs.tracer.enabled:
            with obs.tracer.span(
                f"dispatch:{operation}",
                interface=self.descriptor.interface,
                platform=self.binding.platform,
            ):
                return self._invoke_guarded(operation, thunk, fallback)
        return self._invoke_guarded(operation, thunk, fallback)

    def _invoke_guarded(
        self, operation: str, thunk: Callable[[], Any], fallback: Any
    ) -> Any:
        if self._resilience is None:
            with self._guard(operation):
                return thunk()
        return self._resilience.execute(
            self.binding, operation, thunk, fallback=fallback
        )

    def _record(self, method_name: str, **arguments: Any) -> None:
        self._invocations.append((method_name, arguments))

    @property
    def invocation_log(self) -> List[Tuple[str, Dict[str, Any]]]:
        """Every proxied call made through this instance (evaluation aid)."""
        return list(self._invocations)
