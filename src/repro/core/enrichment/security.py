"""Security and policy enrichment.

The paper: "Security and other policy modules can also be added to provide
a layer of trust, authentication and access control."  A
:class:`SecurityPolicy` is an ordered rule list evaluated per
(principal, interface, method); :class:`SecuredProxy` enforces it in front
of any proxy and keeps an audit trail.
"""

from __future__ import annotations

import enum
import fnmatch
from dataclasses import dataclass
from typing import Any, List, Optional

from repro.core.proxy.base import MProxy
from repro.errors import ConfigurationError, ProxyPermissionError


class AccessDecision(enum.Enum):
    """Outcome of a policy evaluation."""

    ALLOW = "allow"
    DENY = "deny"


@dataclass(frozen=True)
class Principal:
    """An authenticated caller identity."""

    name: str
    roles: frozenset = frozenset()

    def has_role(self, role: str) -> bool:
        return role in self.roles


@dataclass(frozen=True)
class AccessRule:
    """One policy rule: glob patterns over role / interface / method."""

    decision: AccessDecision
    role_pattern: str = "*"
    interface_pattern: str = "*"
    method_pattern: str = "*"

    def matches(self, principal: Principal, interface: str, method: str) -> bool:
        role_hit = self.role_pattern == "*" or any(
            fnmatch.fnmatchcase(role, self.role_pattern) for role in principal.roles
        )
        return (
            role_hit
            and fnmatch.fnmatchcase(interface, self.interface_pattern)
            and fnmatch.fnmatchcase(method, self.method_pattern)
        )


@dataclass(frozen=True)
class AuditRecord:
    """One enforcement event."""

    principal: str
    interface: str
    method: str
    decision: AccessDecision


class SecurityPolicy:
    """First-match-wins rule list with a configurable default."""

    def __init__(
        self,
        rules: Optional[List[AccessRule]] = None,
        default: AccessDecision = AccessDecision.DENY,
    ) -> None:
        self.rules: List[AccessRule] = list(rules or [])
        self.default = default

    def allow(self, *, roles: str = "*", interface: str = "*", method: str = "*") -> "SecurityPolicy":
        """Append an allow rule (chainable)."""
        self.rules.append(
            AccessRule(AccessDecision.ALLOW, roles, interface, method)
        )
        return self

    def deny(self, *, roles: str = "*", interface: str = "*", method: str = "*") -> "SecurityPolicy":
        """Append a deny rule (chainable)."""
        self.rules.append(AccessRule(AccessDecision.DENY, roles, interface, method))
        return self

    def evaluate(self, principal: Principal, interface: str, method: str) -> AccessDecision:
        for rule in self.rules:
            if rule.matches(principal, interface, method):
                return rule.decision
        return self.default


class SecuredProxy:
    """Access-control front for any M-Proxy.

    Every public proxy method call is checked against the policy for the
    bound principal before delegation; denials raise
    :class:`~repro.errors.ProxyPermissionError` and everything is audited.
    """

    #: Methods that are administrative, not platform invocations.
    _UNCHECKED = frozenset({"set_property", "get_property"})

    def __init__(
        self,
        inner: MProxy,
        policy: SecurityPolicy,
        principal: Principal,
    ) -> None:
        if not isinstance(inner, MProxy):
            raise ConfigurationError("SecuredProxy wraps an MProxy binding")
        self._inner = inner
        self._policy = policy
        self._principal = principal
        self.audit_log: List[AuditRecord] = []

    @property
    def inner(self) -> MProxy:
        return self._inner

    def _check(self, method: str) -> None:
        decision = self._policy.evaluate(
            self._principal, self._inner.interface, method
        )
        self.audit_log.append(
            AuditRecord(
                principal=self._principal.name,
                interface=self._inner.interface,
                method=method,
                decision=decision,
            )
        )
        if decision is AccessDecision.DENY:
            raise ProxyPermissionError(
                f"policy denies {self._principal.name} access to "
                f"{self._inner.interface}.{method}"
            )

    def __getattr__(self, name: str) -> Any:
        attribute = getattr(self._inner, name)
        if not callable(attribute) or name.startswith("_") or name in self._UNCHECKED:
            return attribute

        def guarded(*args: Any, **kwargs: Any) -> Any:
            self._check(name)
            return attribute(*args, **kwargs)

        return guarded
