"""REST resource enrichment over the HTTP proxy.

The paper's conclusion: "proxies can be created to interact with various
Web-offerings based on the REST architecture."  A :class:`RestResource`
wraps any HTTP proxy binding with resource-oriented verbs and JSON
encoding, so the same REST client code runs on every platform the HTTP
proxy covers.

The simulated network's routing is exact-match (GCF has no URL templates
either), so a REST service exposes item operations as
``POST <collection>/get`` / ``POST <collection>/delete`` with the id in
the body — the enrichment hides that convention behind proper
``retrieve``/``delete`` verbs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict

from repro.core.proxies.http.api import HttpProxy
from repro.core.proxy.datatypes import HttpResult
from repro.errors import ProxyPlatformError


@dataclass(frozen=True)
class RestResult:
    """Decoded outcome of one REST operation."""

    status: int
    body: Any

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class RestError(ProxyPlatformError):
    """A REST operation returned a non-2xx status."""

    def __init__(self, operation: str, result: HttpResult) -> None:
        super().__init__(
            f"{operation} failed with status {result.status}: {result.body[:120]}"
        )
        self.status = result.status


class RestResource:
    """Resource-oriented verbs over a collection URL.

    Parameters
    ----------
    http:
        Any HTTP proxy binding (Android, S60, WebView, or an extension
        platform's) — the enrichment composes, it does not care which.
    collection_url:
        Absolute URL of the collection, e.g.
        ``http://api.example.com/assignments``.
    """

    def __init__(self, http: HttpProxy, collection_url: str) -> None:
        if not collection_url.startswith("http://"):
            raise ValueError(f"collection_url must be absolute: {collection_url!r}")
        self._http = http
        self._collection_url = collection_url.rstrip("/")
        self._http.set_property("contentType", "application/json")

    # -- collection verbs -------------------------------------------------------

    def list(self) -> RestResult:
        """GET the collection."""
        return self._decode("list", self._http.get(self._collection_url))

    def create(self, payload: Dict[str, Any]) -> RestResult:
        """POST a new item to the collection."""
        return self._decode(
            "create", self._http.post(self._collection_url, json.dumps(payload))
        )

    # -- item verbs ---------------------------------------------------------------

    def retrieve(self, item_id: str) -> RestResult:
        """Fetch one item by id."""
        return self._decode(
            "retrieve",
            self._http.post(
                f"{self._collection_url}/get", json.dumps({"id": item_id})
            ),
        )

    def update(self, item_id: str, payload: Dict[str, Any]) -> RestResult:
        """Replace an item's representation."""
        body = dict(payload)
        body["id"] = item_id
        return self._decode(
            "update",
            self._http.post(f"{self._collection_url}/update", json.dumps(body)),
        )

    def delete(self, item_id: str) -> RestResult:
        """Remove an item."""
        return self._decode(
            "delete",
            self._http.post(
                f"{self._collection_url}/delete", json.dumps({"id": item_id})
            ),
        )

    # -- internals ----------------------------------------------------------------

    @staticmethod
    def _decode(operation: str, result: HttpResult) -> RestResult:
        if not result.ok:
            raise RestError(operation, result)
        body: Any = result.body
        if body:
            try:
                body = json.loads(body)
            except ValueError:
                pass  # non-JSON representations pass through as text
        return RestResult(status=result.status, body=body)


class InMemoryRestService:
    """A small REST service for the simulated network (test/server side).

    Mount it on a :class:`~repro.device.network.VirtualServer` and it
    serves the collection conventions :class:`RestResource` speaks.
    """

    def __init__(self, server, collection_path: str) -> None:
        from repro.device.network import HttpResponse

        self._items: Dict[str, Dict[str, Any]] = {}
        self._next_id = 1
        path = collection_path.rstrip("/")

        def _list(request):
            return HttpResponse(200, json.dumps(list(self._items.values())))

        def _create(request):
            payload = json.loads(request.body or "{}")
            item_id = f"item-{self._next_id}"
            self._next_id += 1
            payload["id"] = item_id
            self._items[item_id] = payload
            return HttpResponse(201, json.dumps(payload))

        def _get(request):
            item_id = json.loads(request.body or "{}").get("id", "")
            item = self._items.get(item_id)
            if item is None:
                return HttpResponse(404, json.dumps({"error": "not found"}))
            return HttpResponse(200, json.dumps(item))

        def _update(request):
            payload = json.loads(request.body or "{}")
            item_id = payload.get("id", "")
            if item_id not in self._items:
                return HttpResponse(404, json.dumps({"error": "not found"}))
            self._items[item_id] = payload
            return HttpResponse(200, json.dumps(payload))

        def _delete(request):
            item_id = json.loads(request.body or "{}").get("id", "")
            if self._items.pop(item_id, None) is None:
                return HttpResponse(404, json.dumps({"error": "not found"}))
            return HttpResponse(200, json.dumps({"ok": True}))

        server.route("GET", path, _list)
        server.route("POST", path, _create)
        server.route("POST", f"{path}/get", _get)
        server.route("POST", f"{path}/update", _update)
        server.route("POST", f"{path}/delete", _delete)

    def item_count(self) -> int:
        return len(self._items)
