"""Call retry coordination.

The paper: "proxy for invoking 'Call' can provide the utility for
coordinating the number of retries in case the callee is unreachable."
The coordinator wraps a Call proxy and redials on configurable outcomes
with a backoff delay, surfacing one final result to the caller's listener.

Delays come from the shared :class:`~repro.core.resilience.BackoffSchedule`
machinery.  The default is a fixed schedule equal to the historical
``retry_delay_ms`` behaviour; pass ``backoff=`` for exponential redial
spacing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.proxies.call.api import CallProxy, UniformCallCallback, as_call_listener
from repro.core.proxy.callbacks import CallStateListener
from repro.core.proxy.datatypes import CallHandle, CallOutcome
from repro.core.resilience.backoff import BackoffSchedule
from repro.errors import ConfigurationError
from repro.util.clock import Scheduler


@dataclass(frozen=True)
class RetryPolicy:
    """When and how often to redial.

    ``backoff`` (when given) supersedes the flat ``retry_delay_ms``:
    attempt *n*'s redial waits ``backoff.delay_ms(n - 1)``.
    """

    max_attempts: int = 3
    retry_delay_ms: float = 5_000.0
    retry_on: frozenset = frozenset({CallOutcome.UNREACHABLE, CallOutcome.BUSY})
    backoff: Optional[BackoffSchedule] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.retry_delay_ms < 0:
            raise ConfigurationError("retry_delay_ms cannot be negative")

    def delay_ms_for(self, retry_index: int) -> float:
        """Redial delay before retry number ``retry_index`` (0-based)."""
        schedule = self.backoff or BackoffSchedule.fixed(self.retry_delay_ms)
        return schedule.delay_ms(retry_index)


@dataclass
class RetryReport:
    """Outcome summary of a coordinated call."""

    number: str
    attempts: int = 0
    outcomes: List[CallOutcome] = field(default_factory=list)
    final: Optional[CallHandle] = None

    @property
    def succeeded(self) -> bool:
        return self.final is not None and self.final.outcome is CallOutcome.COMPLETED


class CallRetryCoordinator:
    """Wraps a Call proxy with redial-on-failure behaviour."""

    def __init__(
        self,
        inner: CallProxy,
        scheduler: Scheduler,
        policy: Optional[RetryPolicy] = None,
    ) -> None:
        self._inner = inner
        self._scheduler = scheduler
        self.policy = policy or RetryPolicy()

    @property
    def inner(self) -> CallProxy:
        return self._inner

    def make_a_call(
        self,
        number: str,
        call_listener: Optional[UniformCallCallback] = None,
    ) -> RetryReport:
        """Dial with retries; returns a live report that fills in as the
        attempts progress under the virtual clock.

        The caller's listener sees ringing/answered events of every
        attempt, but exactly one ``on_finished`` — for the final attempt.
        """
        listener = as_call_listener(call_listener)
        report = RetryReport(number=number)
        self._attempt(number, listener, report)
        return report

    def _attempt(
        self,
        number: str,
        listener: Optional[CallStateListener],
        report: RetryReport,
    ) -> None:
        report.attempts += 1
        coordinator = self

        class _AttemptListener(CallStateListener):
            def on_ringing(self, call: CallHandle) -> None:
                if listener is not None:
                    listener.on_ringing(call)

            def on_answered(self, call: CallHandle) -> None:
                if listener is not None:
                    listener.on_answered(call)

            def on_finished(self, call: CallHandle) -> None:
                coordinator._on_attempt_finished(number, listener, report, call)

        self._inner.make_a_call(number, _AttemptListener())

    def _on_attempt_finished(
        self,
        number: str,
        listener: Optional[CallStateListener],
        report: RetryReport,
        call: CallHandle,
    ) -> None:
        report.outcomes.append(call.outcome)
        retryable = (
            call.outcome in self.policy.retry_on
            and report.attempts < self.policy.max_attempts
        )
        if retryable:
            self._scheduler.call_later(
                self.policy.delay_ms_for(report.attempts - 1),
                lambda: self._attempt(number, listener, report),
                name=f"call-retry-{number}-{report.attempts}",
            )
            return
        report.final = call
        if listener is not None:
            listener.on_finished(call)
