"""Location format enrichment — output in radians, degrees, or DMS.

The paper: "proxy for fetching location can be made to offer output in
various formats — radians, degrees, etc."  The enrichment wraps any
Location proxy binding and converts on read; the inner proxy (and hence
the platform) is untouched.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.core.proxies.location.api import LocationProxy
from repro.core.proxy.datatypes import AngleFormat, Location
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FormattedPosition:
    """A position expressed in a chosen angle format."""

    latitude: float
    longitude: float
    altitude: float
    angle_format: AngleFormat

    def as_degrees(self) -> "FormattedPosition":
        if self.angle_format is AngleFormat.DEGREES:
            return self
        return FormattedPosition(
            math.degrees(self.latitude),
            math.degrees(self.longitude),
            self.altitude,
            AngleFormat.DEGREES,
        )

    def dms(self) -> Tuple[Tuple[int, int, float], Tuple[int, int, float]]:
        """Degrees/minutes/seconds tuples for (latitude, longitude)."""
        base = self.as_degrees()
        return (_to_dms(base.latitude), _to_dms(base.longitude))


def _to_dms(value_deg: float) -> Tuple[int, int, float]:
    sign = -1 if value_deg < 0 else 1
    magnitude = abs(value_deg)
    degrees = int(magnitude)
    minutes_float = (magnitude - degrees) * 60.0
    minutes = int(minutes_float)
    seconds = (minutes_float - minutes) * 60.0
    return (sign * degrees, minutes, seconds)


class LocationFormatEnrichment:
    """Wraps a Location proxy; ``get_position`` converts on read."""

    def __init__(
        self,
        inner: LocationProxy,
        angle_format: AngleFormat = AngleFormat.DEGREES,
    ) -> None:
        if not isinstance(angle_format, AngleFormat):
            raise ConfigurationError(
                f"angle_format must be an AngleFormat, got {angle_format!r}"
            )
        self._inner = inner
        self.angle_format = angle_format

    @property
    def inner(self) -> LocationProxy:
        return self._inner

    def get_position(self) -> FormattedPosition:
        """Read the current position in the configured format."""
        location = self._inner.get_location()
        return FormattedPosition(
            latitude=location.latitude_in(self.angle_format),
            longitude=location.longitude_in(self.angle_format),
            altitude=location.altitude,
            angle_format=self.angle_format,
        )

    def get_location(self) -> Location:
        """Pass-through for code that wants the raw uniform value."""
        return self._inner.get_location()

    def __getattr__(self, name: str):
        # Everything else (add_proximity_alert, set_property, ...) delegates.
        return getattr(self._inner, name)
