"""Proxy enrichment (paper Section 3.3).

Value-added layers stacked on top of a proxy's native functionality:

* :mod:`~repro.core.enrichment.formats` — location output in degrees or
  radians (the paper's example);
* :mod:`~repro.core.enrichment.retry` — call retry coordination when the
  callee is unreachable (the paper's other example);
* :mod:`~repro.core.enrichment.security` — trust/authentication/access
  control policy modules.
"""

from repro.core.enrichment.formats import FormattedPosition, LocationFormatEnrichment
from repro.core.enrichment.retry import CallRetryCoordinator, RetryPolicy, RetryReport
from repro.core.enrichment.security import (
    AccessDecision,
    AccessRule,
    AuditRecord,
    Principal,
    SecurityPolicy,
    SecuredProxy,
)
from repro.core.enrichment.rest import (
    InMemoryRestService,
    RestError,
    RestResource,
    RestResult,
)
from repro.core.enrichment.debounce import DebouncedProximityListener

__all__ = [
    "AccessDecision",
    "AccessRule",
    "AuditRecord",
    "CallRetryCoordinator",
    "DebouncedProximityListener",
    "FormattedPosition",
    "InMemoryRestService",
    "LocationFormatEnrichment",
    "Principal",
    "RestError",
    "RestResource",
    "RestResult",
    "RetryPolicy",
    "RetryReport",
    "SecuredProxy",
    "SecurityPolicy",
]
