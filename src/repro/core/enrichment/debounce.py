"""Proximity-debounce enrichment.

GPS fixes wobble; an agent parked near the region boundary can generate
rapid enter/exit *flapping* through any proximity stack.  This enrichment
wraps the uniform listener and only forwards a transition once it has been
confirmed by ``confirmations`` consecutive events in the same direction —
extra functionality layered on the native behaviour, exactly the paper's
enrichment notion.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.proxy.callbacks import ProximityListener
from repro.core.proxy.datatypes import Location
from repro.errors import ConfigurationError


class DebouncedProximityListener(ProximityListener):
    """Forwards enter/exit transitions only after K confirmations.

    The first event (establishing the initial state) always forwards
    immediately; afterwards, a direction change must repeat
    ``confirmations`` times in a row before it reaches the inner listener.
    Because the underlying proxies only deliver *transitions*, repeated
    same-direction events are themselves evidence of flapping; a debounce
    count of 1 forwards everything (no debouncing).
    """

    def __init__(self, inner: ProximityListener, confirmations: int = 2) -> None:
        if confirmations < 1:
            raise ConfigurationError("confirmations must be >= 1")
        self._inner = inner
        self._confirmations = confirmations
        self._confirmed_state: Optional[bool] = None
        self._candidate_state: Optional[bool] = None
        self._candidate_count = 0
        #: Raw events seen, for diagnostics: (entering, forwarded).
        self.history: List[tuple] = []

    @property
    def confirmed_state(self) -> Optional[bool]:
        """The state last forwarded to the inner listener."""
        return self._confirmed_state

    @property
    def suppressed_count(self) -> int:
        """Events absorbed by the debounce so far."""
        return sum(1 for __, forwarded in self.history if not forwarded)

    def proximity_event(
        self,
        ref_latitude: float,
        ref_longitude: float,
        ref_altitude: float,
        current_location: Location,
        entering: bool,
    ) -> None:
        forward = False
        if self._confirmed_state is None:
            # Initial state: always forward (the app needs a baseline).
            self._confirmed_state = entering
            forward = True
        elif entering == self._confirmed_state:
            # Re-assertion of the confirmed state: resets any candidate.
            self._candidate_state = None
            self._candidate_count = 0
        else:
            if self._candidate_state == entering:
                self._candidate_count += 1
            else:
                self._candidate_state = entering
                self._candidate_count = 1
            if self._candidate_count >= self._confirmations:
                self._confirmed_state = entering
                self._candidate_state = None
                self._candidate_count = 0
                forward = True
        self.history.append((entering, forward))
        if forward:
            self._inner.proximity_event(
                ref_latitude, ref_longitude, ref_altitude, current_location, entering
            )
