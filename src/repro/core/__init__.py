"""MobiVine core: the paper's contribution.

``repro.core.descriptor``
    The three-plane M-Proxy descriptor model, its five XML schemas, and
    the proxy registry.
``repro.core.proxy``
    The M-Proxy runtime: uniform datatypes, property mechanism, exception
    mapping.
``repro.core.proxies``
    Concrete proxies (Location, SMS, Call, HTTP) with one binding per
    platform.
``repro.core.plugin``
    The M-Plugin: toolkit integration, configuration dialogs, code
    generation, packaging extensions.
``repro.core.enrichment``
    Value-added layers on top of proxies (unit conversion, retry
    coordination, security policy).
"""
