"""Resilience policies and their per-proxy execution runtime.

A :class:`ResiliencePolicy` is immutable configuration; a
:class:`ResilienceRuntime` is the stateful engine one proxy instance
carries (attached by the factory).  ``MProxy._invoke`` routes every
guarded operation through :meth:`ResilienceRuntime.execute`, which
layers — in order — circuit breaking, invocation, uniform exception
mapping, elapsed-virtual-time timeout, classified retry with backoff,
and graceful-degradation fallbacks.

Determinism contract: retry jitter comes from one RNG per runtime,
seeded from ``policy.seed`` and the runtime's label; all delays advance
the device's virtual clock (never wall time).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Union

from repro.core.descriptor.model import BindingPlane
from repro.core.proxy.exceptions import map_platform_exception
from repro.core.resilience.backoff import BackoffSchedule
from repro.core.resilience.breaker import BreakerConfig, CircuitBreaker
from repro.core.resilience.fallbacks import (
    LAST_RESULT,
    UNHANDLED,
    RedeliveryConfig,
)
from repro.errors import (
    ConfigurationError,
    ProxyCircuitOpenError,
    ProxyError,
    ProxyTimeoutError,
)
from repro.obs import MetricsRegistry, NOOP_TRACER, Observability
from repro.util.clock import Scheduler
from repro.util.idempotency import (
    chain_context,
    current_chain,
    next_chain_sequence,
)

#: A fallback is either the LAST_RESULT sentinel or ``f(error) -> value``
#: (returning ``UNHANDLED`` to decline).
Fallback = Union[str, Callable[[ProxyError], Any]]

_NO_FALLBACK = object()


@dataclass(frozen=True)
class ResiliencePolicy:
    """Per-binding resilience configuration.

    The default policy is *passthrough-safe*: one attempt, no timeout,
    no breaker, fallbacks disabled — byte-for-byte the behaviour of a
    bare ``_guard``, plus counters.  Chaos profiles opt into the heavier
    machinery via :func:`chaos_policy`.
    """

    max_attempts: int = 1
    backoff: BackoffSchedule = field(default_factory=BackoffSchedule)
    timeout_ms: Optional[float] = None
    breaker: Optional[BreakerConfig] = None
    fallbacks_enabled: bool = False
    redelivery: Optional[RedeliveryConfig] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.timeout_ms is not None and self.timeout_ms <= 0:
            raise ConfigurationError("timeout_ms must be positive when given")


def chaos_policy(interface: str, *, seed: int = 0) -> ResiliencePolicy:
    """The standard hardened profile chaos scenarios attach per proxy.

    Bounded retries with exponential backoff + jitter, a per-operation
    breaker, and interface-appropriate fallbacks (SMS gets a redelivery
    queue; Location serves last-known via its call sites' LAST_RESULT).
    """
    return ResiliencePolicy(
        max_attempts=4,
        backoff=BackoffSchedule(
            initial_delay_ms=200.0, multiplier=2.0, max_delay_ms=5_000.0, jitter=0.25
        ),
        timeout_ms=30_000.0,
        breaker=BreakerConfig(
            failure_threshold=5, reset_timeout_ms=30_000.0, half_open_successes=1
        ),
        fallbacks_enabled=True,
        redelivery=RedeliveryConfig() if interface == "Sms" else None,
        seed=seed,
    )


#: The counter fields every runtime tracks, in report order.
STAT_FIELDS = (
    "attempts",
    "successes",
    "failures",
    "retries",
    "timeouts",
    "circuit_rejections",
    "fallbacks_served",
)


class ResilienceStats:
    """Counters one runtime accumulates (exposed via analysis.metrics).

    Since the observability plane landed these are a *view* over
    ``resilience.<field>{runtime=<label>}`` series in a
    :class:`~repro.obs.MetricsRegistry` — the same numbers appear in
    registry snapshots, in :func:`~repro.obs.report.resilience_report`
    and on this object's attributes.  A stats object created without a
    registry (unit tests, hand-built runtimes) gets a private one.
    """

    __slots__ = ("_counters",)

    def __init__(
        self, registry: Optional[MetricsRegistry] = None, label: str = "runtime"
    ) -> None:
        registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            field: registry.counter(f"resilience.{field}", runtime=label)
            for field in STAT_FIELDS
        }

    def inc(self, field: str, amount: int = 1) -> None:
        self._counters[field].inc(amount)

    def __getattr__(self, name: str) -> int:
        try:
            return self._counters[name].value
        except KeyError:
            raise AttributeError(name) from None

    def as_dict(self) -> Dict[str, int]:
        return {field: self._counters[field].value for field in STAT_FIELDS}


class ResilienceRuntime:
    """The stateful engine attached to one proxy instance."""

    def __init__(
        self,
        policy: ResiliencePolicy,
        scheduler: Scheduler,
        *,
        label: str = "proxy",
        observability: Optional[Observability] = None,
    ) -> None:
        self.policy = policy
        self._scheduler = scheduler
        self._clock = scheduler.clock
        self.label = label
        self._obs = observability
        if observability is not None:
            self._metrics = observability.metrics
            self._tracer = observability.tracer
        else:
            self._metrics = MetricsRegistry()
            self._tracer = NOOP_TRACER
        self.stats = ResilienceStats(self._metrics, label)
        self.breakers: Dict[str, CircuitBreaker] = {}
        self._last_results: Dict[str, Any] = {}
        self._jitter_rng = random.Random(f"{policy.seed}:{label}")
        # Per-instance chain ordinal: unlike the process-global chain
        # sequence (unique across runtimes, but not reproducible between
        # two same-seed runs in one interpreter), this resets with the
        # runtime, so the chain *tag* it mints is safe to stamp on spans.
        self._chain_seq = 0

    # -- introspection --------------------------------------------------------

    def breaker_for(self, operation: str) -> Optional[CircuitBreaker]:
        if self.policy.breaker is None:
            return None
        breaker = self.breakers.get(operation)
        if breaker is None:
            breaker = CircuitBreaker(
                self.policy.breaker,
                self._clock,
                on_transition=self._breaker_observer(operation),
            )
            self.breakers[operation] = breaker
        return breaker

    def _breaker_observer(self, operation: str):
        """Mirror breaker transitions as span events and metrics."""

        def observe(t_ms: float, frm, to) -> None:
            self._metrics.counter(
                "resilience.breaker_transitions",
                runtime=self.label,
                operation=operation,
                to=to.value,
            ).inc()
            self._tracer.event(
                "breaker.transition",
                operation=operation,
                from_state=frm.value,
                to_state=to.value,
            )
            if (
                to.value == "open"
                and self._obs is not None
                and self._obs.flight is not None
            ):
                self._obs.flight.trigger(
                    "breaker.open",
                    operation=operation,
                    runtime=self.label,
                    from_state=frm.value,
                )

        return observe

    def breaker_transitions(self) -> list:
        """Every breaker transition: (operation, t_ms, from, to)."""
        out = []
        for operation, breaker in self.breakers.items():
            for t_ms, frm, to in breaker.transitions:
                out.append((operation, t_ms, frm, to))
        out.sort(key=lambda item: item[1])
        return out

    def last_result(self, operation: str) -> Any:
        return self._last_results.get(operation)

    # -- execution ------------------------------------------------------------

    def execute(
        self,
        binding: BindingPlane,
        operation: str,
        thunk: Callable[[], Any],
        *,
        fallback: Optional[Fallback] = None,
    ) -> Any:
        """Run ``thunk`` under this runtime's policy.

        Raises only uniform :class:`ProxyError` subclasses; on exhausted
        transient retries an enabled fallback may absorb the failure.
        With tracing enabled the whole execution is one
        ``resilience:<operation>`` span, each attempt a child
        ``binding:<operation>`` span, and every policy decision (retry,
        timeout, rejection, fallback, breaker transition) a span event.

        Every execution also opens an **attempt chain** (see
        :mod:`repro.util.idempotency`): one idempotency key shared by
        all retries of this logical invocation, consulted by substrate
        write sites so a retried-but-already-applied write (``ack_lost``
        faults) is suppressed rather than duplicated.  When an outer
        runtime's chain is already open (WebView JS over Android) the
        inner execution rides it instead of minting a new key.
        """
        if current_chain() is None:
            key = f"{self.label}:{operation}:{next_chain_sequence()}"
            self._chain_seq += 1
            tag = f"{self.label}:{operation}#{self._chain_seq}"
        else:
            key = None  # riding the outer runtime's chain
            tag = None
        tracer = self._tracer
        with chain_context(key or "", tracer if tracer.enabled else None, tag):
            if not tracer.enabled:
                return self._execute(binding, operation, thunk, fallback)
            with tracer.span(
                f"resilience:{operation}",
                runtime=self.label,
                max_attempts=self.policy.max_attempts,
            ):
                return self._execute(binding, operation, thunk, fallback)

    def _run_attempt(
        self, operation: str, thunk: Callable[[], Any], attempt: int
    ) -> Any:
        tracer = self._tracer
        if not tracer.enabled:
            return thunk()
        with tracer.span(f"binding:{operation}", attempt=attempt):
            return thunk()

    def _execute(
        self,
        binding: BindingPlane,
        operation: str,
        thunk: Callable[[], Any],
        fallback: Optional[Fallback],
    ) -> Any:
        breaker = self.breaker_for(operation)
        if breaker is not None and not breaker.allow():
            self.stats.inc("circuit_rejections")
            self._tracer.event("circuit.rejected", operation=operation)
            rejection = ProxyCircuitOpenError(
                f"{operation} rejected: circuit open for {self.label}"
            )
            served = self._try_fallback(operation, fallback, rejection)
            if served is not _NO_FALLBACK:
                return served
            raise rejection

        policy = self.policy
        retry_index = 0
        while True:
            self.stats.inc("attempts")
            started_ms = self._clock.now_ms
            error: Optional[ProxyError] = None
            try:
                result = self._run_attempt(operation, thunk, retry_index + 1)
            except ProxyError as exc:
                error = exc
            except Exception as exc:
                error = map_platform_exception(binding, exc, operation)
            else:
                elapsed = self._clock.now_ms - started_ms
                if policy.timeout_ms is not None and elapsed > policy.timeout_ms:
                    self.stats.inc("timeouts")
                    self._tracer.event(
                        "timeout", operation=operation, elapsed_ms=elapsed
                    )
                    error = ProxyTimeoutError(
                        f"{operation} took {elapsed:.0f}ms of virtual time "
                        f"(budget {policy.timeout_ms:.0f}ms)"
                    )
                else:
                    self.stats.inc("successes")
                    if breaker is not None:
                        breaker.record_success()
                    self._last_results[operation] = result
                    return result

            self.stats.inc("failures")
            if breaker is not None:
                breaker.record_failure(transient=error.transient)
            attempts_left = policy.max_attempts - (retry_index + 1)
            may_retry = (
                error.transient
                and attempts_left > 0
                and (breaker is None or breaker.allow())
            )
            if may_retry:
                self.stats.inc("retries")
                delay = policy.backoff.delay_ms(retry_index, self._jitter_rng)
                # Admission throttles (1013) say exactly when the token
                # bucket can cover a retry; backing off for less would
                # guarantee another rejection, so the hint is a floor.
                retry_after = getattr(error, "retry_after_ms", None)
                if retry_after is not None and retry_after > delay:
                    delay = float(retry_after)
                    self._tracer.event(
                        "retry.after_hint",
                        operation=operation,
                        retry_after_ms=delay,
                    )
                self._tracer.event(
                    "retry",
                    operation=operation,
                    attempt=retry_index + 2,
                    delay_ms=delay,
                )
                if delay > 0:
                    self._clock.advance(delay)
                retry_index += 1
                continue
            served = self._try_fallback(operation, fallback, error)
            if served is not _NO_FALLBACK:
                return served
            raise error

    def _try_fallback(
        self, operation: str, fallback: Optional[Fallback], error: ProxyError
    ) -> Any:
        if not self.policy.fallbacks_enabled or fallback is None:
            return _NO_FALLBACK
        if fallback == LAST_RESULT:
            if operation not in self._last_results:
                return _NO_FALLBACK
            self.stats.inc("fallbacks_served")
            self._tracer.event(
                "fallback.served", operation=operation, kind="last_result"
            )
            return self._last_results[operation]
        value = fallback(error)
        if value is UNHANDLED:
            return _NO_FALLBACK
        self.stats.inc("fallbacks_served")
        self._tracer.event("fallback.served", operation=operation, kind="callable")
        return value
