"""Graceful-degradation helpers: what to do when retries are exhausted.

Fallbacks are per-call-site hooks the bindings pass to ``MProxy._invoke``:

* :data:`LAST_RESULT` — serve the operation's last successful result
  (e.g. last-known location while GPS is dark);
* a callable ``fallback(error) -> value`` — compute a degraded value;
  returning :data:`UNHANDLED` declines, letting the error propagate;
* :class:`SmsRedeliveryQueue` — the SMS-specific fallback target: queue
  the message and re-attempt delivery on the virtual clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import ConfigurationError, ProxyError
from repro.util.clock import Scheduler

#: Sentinel fallback: serve the last successful result of the operation.
LAST_RESULT = "last-result"

#: Sentinel a callable fallback returns to decline handling the error.
UNHANDLED = object()


@dataclass(frozen=True)
class RedeliveryConfig:
    """Tuning for :class:`SmsRedeliveryQueue`."""

    retry_delay_ms: float = 5_000.0
    max_attempts: int = 3

    def __post_init__(self) -> None:
        if self.retry_delay_ms < 0:
            raise ConfigurationError("retry_delay_ms cannot be negative")
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")


@dataclass
class QueuedSms:
    """One message parked for redelivery."""

    queue_id: str
    destination: str
    text: str
    attempt: int = 1


class SmsRedeliveryQueue:
    """Store-and-retry queue for SMS sends that failed transiently.

    The proxy's fallback enqueues here instead of raising; the queue
    re-drives the proxy's ``send_text_message`` after ``retry_delay_ms``
    of virtual time, up to ``max_attempts`` tries per message.  While a
    queued attempt is in flight (``in_flight``) the proxy fallback
    declines, so a failing redelivery is re-queued exactly once by the
    queue itself rather than recursively by the fallback.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        send: Callable[[str, str], object],
        config: Optional[RedeliveryConfig] = None,
    ) -> None:
        self._scheduler = scheduler
        self._send = send
        self._config = config or RedeliveryConfig()
        self._counter = 0
        self.in_flight = False
        self.pending: List[QueuedSms] = []
        self.delivered: List[QueuedSms] = []
        self.abandoned: List[QueuedSms] = []

    @property
    def config(self) -> RedeliveryConfig:
        return self._config

    def enqueue(self, destination: str, text: str, *, attempt: int = 1) -> str:
        """Park a message and schedule its redelivery attempt."""
        self._counter += 1
        entry = QueuedSms(
            queue_id=f"queued-sms-{self._counter}",
            destination=destination,
            text=text,
            attempt=attempt,
        )
        self.pending.append(entry)
        self._scheduler.call_later(
            self._config.retry_delay_ms,
            lambda: self._attempt(entry),
            name=f"sms-redelivery-{entry.queue_id}",
        )
        return entry.queue_id

    def _attempt(self, entry: QueuedSms) -> None:
        if entry not in self.pending:  # already resolved/cancelled
            return
        self.pending.remove(entry)
        self.in_flight = True
        try:
            self._send(entry.destination, entry.text)
        except ProxyError as error:
            if error.transient and entry.attempt < self._config.max_attempts:
                self.enqueue(
                    entry.destination, entry.text, attempt=entry.attempt + 1
                )
            else:
                self.abandoned.append(entry)
        else:
            self.delivered.append(entry)
        finally:
            self.in_flight = False

    def fallback_for(self, destination: str, text: str):
        """A ``_invoke``-compatible fallback that queues this message."""

        def fallback(error: ProxyError):
            if not error.transient or self.in_flight:
                return UNHANDLED
            return self.enqueue(destination, text)

        return fallback
