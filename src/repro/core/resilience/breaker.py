"""Circuit breaker on the virtual clock.

Standard closed/open/half-open state machine, with two deliberate
middleware choices:

* only **transient** failures count toward opening (a permission error
  repeated in a loop must not trip the breaker — it would mask a
  permanent misconfiguration as an availability problem);
* all timing (reset timeout, transition stamps) uses the device's
  virtual clock, so breaker behaviour is reproducible and testable
  without wall-clock sleeps.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.util.clock import SimulatedClock


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning knobs for one breaker.

    ``failure_threshold`` consecutive transient failures open the
    breaker; after ``reset_timeout_ms`` of virtual time it half-opens
    and admits probes; ``half_open_successes`` consecutive probe
    successes close it again.
    """

    failure_threshold: int = 5
    reset_timeout_ms: float = 30_000.0
    half_open_successes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if self.reset_timeout_ms < 0:
            raise ConfigurationError("reset_timeout_ms cannot be negative")
        if self.half_open_successes < 1:
            raise ConfigurationError("half_open_successes must be >= 1")


class CircuitBreaker:
    """One breaker instance (the runtime keeps one per proxy operation).

    ``on_transition`` is an optional ``(t_ms, from, to)`` callback the
    observability plane uses to mirror every state change as a span
    event and a metric — the transition list itself remains the source
    of truth for the chaos suite.
    """

    def __init__(
        self,
        config: BreakerConfig,
        clock: SimulatedClock,
        *,
        on_transition: Optional[
            Callable[[float, BreakerState, BreakerState], None]
        ] = None,
    ) -> None:
        self._config = config
        self._clock = clock
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._half_open_successes = 0
        self._opened_at_ms: float = 0.0
        self._on_transition = on_transition
        #: (virtual time, from-state, to-state) transition history.
        self.transitions: List[Tuple[float, BreakerState, BreakerState]] = []

    @property
    def config(self) -> BreakerConfig:
        return self._config

    @property
    def state(self) -> BreakerState:
        self._maybe_half_open()
        return self._state

    def _transition(self, to: BreakerState) -> None:
        if to is self._state:
            return
        frm = self._state
        self.transitions.append((self._clock.now_ms, frm, to))
        self._state = to
        if self._on_transition is not None:
            self._on_transition(self._clock.now_ms, frm, to)

    def _maybe_half_open(self) -> None:
        if (
            self._state is BreakerState.OPEN
            and self._clock.now_ms >= self._opened_at_ms + self._config.reset_timeout_ms
        ):
            self._half_open_successes = 0
            self._transition(BreakerState.HALF_OPEN)

    def allow(self) -> bool:
        """Whether a call may proceed right now."""
        self._maybe_half_open()
        return self._state is not BreakerState.OPEN

    def record_success(self) -> None:
        self._maybe_half_open()
        self._consecutive_failures = 0
        if self._state is BreakerState.HALF_OPEN:
            self._half_open_successes += 1
            if self._half_open_successes >= self._config.half_open_successes:
                self._transition(BreakerState.CLOSED)

    def record_failure(self, *, transient: bool) -> None:
        """Record a failed call.  Permanent failures reset the transient
        streak (the operation is reaching the platform fine) but never
        open the breaker."""
        self._maybe_half_open()
        if not transient:
            self._consecutive_failures = 0
            return
        if self._state is BreakerState.HALF_OPEN:
            self._open()
            return
        self._consecutive_failures += 1
        if (
            self._state is BreakerState.CLOSED
            and self._consecutive_failures >= self._config.failure_threshold
        ):
            self._open()

    def _open(self) -> None:
        self._consecutive_failures = 0
        self._opened_at_ms = self._clock.now_ms
        self._transition(BreakerState.OPEN)
