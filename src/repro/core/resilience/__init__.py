"""Cross-proxy resilience: retry, timeout, circuit breaking, fallback.

The paper's Call proxy retry coordinator showed one interface-specific
enrichment; this package generalizes the idea into middleware-wide
machinery every binding gets through ``MProxy._invoke``:

* :class:`~repro.core.resilience.backoff.BackoffSchedule` — exponential
  backoff with deterministic jitter, all in virtual milliseconds;
* :class:`~repro.core.resilience.breaker.CircuitBreaker` — per-operation
  closed/open/half-open breaker on the virtual clock;
* :class:`~repro.core.resilience.policy.ResiliencePolicy` /
  :class:`~repro.core.resilience.policy.ResilienceRuntime` — the
  per-proxy execution engine combining the above with timeouts and
  graceful-degradation fallbacks;
* :class:`~repro.core.resilience.fallbacks.SmsRedeliveryQueue` — the
  store-and-retry fallback for SMS when the carrier is unreachable.
"""

from repro.core.resilience.backoff import BackoffSchedule
from repro.core.resilience.breaker import BreakerConfig, BreakerState, CircuitBreaker
from repro.core.resilience.fallbacks import (
    LAST_RESULT,
    UNHANDLED,
    RedeliveryConfig,
    SmsRedeliveryQueue,
)
from repro.core.resilience.policy import (
    ResiliencePolicy,
    ResilienceRuntime,
    ResilienceStats,
    chaos_policy,
)

__all__ = [
    "BackoffSchedule",
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "LAST_RESULT",
    "RedeliveryConfig",
    "ResiliencePolicy",
    "ResilienceRuntime",
    "ResilienceStats",
    "SmsRedeliveryQueue",
    "UNHANDLED",
    "chaos_policy",
]
