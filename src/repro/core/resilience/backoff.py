"""Backoff schedules: how long to wait before retry *n*.

Pure arithmetic over virtual milliseconds — no sleeping, no wall clock.
Jitter is drawn from an RNG the *caller* provides (the resilience
runtime seeds one per proxy; the determinism contract lives there).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BackoffSchedule:
    """Exponential backoff with a cap and optional multiplicative jitter.

    ``delay_ms(0)`` is the wait before the first retry (i.e. after the
    first failed attempt).  With the defaults the sequence is
    100, 200, 400, ... capped at 10 s.  ``multiplier=1.0`` gives the
    fixed-delay behaviour of the paper's Call retry coordinator.
    """

    initial_delay_ms: float = 100.0
    multiplier: float = 2.0
    max_delay_ms: float = 10_000.0
    jitter: float = 0.0  # fraction of the delay added at most

    def __post_init__(self) -> None:
        if self.initial_delay_ms < 0:
            raise ConfigurationError("initial_delay_ms cannot be negative")
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1")
        if self.max_delay_ms < self.initial_delay_ms:
            raise ConfigurationError("max_delay_ms must be >= initial_delay_ms")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError("jitter must be in [0, 1]")

    @classmethod
    def fixed(cls, delay_ms: float) -> "BackoffSchedule":
        """A constant-delay schedule (the legacy Call retry behaviour)."""
        return cls(
            initial_delay_ms=delay_ms,
            multiplier=1.0,
            max_delay_ms=max(delay_ms, 0.0),
            jitter=0.0,
        )

    def delay_ms(self, retry_index: int, rng: Optional[random.Random] = None) -> float:
        """Delay before the ``retry_index``-th retry (0-based)."""
        if retry_index < 0:
            raise ConfigurationError("retry_index cannot be negative")
        base = min(
            self.initial_delay_ms * (self.multiplier ** retry_index),
            self.max_delay_ms,
        )
        if self.jitter > 0.0 and rng is not None:
            base *= 1.0 + self.jitter * rng.random()
        return base

    def schedule(self, retries: int) -> list:
        """The jitter-free delay sequence for ``retries`` retries."""
        return [self.delay_ms(i) for i in range(retries)]
