"""S60 binding of the HTTP proxy (GCF streams underneath)."""

from __future__ import annotations

from urllib.parse import urlparse

from repro.core.descriptor.model import ProxyDescriptor
from repro.core.proxies.factory import register_implementation
from repro.core.proxies.http.api import (
    HttpProxy,
    UniformHttpCallback,
    as_response_listener,
    degraded_response,
)
from repro.core.proxies.http.descriptor import S60_IMPL
from repro.core.proxy.datatypes import HttpResult
from repro.device.network import HttpRequest
from repro.errors import ProxyInvalidArgumentError
from repro.platforms.s60.connector import HttpConnection, PERMISSION_HTTP
from repro.platforms.s60.exceptions import SecurityException
from repro.platforms.s60.platform import S60Platform


class S60HttpProxyImpl(HttpProxy):
    """``com.ibm.S60.http.HttpProxy``."""

    def __init__(self, descriptor: ProxyDescriptor, platform: S60Platform) -> None:
        super().__init__(descriptor, "s60")
        self._platform = platform

    def get(self, url: str) -> HttpResult:
        self._validate_arguments("get", url=url)
        self._record("get", url=url)

        def attempt() -> HttpResult:
            connection = self._platform.connector.open(url)
            try:
                connection.set_request_method(HttpConnection.GET)
                connection.set_request_property(
                    "User-Agent", self.get_property("userAgent")
                )
                self._trace_event("binding.http_request", method="GET", url=url)
                status = connection.get_response_code()
                body = connection.open_input_stream().read_fully()
            finally:
                connection.close()
            return HttpResult(status=status, body=body)

        return self._invoke("get", attempt, fallback=degraded_response)

    def post(self, url: str, body: str) -> HttpResult:
        self._validate_arguments("post", url=url, body=body)
        self._record("post", url=url, length=len(body))

        def attempt() -> HttpResult:
            connection = self._platform.connector.open(url)
            try:
                connection.set_request_method(HttpConnection.POST)
                connection.set_request_property(
                    "User-Agent", self.get_property("userAgent")
                )
                connection.set_request_property(
                    "Content-Type", self.get_property("contentType")
                )
                connection.write_body(body)
                self._trace_event("binding.http_request", method="POST", url=url)
                status = connection.get_response_code()
                response_body = connection.open_input_stream().read_fully()
            finally:
                connection.close()
            return HttpResult(status=status, body=response_body)

        return self._invoke("post", attempt, fallback=degraded_response)

    def get_async(self, url: str, response_listener: UniformHttpCallback) -> None:
        """Non-blocking fetch: models the worker thread a MIDlet spawns
        around the blocking GCF connection."""
        self._validate_arguments("getAsync", url=url)
        self._record("getAsync", url=url)
        listener = as_response_listener(response_listener)
        parsed = urlparse(url)
        if parsed.scheme != "http" or not parsed.netloc:
            raise ProxyInvalidArgumentError(f"malformed http url {url!r}")
        with self._guard("getAsync"):
            suite = self._platform.connector._suite_name
            if suite is not None and not self._platform.suite_has_permission(
                suite, PERMISSION_HTTP
            ):
                raise SecurityException(f"suite {suite!r} lacks {PERMISSION_HTTP}")
            self._platform.charge_native("s60.http")
            path = parsed.path or "/"
            if parsed.query:
                path = f"{path}?{parsed.query}"
            self._platform.device.network.request_async(
                HttpRequest(
                    method="GET",
                    host=parsed.netloc,
                    path=path,
                    headers=(("User-Agent", self.get_property("userAgent")),),
                ),
                on_response=lambda raw: listener.on_response(
                    HttpResult(status=raw.status, body=raw.body, headers=raw.headers)
                ),
                on_error=lambda exc: listener.on_error(str(exc)),
            )


register_implementation(S60_IMPL, S60HttpProxyImpl)
