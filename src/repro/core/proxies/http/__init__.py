"""The HTTP M-Proxy: uniform request/response over three native stacks."""

from repro.core.proxies.http.api import HttpProxy
from repro.core.proxies.http.descriptor import build_http_descriptor

__all__ = ["HttpProxy", "build_http_descriptor"]
