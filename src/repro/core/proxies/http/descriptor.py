"""Three-plane descriptor for the HTTP proxy."""

from __future__ import annotations

from repro.core.descriptor.model import (
    BindingPlane,
    CallbackSpec,
    ExceptionSpec,
    MethodSpec,
    ParameterSpec,
    PropertySpec,
    ProxyDescriptor,
    ReturnSpec,
    SemanticPlane,
    SyntacticPlane,
    TypeBinding,
)

ANDROID_IMPL = "com.ibm.proxies.android.http.HttpProxyImpl"
S60_IMPL = "com.ibm.S60.http.HttpProxy"
WEBVIEW_IMPL = "com.ibm.proxies.webview.http.HttpProxyJs"


def build_http_descriptor() -> ProxyDescriptor:
    """Construct the full HTTP descriptor."""
    semantic = SemanticPlane(
        interface="Http",
        description="Synchronous HTTP interaction with a uniform result value",
        methods=(
            MethodSpec(
                name="get",
                description="Fetch a URL",
                parameters=(
                    ParameterSpec("url", "web.url", 1, "absolute http URL"),
                ),
                returns=ReturnSpec("object.http_result", "status + body"),
            ),
            MethodSpec(
                name="post",
                description="Post a body to a URL",
                parameters=(
                    ParameterSpec("url", "web.url", 1, "absolute http URL"),
                    ParameterSpec("body", "web.body", 2, "request entity"),
                ),
                returns=ReturnSpec("object.http_result", "status + body"),
            ),
            MethodSpec(
                name="getAsync",
                description="Fetch a URL without blocking; the listener "
                "receives the result or the transport error",
                parameters=(
                    ParameterSpec("url", "web.url", 1, "absolute http URL"),
                    ParameterSpec(
                        "responseListener",
                        "callback.http_response",
                        2,
                        "uniform response/error callback",
                    ),
                ),
                callback=CallbackSpec(
                    parameter_name="responseListener",
                    event_name="httpResponse",
                    event_parameters=(
                        ParameterSpec("result", "object.http_result", 1, "the response", optional=True),
                        ParameterSpec("error", "text.message", 2, "transport failure reason", optional=True),
                    ),
                ),
            ),
        ),
    )

    java = SyntacticPlane(
        language="java",
        callback_style="object",
        method_types={
            "get": (TypeBinding("url", "java.lang.String"),),
            "post": (
                TypeBinding("url", "java.lang.String"),
                TypeBinding("body", "java.lang.String"),
            ),
            "getAsync": (
                TypeBinding("url", "java.lang.String"),
                TypeBinding("responseListener", "com.ibm.telecom.proxy.HttpResponseListener"),
            ),
        },
        return_types={
            "get": "com.ibm.telecom.proxy.HttpResult",
            "post": "com.ibm.telecom.proxy.HttpResult",
            "getAsync": "void",
        },
    )

    javascript = SyntacticPlane(
        language="javascript",
        callback_style="function",
        method_types={
            "get": (TypeBinding("url", "string"),),
            "post": (
                TypeBinding("url", "string"),
                TypeBinding("body", "string"),
            ),
            "getAsync": (
                TypeBinding("url", "string"),
                TypeBinding("responseListener", "function"),
            ),
        },
        return_types={"get": "object", "post": "object", "getAsync": "void"},
    )

    _common_properties = (
        PropertySpec(
            "userAgent",
            description="User-Agent header sent with every request",
            type_name="string",
            default="MobiVine/1.0",
        ),
        PropertySpec(
            "contentType",
            description="Content-Type header for POST bodies",
            type_name="string",
            default="application/x-www-form-urlencoded",
        ),
    )

    android = BindingPlane(
        platform="android",
        language="java",
        implementation_class=ANDROID_IMPL,
        properties=_common_properties
        + (
            PropertySpec(
                "context",
                description="Application context (INTERNET permission check)",
                type_name="object",
                required=True,
            ),
        ),
        exceptions=(
            ExceptionSpec(
                "java.io.IOException",
                maps_to="ProxyPlatformError",
                error_code=1005,
                description="transport failure from the Apache client",
            ),
            ExceptionSpec(
                "java.lang.SecurityException",
                maps_to="ProxyPermissionError",
                error_code=1001,
            ),
            ExceptionSpec(
                "java.lang.IllegalArgumentException",
                maps_to="ProxyInvalidArgumentError",
                error_code=1003,
            ),
        ),
        notes="Built on org.apache.http request/response objects.",
    )

    s60 = BindingPlane(
        platform="s60",
        language="java",
        implementation_class=S60_IMPL,
        properties=_common_properties,
        exceptions=(
            ExceptionSpec(
                "java.io.IOException",
                maps_to="ProxyPlatformError",
                error_code=1005,
                description="GCF transport failure",
            ),
            ExceptionSpec(
                "javax.microedition.io.ConnectionNotFoundException",
                maps_to="ProxyPlatformError",
                error_code=1005,
            ),
            ExceptionSpec(
                "java.lang.SecurityException",
                maps_to="ProxyPermissionError",
                error_code=1001,
            ),
            ExceptionSpec(
                "java.lang.IllegalArgumentException",
                maps_to="ProxyInvalidArgumentError",
                error_code=1003,
            ),
        ),
        notes="Built on Connector.open / HttpConnection streams.",
    )

    webview = BindingPlane(
        platform="webview",
        language="javascript",
        implementation_class=WEBVIEW_IMPL,
        properties=_common_properties,
        exceptions=(
            ExceptionSpec(
                "java.lang.SecurityException",
                maps_to="ProxyPermissionError",
                error_code=1001,
            ),
        ),
        notes="Synchronous bridge call; results come back as JSON envelopes.",
    )

    descriptor = ProxyDescriptor(semantic=semantic)
    descriptor.add_syntactic(java)
    descriptor.add_syntactic(javascript)
    descriptor.add_binding(android)
    descriptor.add_binding(s60)
    descriptor.add_binding(webview)
    return descriptor
