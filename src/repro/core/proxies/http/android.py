"""Android binding of the HTTP proxy (Apache-client style underneath)."""

from __future__ import annotations

from repro.core.descriptor.model import ProxyDescriptor
from repro.core.proxies.factory import register_implementation
from repro.core.proxies.http.api import (
    HttpProxy,
    UniformHttpCallback,
    as_response_listener,
    degraded_response,
)
from repro.core.proxies.http.descriptor import ANDROID_IMPL
from repro.core.proxy.datatypes import HttpResult
from repro.device.network import HttpRequest
from repro.errors import ProxyError
from repro.platforms.android.context import Context
from repro.platforms.android.http import INTERNET, HttpGet, HttpPost
from repro.platforms.android.platform import AndroidPlatform


class AndroidHttpProxyImpl(HttpProxy):
    """``com.ibm.proxies.android.http.HttpProxyImpl``."""

    def __init__(self, descriptor: ProxyDescriptor, platform: AndroidPlatform) -> None:
        super().__init__(descriptor, "android")
        self._platform = platform

    def _context(self, for_what: str) -> Context:
        context = self.properties.require("context", for_what)
        if not isinstance(context, Context):
            raise ProxyError(
                f"property 'context' must be an Android Context, got "
                f"{type(context).__name__}"
            )
        return context

    def get(self, url: str) -> HttpResult:
        self._validate_arguments("get", url=url)
        self._record("get", url=url)
        context = self._context("get")

        def attempt() -> HttpResult:
            client = self._platform.http_client(context)
            request = HttpGet(url)
            request.add_header("User-Agent", self.get_property("userAgent"))
            self._trace_event("binding.http_request", method="GET", url=url)
            response = client.execute(request)
            return HttpResult(
                status=response.get_status_line().get_status_code(),
                body=response.get_entity().get_content(),
                headers=response.get_all_headers(),
            )

        return self._invoke("get", attempt, fallback=degraded_response)

    def post(self, url: str, body: str) -> HttpResult:
        self._validate_arguments("post", url=url, body=body)
        self._record("post", url=url, length=len(body))
        context = self._context("post")

        def attempt() -> HttpResult:
            client = self._platform.http_client(context)
            request = HttpPost(url)
            request.add_header("User-Agent", self.get_property("userAgent"))
            request.add_header("Content-Type", self.get_property("contentType"))
            request.set_entity(body)
            self._trace_event("binding.http_request", method="POST", url=url)
            response = client.execute(request)
            return HttpResult(
                status=response.get_status_line().get_status_code(),
                body=response.get_entity().get_content(),
                headers=response.get_all_headers(),
            )

        return self._invoke("post", attempt, fallback=degraded_response)

    def get_async(self, url: str, response_listener: UniformHttpCallback) -> None:
        """Non-blocking fetch: the worker-thread idiom the blocking Apache
        client forces, modelled on the simulated network's async path."""
        self._validate_arguments("getAsync", url=url)
        self._record("getAsync", url=url)
        listener = as_response_listener(response_listener)
        context = self._context("getAsync")
        with self._guard("getAsync"):
            context.enforce_permission(INTERNET, "getAsync")
            request = HttpGet(url)  # validates the URL eagerly
            request.add_header("User-Agent", self.get_property("userAgent"))
            self._platform.charge_native("android.http")
            self._platform.device.network.request_async(
                HttpRequest(
                    method=request.method,
                    host=request.host,
                    path=request.path,
                    headers=request.headers(),
                ),
                on_response=lambda raw: listener.on_response(
                    HttpResult(status=raw.status, body=raw.body, headers=raw.headers)
                ),
                on_error=lambda exc: listener.on_error(str(exc)),
            )


register_implementation(ANDROID_IMPL, AndroidHttpProxyImpl)
