"""WebView binding of the HTTP proxy.

Synchronous results are plain data and cross the bridge directly as JSON
envelopes.  The asynchronous ``getAsync`` path rides the Notification
Table like every other WebView callback — a JS function cannot cross the
bridge, so the Java side posts the response and the JS ``notifHandler``
polls it back.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.core.descriptor.model import ProxyDescriptor
from repro.core.proxies.factory import register_implementation, standard_registry
from repro.core.proxies.http.android import AndroidHttpProxyImpl
from repro.core.proxies.http.api import (
    HttpProxy,
    UniformHttpCallback,
    as_response_listener,
    degraded_response,
)
from repro.core.proxies.http.descriptor import WEBVIEW_IMPL
from repro.core.proxies.webview_common import (
    NotificationHandler,
    WrapperBackend,
    decode_or_raise,
    encode_error,
    encode_ok,
)
from repro.core.proxy.callbacks import HttpResponseListener
from repro.core.proxy.datatypes import HttpResult
from repro.errors import ProxyError
from repro.platforms.android.context import Context
from repro.platforms.webview.platform import WebViewPlatform
from repro.platforms.webview.webview import JsWindow, WebView

FACTORY_JS_NAME = "HttpWrapperFactory"
WRAPPER_JS_NAME = "HttpWrapper"


class HttpWrapperFactory:
    """Java side, step 1."""

    def __init__(self, backend: "HttpWrapperJava") -> None:
        self._backend = backend

    def create_http_wrapper_instance(self) -> int:
        return self._backend.create_instance()


class HttpWrapperJava:
    """Java side, step 2: the ``HttpWrapper`` class behind the bridge."""

    def __init__(self, platform: WebViewPlatform, context: Context) -> None:
        self._platform = platform
        self._context = context
        self._backend = WrapperBackend(platform.notification_table)

    def create_instance(self) -> int:
        proxy = AndroidHttpProxyImpl(
            standard_registry().descriptor("Http"), self._platform.android
        )
        proxy.set_property("context", self._context)
        return self._backend.add_instance(proxy)

    # -- bridge entry points ---------------------------------------------------

    def set_property(self, handle: int, key: str, value_json: str) -> str:
        return self._backend.set_property_json(handle, key, value_json)

    def get(self, handle: int, url: str) -> str:
        try:
            result = self._backend.instance(handle).get(url)
        except ProxyError as exc:
            return encode_error(exc)
        return encode_ok({"status": result.status, "body": result.body})

    def post(self, handle: int, url: str, body: str) -> str:
        try:
            result = self._backend.instance(handle).post(url, body)
        except ProxyError as exc:
            return encode_error(exc)
        return encode_ok({"status": result.status, "body": result.body})

    def get_async(self, handle: int, url: str) -> str:
        """Start an async fetch; results arrive via the notification table."""
        backend = self._backend
        platform = self._platform
        notification_id = backend.notifications.new_id()

        class _TablePostingHttpListener(HttpResponseListener):
            def on_response(self, result: HttpResult) -> None:
                backend.notifications.post(
                    notification_id,
                    "httpResponse",
                    {"status": result.status, "body": result.body},
                    now_ms=platform.clock.now_ms,
                )

            def on_error(self, reason: str) -> None:
                backend.notifications.post(
                    notification_id,
                    "httpResponse",
                    {"error": reason},
                    now_ms=platform.clock.now_ms,
                )

        try:
            backend.instance(handle).get_async(url, _TablePostingHttpListener())
        except ProxyError as exc:
            return encode_error(exc)
        return encode_ok({"notificationId": notification_id})

    def get_notifications(self, notification_id: str) -> str:
        return self._backend.notifications.drain_json(notification_id)


def install_http_wrapper(
    webview: WebView, platform: WebViewPlatform, context: Context
) -> HttpWrapperJava:
    """Inject the Java side into a WebView (the plugin extension's job)."""
    wrapper = HttpWrapperJava(platform, context)
    webview.add_javascript_interface(HttpWrapperFactory(wrapper), FACTORY_JS_NAME)
    webview.add_javascript_interface(wrapper, WRAPPER_JS_NAME)
    return wrapper


class HttpProxyJs(HttpProxy):
    """JS side: ``com.ibm.proxies.webview.http.HttpProxyJs``."""

    def __init__(self, descriptor: ProxyDescriptor, platform: WebViewPlatform) -> None:
        super().__init__(descriptor, "webview")
        window = platform.active_window
        if window is None:
            raise ProxyError(
                "no page is loaded; construct the JS proxy inside a page script"
            )
        self._init_in_window(window)

    @classmethod
    def in_page(cls, window: JsWindow) -> "HttpProxyJs":
        instance = cls.__new__(cls)
        HttpProxy.__init__(instance, standard_registry().descriptor("Http"), "webview")
        instance._init_in_window(window)
        return instance

    def _init_in_window(self, window: JsWindow) -> None:
        self._window = window
        factory = window.bridge_object(FACTORY_JS_NAME)
        self._wrapper = window.bridge_object(WRAPPER_JS_NAME)
        self._swi = factory.create_http_wrapper_instance()

    def set_property(self, key: str, value) -> None:
        super().set_property(key, value)
        decode_or_raise(self._wrapper.set_property(self._swi, key, json.dumps(value)))

    def get(self, url: str) -> HttpResult:
        self._validate_arguments("get", url=url)
        self._record("get", url=url)

        def attempt() -> HttpResult:
            self._trace_event("binding.bridge_call", method="get", url=url)
            payload = decode_or_raise(self._wrapper.get(self._swi, url))
            return HttpResult(status=payload["status"], body=payload["body"])

        return self._invoke("get", attempt, fallback=degraded_response)

    def post(self, url: str, body: str) -> HttpResult:
        self._validate_arguments("post", url=url, body=body)
        self._record("post", url=url, length=len(body))

        def attempt() -> HttpResult:
            self._trace_event("binding.bridge_call", method="post", url=url)
            payload = decode_or_raise(self._wrapper.post(self._swi, url, body))
            return HttpResult(status=payload["status"], body=payload["body"])

        return self._invoke("post", attempt, fallback=degraded_response)

    #: JS polling period for async responses (no binding property; XHR-ish).
    ASYNC_POLL_INTERVAL_MS = 250.0

    def get_async(self, url: str, response_listener: UniformHttpCallback) -> None:
        self._validate_arguments("getAsync", url=url)
        self._record("getAsync", url=url)
        listener = as_response_listener(response_listener)
        payload = decode_or_raise(self._wrapper.get_async(self._swi, url))
        notification_id = payload["notificationId"]
        holder: Dict[str, NotificationHandler] = {}

        def dispatch(notification: Dict) -> None:
            body = notification["payload"]
            if "error" in body:
                listener.on_error(body["error"])
            else:
                listener.on_response(
                    HttpResult(status=body["status"], body=body["body"])
                )
            holder["handler"].stop_polling()  # one-shot

        handler = NotificationHandler(
            self._window,
            self._wrapper,
            notification_id,
            dispatch,
            poll_interval_ms=self.ASYNC_POLL_INTERVAL_MS,
        )
        holder["handler"] = handler
        handler.start_polling()


register_implementation(WEBVIEW_IMPL, HttpProxyJs)
