"""The uniform HTTP proxy API."""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.core.proxy.base import MProxy
from repro.core.proxy.callbacks import HttpResponseListener
from repro.core.proxy.datatypes import HttpResult


class FunctionHttpResponseListener(HttpResponseListener):
    """Adapter for the JavaScript ``function`` callback style.

    The function receives ``(result, error)``: exactly one of them is
    non-``None``.
    """

    def __init__(self, fn: Callable[[Optional[HttpResult], Optional[str]], None]) -> None:
        self._fn = fn

    def on_response(self, result: HttpResult) -> None:
        self._fn(result, None)

    def on_error(self, reason: str) -> None:
        self._fn(None, reason)


UniformHttpCallback = Union[
    HttpResponseListener, Callable[[Optional[HttpResult], Optional[str]], None]
]


def as_response_listener(callback: UniformHttpCallback) -> HttpResponseListener:
    """Normalize object-style and function-style callbacks."""
    if isinstance(callback, HttpResponseListener):
        return callback
    return FunctionHttpResponseListener(callback)


def degraded_response(error: BaseException) -> HttpResult:
    """The graceful-degradation fallback all HTTP bindings share.

    When retries are exhausted the caller receives a synthetic 503 —
    application code already handles non-ok statuses, so degradation
    needs no new code paths above the proxy.
    """
    return HttpResult(
        status=503,
        body=f"resilience: degraded response ({error})",
        headers=(("X-Resilience-Degraded", "true"),),
    )


class HttpProxy(MProxy):
    """Abstract uniform API; platform bindings subclass this."""

    interface = "Http"

    def get(self, url: str) -> HttpResult:
        """Fetch ``url`` synchronously."""
        raise NotImplementedError

    def post(self, url: str, body: str) -> HttpResult:
        """Post ``body`` to ``url`` synchronously.

        The Content-Type comes from the ``contentType`` property.
        """
        raise NotImplementedError

    def get_async(self, url: str, response_listener: UniformHttpCallback) -> None:
        """Fetch ``url`` without blocking.

        Exactly one of the listener's ``on_response`` / ``on_error`` fires
        later.  On the Java-style platforms this models the worker thread
        a blocking HTTP stack forces on applications; on WebView the
        result rides the Notification Table like every other async result.
        """
        raise NotImplementedError
