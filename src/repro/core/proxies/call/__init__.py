"""The Call M-Proxy: uniform voice-call placement.

No S60 binding exists — the paper reports the same gap: "Call proxy could
not be created in this case because the core functionality was not exposed
on the S60 platform."  ``create_proxy("Call", s60_platform)`` therefore
raises :class:`~repro.errors.ProxyUnavailableError`.
"""

from repro.core.proxies.call.api import CallProxy
from repro.core.proxies.call.descriptor import build_call_descriptor

__all__ = ["CallProxy", "build_call_descriptor"]
