"""Three-plane descriptor for the Call proxy (no S60 binding, by design)."""

from __future__ import annotations

from repro.core.descriptor.model import (
    BindingPlane,
    CallbackSpec,
    ExceptionSpec,
    MethodSpec,
    ParameterSpec,
    PropertySpec,
    ProxyDescriptor,
    ReturnSpec,
    SemanticPlane,
    SyntacticPlane,
    TypeBinding,
)

ANDROID_IMPL = "com.ibm.proxies.android.call.CallProxyImpl"
WEBVIEW_IMPL = "com.ibm.proxies.webview.call.CallProxyJs"


def build_call_descriptor() -> ProxyDescriptor:
    """Construct the full Call descriptor."""
    semantic = SemanticPlane(
        interface="Call",
        description="Place voice calls with uniform progress callbacks",
        methods=(
            MethodSpec(
                name="makeACall",
                description="Dial a number",
                parameters=(
                    ParameterSpec("number", "identity.phone_number", 1, "callee number"),
                    ParameterSpec(
                        "callListener",
                        "callback.call_state",
                        2,
                        "ringing/answered/finished callbacks",
                        optional=True,
                    ),
                ),
                returns=ReturnSpec("object.call_handle", "uniform call handle"),
                callback=CallbackSpec(
                    parameter_name="callListener",
                    event_name="callState",
                    event_parameters=(
                        ParameterSpec("event", "text.message", 1, "ringing | answered | finished"),
                        ParameterSpec("callId", "text.message", 2, "handle identifier"),
                        ParameterSpec("outcome", "text.message", 3, "terminal outcome", optional=True),
                    ),
                ),
            ),
            MethodSpec(
                name="endCall",
                description="Hang up an in-progress call",
                parameters=(
                    ParameterSpec("callHandle", "object.call_handle", 1, "handle from makeACall"),
                ),
            ),
        ),
    )

    java = SyntacticPlane(
        language="java",
        callback_style="object",
        method_types={
            "makeACall": (
                TypeBinding("number", "java.lang.String"),
                TypeBinding("callListener", "com.ibm.telecom.proxy.CallStateListener"),
            ),
            "endCall": (
                TypeBinding("callHandle", "com.ibm.telecom.proxy.CallHandle"),
            ),
        },
        return_types={
            "makeACall": "com.ibm.telecom.proxy.CallHandle",
            "endCall": "void",
        },
    )

    javascript = SyntacticPlane(
        language="javascript",
        callback_style="function",
        method_types={
            "makeACall": (
                TypeBinding("number", "string"),
                TypeBinding("callListener", "function"),
            ),
            "endCall": (
                TypeBinding("callHandle", "object"),
            ),
        },
        return_types={"makeACall": "object", "endCall": "void"},
    )

    android = BindingPlane(
        platform="android",
        language="java",
        implementation_class=ANDROID_IMPL,
        properties=(
            PropertySpec(
                "context",
                description="Application context used to obtain the telephony service",
                type_name="object",
                required=True,
            ),
        ),
        exceptions=(
            ExceptionSpec(
                "java.lang.SecurityException",
                maps_to="ProxyPermissionError",
                error_code=1001,
                description="CALL_PHONE missing from the manifest",
            ),
            ExceptionSpec(
                "java.lang.IllegalArgumentException",
                maps_to="ProxyInvalidArgumentError",
                error_code=1003,
            ),
            ExceptionSpec(
                "java.lang.IllegalStateException",
                maps_to="ProxyPlatformError",
                error_code=1005,
                description="voice channel already busy",
            ),
        ),
        notes="Built on the internal android.telephony.IPhone interface, as "
        "in the paper (the public SDK did not expose calling).",
    )

    webview = BindingPlane(
        platform="webview",
        language="javascript",
        implementation_class=WEBVIEW_IMPL,
        properties=(
            PropertySpec(
                "pollInterval",
                description="JS notification-poll period in milliseconds",
                type_name="int",
                default=500,
            ),
        ),
        exceptions=(
            ExceptionSpec(
                "java.lang.SecurityException",
                maps_to="ProxyPermissionError",
                error_code=1001,
            ),
        ),
        notes="Call-state callbacks ride the Notification Table.",
    )

    descriptor = ProxyDescriptor(semantic=semantic)
    descriptor.add_syntactic(java)
    descriptor.add_syntactic(javascript)
    descriptor.add_binding(android)
    descriptor.add_binding(webview)
    # Deliberately no S60 binding: the platform does not expose calling.
    return descriptor
