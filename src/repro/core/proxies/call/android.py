"""Android binding of the Call proxy (over the internal IPhone interface)."""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.descriptor.model import ProxyDescriptor
from repro.core.proxies.call.api import CallProxy, UniformCallCallback, as_call_listener
from repro.core.proxies.call.descriptor import ANDROID_IMPL
from repro.core.proxies.factory import register_implementation
from repro.core.proxy.datatypes import CallHandle, CallOutcome
from repro.device.telephony import CallSession, CallState
from repro.errors import ProxyError
from repro.platforms.android.context import Context
from repro.platforms.android.platform import AndroidPlatform

#: Device-level call states → uniform outcomes.
_OUTCOMES = {
    CallState.ENDED: CallOutcome.COMPLETED,
    CallState.BUSY: CallOutcome.BUSY,
    CallState.UNREACHABLE: CallOutcome.UNREACHABLE,
    CallState.FAILED: CallOutcome.FAILED,
}


class AndroidCallProxyImpl(CallProxy):
    """``com.ibm.proxies.android.call.CallProxyImpl``."""

    def __init__(self, descriptor: ProxyDescriptor, platform: AndroidPlatform) -> None:
        super().__init__(descriptor, "android")
        self._platform = platform
        self._sessions: Dict[str, CallSession] = {}

    def _context(self, for_what: str) -> Context:
        context = self.properties.require("context", for_what)
        if not isinstance(context, Context):
            raise ProxyError(
                f"property 'context' must be an Android Context, got "
                f"{type(context).__name__}"
            )
        return context

    def make_a_call(
        self,
        number: str,
        call_listener: Optional[UniformCallCallback] = None,
    ) -> CallHandle:
        self._validate_arguments("makeACall", number=number)
        self._record("makeACall", number=number)
        listener = as_call_listener(call_listener)
        context = self._context("makeACall")

        def attempt() -> CallHandle:
            phone = context.get_system_service(Context.TELEPHONY_SERVICE)
            handle_holder: Dict[str, CallHandle] = {}

            def on_state(session: CallSession) -> None:
                handle = handle_holder.get("handle")
                if handle is None:
                    return
                if session.state is CallState.RINGING and listener is not None:
                    listener.on_ringing(handle)
                elif session.state is CallState.ACTIVE:
                    handle.answered = True
                    if listener is not None:
                        listener.on_answered(handle)
                elif session.is_terminal:
                    outcome = _OUTCOMES.get(session.state, CallOutcome.FAILED)
                    # A never-answered normal hang-up means nobody picked up.
                    if outcome is CallOutcome.COMPLETED and not handle.answered:
                        outcome = CallOutcome.NO_ANSWER
                    handle.outcome = outcome
                    if listener is not None:
                        listener.on_finished(handle)

            session = phone.call(number, on_state if listener is not None else None)
            self._trace_event("binding.call_session", call_id=session.call_id)
            handle = CallHandle(call_id=session.call_id, number=number)
            handle_holder["handle"] = handle
            self._sessions[handle.call_id] = session
            return handle

        # No fallback: a phone call cannot be gracefully degraded.
        return self._invoke("makeACall", attempt)

    def end_call(self, call_handle: CallHandle) -> None:
        self._record("endCall", call_id=call_handle.call_id)
        session = self._sessions.get(call_handle.call_id)
        if session is None:
            return
        context = self._context("endCall")

        def attempt() -> None:
            phone = context.get_system_service(Context.TELEPHONY_SERVICE)
            phone.end_call(session)

        return self._invoke("endCall", attempt)


register_implementation(ANDROID_IMPL, AndroidCallProxyImpl)
