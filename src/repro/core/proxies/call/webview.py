"""WebView binding of the Call proxy (Notification-Table pattern)."""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.descriptor.model import ProxyDescriptor
from repro.core.proxies.call.android import AndroidCallProxyImpl
from repro.core.proxies.call.api import CallProxy, UniformCallCallback, as_call_listener
from repro.core.proxies.call.descriptor import WEBVIEW_IMPL
from repro.core.proxies.factory import register_implementation, standard_registry
from repro.core.proxies.webview_common import (
    NotificationHandler,
    WrapperBackend,
    decode_or_raise,
    encode_error,
    encode_ok,
)
from repro.core.proxy.callbacks import CallStateListener
from repro.core.proxy.datatypes import CallHandle, CallOutcome
from repro.errors import ProxyError
from repro.platforms.android.context import Context
from repro.platforms.webview.platform import WebViewPlatform
from repro.platforms.webview.webview import JsWindow, WebView

FACTORY_JS_NAME = "CallWrapperFactory"
WRAPPER_JS_NAME = "CallWrapper"


class _TablePostingCallListener(CallStateListener):
    """Java-side callback object posting call states to the table."""

    def __init__(
        self, backend: WrapperBackend, notification_id: str, platform: WebViewPlatform
    ) -> None:
        self._backend = backend
        self._notification_id = notification_id
        self._platform = platform

    def _post(self, event: str, call: CallHandle) -> None:
        self._backend.notifications.post(
            self._notification_id,
            "callState",
            {
                "event": event,
                "callId": call.call_id,
                "outcome": call.outcome.value if call.outcome is not None else None,
            },
            now_ms=self._platform.clock.now_ms,
        )

    def on_ringing(self, call: CallHandle) -> None:
        self._post("ringing", call)

    def on_answered(self, call: CallHandle) -> None:
        self._post("answered", call)

    def on_finished(self, call: CallHandle) -> None:
        self._post("finished", call)


class CallWrapperFactory:
    """Java side, step 1."""

    def __init__(self, backend: "CallWrapperJava") -> None:
        self._backend = backend

    def create_call_wrapper_instance(self) -> int:
        return self._backend.create_instance()


class CallWrapperJava:
    """Java side, step 2: the ``CallWrapper`` class behind the bridge."""

    def __init__(self, platform: WebViewPlatform, context: Context) -> None:
        self._platform = platform
        self._context = context
        self._backend = WrapperBackend(platform.notification_table)
        #: call id → the Java-side uniform handle (JS only gets primitives).
        self._handles: Dict[str, CallHandle] = {}

    def create_instance(self) -> int:
        proxy = AndroidCallProxyImpl(
            standard_registry().descriptor("Call"), self._platform.android
        )
        proxy.set_property("context", self._context)
        return self._backend.add_instance(proxy)

    # -- bridge entry points ---------------------------------------------------

    def set_property(self, handle: int, key: str, value_json: str) -> str:
        return self._backend.set_property_json(handle, key, value_json)

    def make_a_call(self, handle: int, number: str) -> str:
        try:
            proxy = self._backend.instance(handle)
            notification_id = self._backend.notifications.new_id()
            listener = _TablePostingCallListener(
                self._backend, notification_id, self._platform
            )
            call_handle = proxy.make_a_call(number, listener)
        except ProxyError as exc:
            return encode_error(exc)
        self._handles[call_handle.call_id] = call_handle
        return encode_ok(
            {"callId": call_handle.call_id, "notificationId": notification_id}
        )

    def end_call(self, handle: int, call_id: str) -> str:
        java_handle = self._handles.get(call_id)
        if java_handle is None:
            return encode_ok()
        try:
            self._backend.instance(handle).end_call(java_handle)
        except ProxyError as exc:
            return encode_error(exc)
        return encode_ok()

    def get_notifications(self, notification_id: str) -> str:
        return self._backend.notifications.drain_json(notification_id)


def install_call_wrapper(
    webview: WebView, platform: WebViewPlatform, context: Context
) -> CallWrapperJava:
    """Inject the Java side into a WebView (the plugin extension's job)."""
    wrapper = CallWrapperJava(platform, context)
    webview.add_javascript_interface(CallWrapperFactory(wrapper), FACTORY_JS_NAME)
    webview.add_javascript_interface(wrapper, WRAPPER_JS_NAME)
    return wrapper


class CallProxyJs(CallProxy):
    """JS side: ``com.ibm.proxies.webview.call.CallProxyJs``."""

    def __init__(self, descriptor: ProxyDescriptor, platform: WebViewPlatform) -> None:
        super().__init__(descriptor, "webview")
        window = platform.active_window
        if window is None:
            raise ProxyError(
                "no page is loaded; construct the JS proxy inside a page script"
            )
        self._init_in_window(window)

    @classmethod
    def in_page(cls, window: JsWindow) -> "CallProxyJs":
        instance = cls.__new__(cls)
        CallProxy.__init__(instance, standard_registry().descriptor("Call"), "webview")
        instance._init_in_window(window)
        return instance

    def _init_in_window(self, window: JsWindow) -> None:
        self._window = window
        factory = window.bridge_object(FACTORY_JS_NAME)
        self._wrapper = window.bridge_object(WRAPPER_JS_NAME)
        self._swi = factory.create_call_wrapper_instance()
        self._handlers: Dict[str, NotificationHandler] = {}

    def make_a_call(
        self,
        number: str,
        call_listener: Optional[UniformCallCallback] = None,
    ) -> CallHandle:
        self._validate_arguments("makeACall", number=number)
        self._record("makeACall", number=number)
        def attempt() -> Dict:
            self._trace_event("binding.bridge_call", method="makeACall")
            return decode_or_raise(self._wrapper.make_a_call(self._swi, number))

        payload = self._invoke("makeACall", attempt)
        call_id = payload["callId"]
        notification_id = payload["notificationId"]
        # The JS domain keeps its own mirror handle; the Java one stays put.
        handle = CallHandle(call_id=call_id, number=number)
        listener = as_call_listener(call_listener)
        if listener is not None:
            def dispatch(notification: Dict) -> None:
                body = notification["payload"]
                event = body["event"]
                if event == "ringing":
                    listener.on_ringing(handle)
                elif event == "answered":
                    handle.answered = True
                    listener.on_answered(handle)
                else:
                    outcome = body.get("outcome")
                    handle.outcome = (
                        CallOutcome(outcome) if outcome else CallOutcome.FAILED
                    )
                    listener.on_finished(handle)
                    self._stop_tracking(call_id)

            handler = NotificationHandler(
                self._window,
                self._wrapper,
                notification_id,
                dispatch,
                poll_interval_ms=float(self.get_property("pollInterval")),
            )
            handler.start_polling()
            self._handlers[call_id] = handler
        return handle

    def end_call(self, call_handle: CallHandle) -> None:
        self._record("endCall", call_id=call_handle.call_id)
        self._invoke(
            "endCall",
            lambda: decode_or_raise(
                self._wrapper.end_call(self._swi, call_handle.call_id)
            ),
        )

    def _stop_tracking(self, call_id: str) -> None:
        handler = self._handlers.pop(call_id, None)
        if handler is not None:
            handler.stop_polling()


register_implementation(WEBVIEW_IMPL, CallProxyJs)
