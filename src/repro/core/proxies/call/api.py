"""The uniform Call proxy API."""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.core.proxy.base import MProxy
from repro.core.proxy.callbacks import CallStateListener
from repro.core.proxy.datatypes import CallHandle


class FunctionCallStateListener(CallStateListener):
    """Adapter for the JavaScript ``function`` callback style.

    The function receives ``(event, call_id, outcome)`` where ``event`` is
    ``"ringing"``, ``"answered"`` or ``"finished"`` (``outcome`` is only
    set for ``"finished"``).
    """

    def __init__(self, fn: Callable[[str, str, Optional[str]], None]) -> None:
        self._fn = fn

    def on_ringing(self, call: CallHandle) -> None:
        self._fn("ringing", call.call_id, None)

    def on_answered(self, call: CallHandle) -> None:
        self._fn("answered", call.call_id, None)

    def on_finished(self, call: CallHandle) -> None:
        outcome = call.outcome.value if call.outcome is not None else None
        self._fn("finished", call.call_id, outcome)


UniformCallCallback = Union[CallStateListener, Callable[[str, str, Optional[str]], None]]


def as_call_listener(callback: Optional[UniformCallCallback]) -> Optional[CallStateListener]:
    """Normalize object-style and function-style callbacks."""
    if callback is None or isinstance(callback, CallStateListener):
        return callback
    return FunctionCallStateListener(callback)


class CallProxy(MProxy):
    """Abstract uniform API; platform bindings subclass this."""

    interface = "Call"

    def make_a_call(
        self,
        number: str,
        call_listener: Optional[UniformCallCallback] = None,
    ) -> CallHandle:
        """Dial ``number``; returns a handle immediately.

        The listener receives ``on_ringing``, ``on_answered`` and finally
        ``on_finished`` (with ``handle.outcome`` set).
        """
        raise NotImplementedError

    def end_call(self, call_handle: CallHandle) -> None:
        """Hang up a ringing or active call."""
        raise NotImplementedError
