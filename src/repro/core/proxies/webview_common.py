"""Shared plumbing for WebView (JavaScript) proxy bindings.

The paper's Figure 6 pattern, factored once for all four proxies:

* a **Java wrapper backend** holding proxy instances keyed by integer
  handles (the ``swi`` handle in the figure) — bridge calls carry the
  handle because object references cannot cross;
* JSON envelopes for results and errors (exceptions cannot cross the
  bridge either, so uniform errors travel as ``{"error": code}``);
* a JS-side **notification handler** (the figure's ``notifHandler``) that
  polls the Java notification table and dispatches to local JS callbacks.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Optional

from repro.core.proxy.base import MProxy
from repro.core.proxy.exceptions import code_to_error_class
from repro.errors import ProxyError
from repro.platforms.webview.exceptions import JsBridgeError
from repro.platforms.webview.notifications import NotificationTable
from repro.platforms.webview.webview import JsWindow

#: Default JS polling period for notification delivery (milliseconds).
DEFAULT_POLL_INTERVAL_MS = 500.0


# ---------------------------------------------------------------------------
# JSON envelopes (everything that crosses the bridge is a string)
# ---------------------------------------------------------------------------

def encode_ok(payload: Optional[Dict[str, Any]] = None) -> str:
    """Successful result envelope."""
    return json.dumps({"ok": True, "payload": payload or {}})


def encode_error(error: ProxyError) -> str:
    """Error envelope carrying the uniform error code."""
    return json.dumps(
        {"ok": False, "error": type(error).error_code, "message": str(error)}
    )


def decode_or_raise(envelope_json: str) -> Dict[str, Any]:
    """JS side: unwrap an envelope, re-raising coded errors as uniform
    :class:`~repro.errors.ProxyError` subclasses."""
    envelope = json.loads(envelope_json)
    if envelope.get("ok"):
        return envelope.get("payload", {})
    error_class = code_to_error_class(int(envelope.get("error", 1000)))
    raise error_class(envelope.get("message", "bridge call failed"))


# ---------------------------------------------------------------------------
# Java side
# ---------------------------------------------------------------------------

class WrapperBackend:
    """Java-side instance store shared by a wrapper-factory/wrapper pair.

    Holds real proxy instances (the platform's Java M-Proxy bindings) under
    integer handles and owns the notification table used for asynchronous
    results.
    """

    def __init__(self, notification_table: NotificationTable) -> None:
        self.notifications = notification_table
        self._instances: Dict[int, MProxy] = {}
        self._next_handle = 1

    def add_instance(self, proxy: MProxy) -> int:
        handle = self._next_handle
        self._next_handle += 1
        self._instances[handle] = proxy
        return handle

    def instance(self, handle: int) -> MProxy:
        try:
            return self._instances[handle]
        except KeyError:
            raise ProxyError(f"unknown wrapper instance handle {handle}") from None

    def instance_count(self) -> int:
        return len(self._instances)

    def set_property_json(self, handle: int, key: str, value_json: str) -> str:
        """Bridge entry: ``setProperty`` with a JSON-encoded value."""
        try:
            self.instance(handle).set_property(key, json.loads(value_json))
        except ProxyError as exc:
            return encode_error(exc)
        return encode_ok()


# ---------------------------------------------------------------------------
# JS side
# ---------------------------------------------------------------------------

class NotificationHandler:
    """The figure's ``notifHandler``: polls one notification id.

    ``dispatch`` receives each decoded notification dict
    (``{"kind": ..., "payload": {...}}``) in posting order.
    """

    def __init__(
        self,
        window: JsWindow,
        wrapper,
        notification_id: str,
        dispatch: Callable[[Dict[str, Any]], None],
        *,
        poll_interval_ms: float = DEFAULT_POLL_INTERVAL_MS,
    ) -> None:
        self._window = window
        self._wrapper = wrapper
        self._notification_id = notification_id
        self._dispatch = dispatch
        self._poll_interval_ms = poll_interval_ms
        self._timer_id: Optional[int] = None
        #: Polls whose bridge crossing was lost (fault plane); the next
        #: interval retries naturally, so a dropped poll only delays
        #: delivery rather than losing notifications.
        self.dropped_polls = 0

    @property
    def polling(self) -> bool:
        return self._timer_id is not None

    @property
    def notification_id(self) -> str:
        return self._notification_id

    def start_polling(self) -> None:
        """Begin the periodic drain (figure: ``nH.startPolling()``)."""
        if self._timer_id is not None:
            return
        self._timer_id = self._window.set_interval(
            self._poll_once, self._poll_interval_ms
        )

    def stop_polling(self) -> None:
        if self._timer_id is not None:
            self._window.clear_interval(self._timer_id)
            self._timer_id = None

    def _poll_once(self) -> None:
        try:
            batch_json = self._wrapper.get_notifications(self._notification_id)
        except JsBridgeError:
            # The polling crossing itself was lost.  Nothing was drained,
            # so the queued notifications survive for the next interval.
            self.dropped_polls += 1
            return
        for notification in json.loads(batch_json):
            self._dispatch(notification)
