"""The Location M-Proxy: proximity alerts and position reads.

The paper's flagship example.  The uniform API (``api.LocationProxy``)
matches Figure 8: ``add_proximity_alert(latitude, longitude, altitude,
radius, timer, listener)`` behaves identically on Android, S60 and
WebView, with platform attributes flowing through ``set_property``.
"""

from repro.core.proxies.location.api import LocationProxy
from repro.core.proxies.location.descriptor import build_location_descriptor

__all__ = ["LocationProxy", "build_location_descriptor"]
