"""WebView binding of the Location proxy (paper Figure 6, applied to
Location instead of SMS).

Three pieces, matching the figure's three steps:

1. **Wrapper factory** (``LocationWrapperFactory``) — injected into the
   page; ``create_location_wrapper_instance`` builds a Java-side proxy
   (reusing the Android binding) and returns an integer handle, the
   figure's ``swi``.
2. **Wrapper** (``LocationWrapper``) — injected alongside; exposes the
   proxy methods with the handle as first argument.  Results and errors
   travel as JSON envelopes because neither objects nor exceptions cross
   the bridge.
3. **Notification support** — ``add_proximity_alert`` returns a
   notification id; a Java-side callback object posts every proximity
   event into the platform's Notification Table, and the JS proxy's
   ``notifHandler`` polls it with ``window.set_interval``.

Use :func:`install_location_wrapper` (normally called by the M-Plugin's
WebView platform extension) to inject the Java side, then construct
:class:`LocationProxyJs` in page code.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, Tuple, Union

from repro.core.descriptor.model import ProxyDescriptor
from repro.core.proxies.factory import register_implementation, standard_registry
from repro.core.proxies.location.android import AndroidLocationProxyImpl
from repro.core.proxies.location.api import LocationProxy
from repro.core.proxies.location.descriptor import WEBVIEW_IMPL
from repro.core.proxies.webview_common import (
    NotificationHandler,
    WrapperBackend,
    decode_or_raise,
    encode_error,
    encode_ok,
)
from repro.core.proxy.callbacks import FunctionProximityListener, ProximityListener
from repro.core.proxy.datatypes import Location
from repro.core.resilience import LAST_RESULT
from repro.errors import ProxyError
from repro.platforms.android.context import Context
from repro.platforms.webview.platform import WebViewPlatform
from repro.platforms.webview.webview import WebView, JsWindow

#: JS global names the plugin injects the Java side under.
FACTORY_JS_NAME = "LocationWrapperFactory"
WRAPPER_JS_NAME = "LocationWrapper"


def _location_payload(location: Location) -> Dict[str, float]:
    return {
        "latitude": location.latitude,
        "longitude": location.longitude,
        "altitude": location.altitude,
        "accuracy_m": location.accuracy_m,
        "timestamp_ms": location.timestamp_ms,
        "speed_mps": location.speed_mps,
    }


def _location_from_payload(payload: Dict[str, float]) -> Location:
    return Location(
        latitude=payload["latitude"],
        longitude=payload["longitude"],
        altitude=payload.get("altitude", 0.0),
        accuracy_m=payload.get("accuracy_m", 0.0),
        timestamp_ms=payload.get("timestamp_ms", 0.0),
        speed_mps=payload.get("speed_mps", 0.0),
    )


class _TablePostingListener(ProximityListener):
    """The figure's Java 'Callback object': posts events into the table."""

    def __init__(self, backend: WrapperBackend, notification_id: str, platform: WebViewPlatform) -> None:
        self._backend = backend
        self._notification_id = notification_id
        self._platform = platform

    def proximity_event(
        self,
        ref_latitude: float,
        ref_longitude: float,
        ref_altitude: float,
        current_location: Location,
        entering: bool,
    ) -> None:
        self._backend.notifications.post(
            self._notification_id,
            "proximity",
            {
                "refLatitude": ref_latitude,
                "refLongitude": ref_longitude,
                "refAltitude": ref_altitude,
                "entering": entering,
                "location": _location_payload(current_location),
            },
            now_ms=self._platform.clock.now_ms,
        )


class LocationWrapperFactory:
    """Java side, step 1: mints wrapper instances for the JS domain."""

    def __init__(self, backend: "LocationWrapperJava") -> None:
        self._backend = backend

    def create_location_wrapper_instance(self) -> int:
        """Bridge entry: returns the new instance handle (``swi``)."""
        return self._backend.create_instance()


class LocationWrapperJava:
    """Java side, step 2: the wrapper class behind the bridge.

    Every public method is a bridge entry point: primitive arguments in,
    JSON envelope strings out.
    """

    def __init__(self, platform: WebViewPlatform, context: Context) -> None:
        self._platform = platform
        self._context = context
        self._backend = WrapperBackend(platform.notification_table)
        #: notification id → (instance handle, internal listener).
        self._alerts: Dict[str, Tuple[int, ProximityListener]] = {}

    def create_instance(self) -> int:
        proxy = AndroidLocationProxyImpl(
            standard_registry().descriptor("Location"), self._platform.android
        )
        proxy.set_property("context", self._context)
        return self._backend.add_instance(proxy)

    def instance_count(self) -> int:
        return self._backend.instance_count()

    # -- bridge entry points ---------------------------------------------------

    def set_property(self, handle: int, key: str, value_json: str) -> str:
        return self._backend.set_property_json(handle, key, value_json)

    def add_proximity_alert(
        self,
        handle: int,
        latitude: float,
        longitude: float,
        altitude: float,
        radius: float,
        timer: float,
    ) -> str:
        try:
            proxy = self._backend.instance(handle)
            notification_id = self._backend.notifications.new_id()
            listener = _TablePostingListener(
                self._backend, notification_id, self._platform
            )
            proxy.add_proximity_alert(
                latitude, longitude, altitude, radius, timer, listener
            )
        except ProxyError as exc:
            return encode_error(exc)
        self._alerts[notification_id] = (handle, listener)
        return encode_ok({"notificationId": notification_id})

    def remove_proximity_alert(self, handle: int, notification_id: str) -> str:
        entry = self._alerts.pop(notification_id, None)
        if entry is None:
            return encode_ok()
        try:
            proxy = self._backend.instance(handle)
            proxy.remove_proximity_alert(entry[1])
            self._backend.notifications.close(notification_id)
        except ProxyError as exc:
            return encode_error(exc)
        return encode_ok()

    def get_location(self, handle: int) -> str:
        try:
            proxy = self._backend.instance(handle)
            location = proxy.get_location()
        except ProxyError as exc:
            return encode_error(exc)
        return encode_ok(_location_payload(location))

    def get_notifications(self, notification_id: str) -> str:
        return self._backend.notifications.drain_json(notification_id)


def install_location_wrapper(
    webview: WebView, platform: WebViewPlatform, context: Context
) -> LocationWrapperJava:
    """Inject the Java side into a WebView (the plugin extension's job)."""
    wrapper = LocationWrapperJava(platform, context)
    webview.add_javascript_interface(LocationWrapperFactory(wrapper), FACTORY_JS_NAME)
    webview.add_javascript_interface(wrapper, WRAPPER_JS_NAME)
    return wrapper


UniformCallback = Union[
    ProximityListener, Callable[[float, float, float, Location, bool], None]
]


class LocationProxyJs(LocationProxy):
    """JS side: ``com.ibm.proxies.webview.location.LocationProxyJs``.

    Constructed in page code (``LocationProxyJs.in_page(window)``) or via
    ``create_proxy("Location", webview_platform)`` after a page is loaded.
    The JS syntactic plane's callback style is ``function``, so
    ``add_proximity_alert`` accepts a bare function as well as a listener
    object.
    """

    def __init__(self, descriptor: ProxyDescriptor, platform: WebViewPlatform) -> None:
        super().__init__(descriptor, "webview")
        window = platform.active_window
        if window is None:
            raise ProxyError(
                "no page is loaded; construct the JS proxy inside a page "
                "script (or load a page first)"
            )
        self._init_in_window(window)

    @classmethod
    def in_page(cls, window: JsWindow) -> "LocationProxyJs":
        """Construct directly from page code, paper-style."""
        instance = cls.__new__(cls)
        LocationProxy.__init__(
            instance, standard_registry().descriptor("Location"), "webview"
        )
        instance._init_in_window(window)
        return instance

    def _init_in_window(self, window: JsWindow) -> None:
        self._window = window
        # In-page construction bypasses the proxy factory, so pick up the
        # device hub here — otherwise WebView invocations leave no
        # dispatch spans and vanish from the overhead profile.
        if self.observability is None:
            obs = getattr(window.platform.device, "obs", None)
            if obs is not None:
                self.attach_observability(obs)
        factory = window.bridge_object(FACTORY_JS_NAME)
        self._wrapper = window.bridge_object(WRAPPER_JS_NAME)
        self._swi = factory.create_location_wrapper_instance()
        self._handlers: Dict[int, Tuple[str, NotificationHandler]] = {}

    # -- property forwarding -------------------------------------------------------

    def set_property(self, key: str, value) -> None:
        super().set_property(key, value)  # local validation first
        if key != "pollInterval":  # JS-side-only knob stays local
            decode_or_raise(
                self._wrapper.set_property(self._swi, key, json.dumps(value))
            )

    # -- uniform API -----------------------------------------------------------------

    def add_proximity_alert(
        self,
        latitude: float,
        longitude: float,
        altitude: float,
        radius: float,
        timer: float,
        proximity_listener: UniformCallback,
    ) -> None:
        self._validate_arguments(
            "addProximityAlert",
            latitude=latitude,
            longitude=longitude,
            altitude=altitude,
            radius=radius,
            timer=timer,
        )
        self._record(
            "addProximityAlert",
            latitude=latitude,
            longitude=longitude,
            radius=radius,
            timer=timer,
        )
        listener = self._as_listener(proximity_listener)
        with self._guard("addProximityAlert"):
            payload = decode_or_raise(
                self._wrapper.add_proximity_alert(
                    self._swi,
                    float(latitude),
                    float(longitude),
                    float(altitude),
                    float(radius),
                    float(timer),
                )
            )
        notification_id = payload["notificationId"]

        def dispatch(notification: Dict) -> None:
            body = notification["payload"]
            listener.proximity_event(
                body["refLatitude"],
                body["refLongitude"],
                body["refAltitude"],
                _location_from_payload(body["location"]),
                body["entering"],
            )

        handler = NotificationHandler(
            self._window,
            self._wrapper,
            notification_id,
            dispatch,
            poll_interval_ms=float(self.get_property("pollInterval")),
        )
        handler.start_polling()
        self._handlers[id(proximity_listener)] = (notification_id, handler)

    def remove_proximity_alert(self, proximity_listener: UniformCallback) -> None:
        self._record("removeProximityAlert")
        entry = self._handlers.pop(id(proximity_listener), None)
        if entry is None:
            return
        notification_id, handler = entry
        handler.stop_polling()
        with self._guard("removeProximityAlert"):
            decode_or_raise(
                self._wrapper.remove_proximity_alert(self._swi, notification_id)
            )

    def get_location(self) -> Location:
        self._record("getLocation")

        def attempt() -> Location:
            payload = decode_or_raise(self._wrapper.get_location(self._swi))
            return _location_from_payload(payload)

        return self._invoke("getLocation", attempt, fallback=LAST_RESULT)

    @staticmethod
    def _as_listener(callback: UniformCallback) -> ProximityListener:
        if isinstance(callback, ProximityListener):
            return callback
        return FunctionProximityListener(callback)


register_implementation(WEBVIEW_IMPL, LocationProxyJs)
