"""Three-plane descriptor for the Location proxy.

The listings in Section 3.1 of the paper are fragments of exactly this
document: the common ``addProximityAlert`` semantics, the Java data-type
bindings, and the per-platform binding planes with properties such as
S60's ``preferredResponseTime`` (default + allowed values) and Android's
application ``context``.
"""

from __future__ import annotations

from repro.core.descriptor.model import (
    BindingPlane,
    CallbackSpec,
    ExceptionSpec,
    MethodSpec,
    ParameterSpec,
    PropertySpec,
    ProxyDescriptor,
    ReturnSpec,
    SemanticPlane,
    SyntacticPlane,
    TypeBinding,
)

#: Implementation-class strings used in the binding planes (Java-style, as
#: in the paper's listings; the factory maps them to Python classes).
ANDROID_IMPL = "com.ibm.proxies.android.location.LocationProxyImpl"
S60_IMPL = "com.ibm.S60.location.LocationProxy"
WEBVIEW_IMPL = "com.ibm.proxies.webview.location.LocationProxyJs"

_EVENT_PARAMETERS = (
    ParameterSpec("refLatitude", "angle.latitude", 1, "registered region latitude"),
    ParameterSpec("refLongitude", "angle.longitude", 2, "registered region longitude"),
    ParameterSpec("refAltitude", "length.altitude", 3, "registered region altitude"),
    ParameterSpec("currentLocation", "object.location", 4, "device position at the event"),
    ParameterSpec("entering", "flag.boolean", 5, "True on entry, False on exit"),
)


def build_location_descriptor() -> ProxyDescriptor:
    """Construct the full Location descriptor."""
    semantic = SemanticPlane(
        interface="Location",
        description="Access device position and register proximity alerts",
        methods=(
            MethodSpec(
                name="addProximityAlert",
                description=(
                    "Register a repeating proximity alert around a point; the "
                    "listener receives both entry and exit events until the "
                    "timer expires"
                ),
                parameters=(
                    ParameterSpec("latitude", "angle.latitude", 1, "region centre latitude"),
                    ParameterSpec("longitude", "angle.longitude", 2, "region centre longitude"),
                    ParameterSpec("altitude", "length.altitude", 3, "region centre altitude"),
                    ParameterSpec("radius", "length.radius", 4, "region radius"),
                    ParameterSpec("timer", "time.duration", 5, "expiration in seconds; -1 = never"),
                    ParameterSpec("proximityListener", "callback.proximity", 6, "uniform event sink"),
                ),
                callback=CallbackSpec(
                    parameter_name="proximityListener",
                    event_name="proximityEvent",
                    event_parameters=_EVENT_PARAMETERS,
                ),
            ),
            MethodSpec(
                name="removeProximityAlert",
                description="Deregister a previously added proximity alert",
                parameters=(
                    ParameterSpec("proximityListener", "callback.proximity", 1, "listener to remove"),
                ),
            ),
            MethodSpec(
                name="getLocation",
                description="Read the device's current position",
                returns=ReturnSpec("object.location", "uniform location value"),
            ),
        ),
    )

    java = SyntacticPlane(
        language="java",
        callback_style="object",
        method_types={
            "addProximityAlert": (
                TypeBinding("latitude", "double"),
                TypeBinding("longitude", "double"),
                TypeBinding("altitude", "double"),
                TypeBinding("radius", "float"),
                TypeBinding("timer", "long"),
                TypeBinding("proximityListener", "com.ibm.telecom.proxy.ProximityListener"),
            ),
            "removeProximityAlert": (
                TypeBinding("proximityListener", "com.ibm.telecom.proxy.ProximityListener"),
            ),
            "getLocation": (),
        },
        return_types={
            "addProximityAlert": "void",
            "removeProximityAlert": "void",
            "getLocation": "com.ibm.telecom.proxy.Location",
        },
    )

    javascript = SyntacticPlane(
        language="javascript",
        callback_style="function",
        method_types={
            "addProximityAlert": (
                TypeBinding("latitude", "number"),
                TypeBinding("longitude", "number"),
                TypeBinding("altitude", "number"),
                TypeBinding("radius", "number"),
                TypeBinding("timer", "number"),
                TypeBinding("proximityListener", "function"),
            ),
            "removeProximityAlert": (
                TypeBinding("proximityListener", "function"),
            ),
            "getLocation": (),
        },
        return_types={
            "addProximityAlert": "void",
            "removeProximityAlert": "void",
            "getLocation": "object",
        },
    )

    # The C plane demonstrates the paper's claim that callback style is a
    # per-language concern ("in C we can specify a function pointer").
    # No shipped platform binds it; a native OS vendor would.
    c_plane = SyntacticPlane(
        language="c",
        callback_style="function",
        method_types={
            "addProximityAlert": (
                TypeBinding("latitude", "double"),
                TypeBinding("longitude", "double"),
                TypeBinding("altitude", "double"),
                TypeBinding("radius", "float"),
                TypeBinding("timer", "long"),
                TypeBinding("proximityListener", "proximity_event_fn *"),
            ),
            "removeProximityAlert": (
                TypeBinding("proximityListener", "proximity_event_fn *"),
            ),
            "getLocation": (),
        },
        return_types={
            "addProximityAlert": "void",
            "removeProximityAlert": "void",
            "getLocation": "proxy_location_t *",
        },
    )

    android = BindingPlane(
        platform="android",
        language="java",
        implementation_class=ANDROID_IMPL,
        properties=(
            PropertySpec(
                "context",
                description="Application context used to obtain the LocationManager",
                type_name="object",
                required=True,
            ),
            PropertySpec(
                "provider",
                description="Location provider to read fixes from",
                type_name="string",
                default="gps",
                allowed_values=("gps",),
            ),
        ),
        exceptions=(
            ExceptionSpec(
                "java.lang.SecurityException",
                maps_to="ProxyPermissionError",
                error_code=1001,
                description="ACCESS_FINE_LOCATION is missing from the manifest",
            ),
            ExceptionSpec(
                "java.lang.IllegalArgumentException",
                maps_to="ProxyInvalidArgumentError",
                error_code=1003,
            ),
        ),
        notes="Intent/IntentReceiver plumbing and the m5-rc15 vs 1.0 "
        "PendingIntent change are absorbed inside this binding.",
    )

    s60 = BindingPlane(
        platform="s60",
        language="java",
        implementation_class=S60_IMPL,
        properties=(
            PropertySpec(
                "preferredResponseTime",
                description="Preferred max. response time used internally for polling of updates",
                type_name="int",
                default=1000,
            ),
            PropertySpec(
                "horizontalAccuracy",
                description="Requested horizontal accuracy in metres",
                type_name="int",
                default=50,
            ),
            PropertySpec(
                "verticalAccuracy",
                description="Requested vertical accuracy in metres",
                type_name="int",
                default=50,
            ),
            PropertySpec(
                "powerConsumption",
                description="Criteria power-usage level",
                type_name="string",
                default="NO_REQUIREMENT",
                allowed_values=("NO_REQUIREMENT", "LOW", "MEDIUM", "HIGH"),
            ),
        ),
        exceptions=(
            ExceptionSpec(
                "javax.microedition.location.LocationException",
                maps_to="ProxyPlatformError",
                error_code=1005,
                description="provider out of service or request timed out",
            ),
            ExceptionSpec(
                "java.lang.SecurityException",
                maps_to="ProxyPermissionError",
                error_code=1001,
            ),
            ExceptionSpec(
                "java.lang.IllegalArgumentException",
                maps_to="ProxyInvalidArgumentError",
                error_code=1003,
            ),
            ExceptionSpec(
                "java.lang.NullPointerException",
                maps_to="ProxyInvalidArgumentError",
                error_code=1003,
            ),
        ),
        notes="One-shot native listeners are re-registered, exit events are "
        "synthesized from location polling, and expiration is emulated "
        "with a platform timer.",
    )

    webview = BindingPlane(
        platform="webview",
        language="javascript",
        implementation_class=WEBVIEW_IMPL,
        properties=(
            PropertySpec(
                "provider",
                description="Location provider on the underlying Android platform",
                type_name="string",
                default="gps",
                allowed_values=("gps",),
            ),
            PropertySpec(
                "pollInterval",
                description="JS notification-poll period in milliseconds",
                type_name="int",
                default=500,
            ),
        ),
        exceptions=(
            ExceptionSpec(
                "java.lang.SecurityException",
                maps_to="ProxyPermissionError",
                error_code=1001,
            ),
        ),
        notes="Callbacks ride the Notification Table; errors cross the "
        "bridge as numeric codes.",
    )

    descriptor = ProxyDescriptor(semantic=semantic)
    descriptor.add_syntactic(java)
    descriptor.add_syntactic(javascript)
    descriptor.add_syntactic(c_plane)
    descriptor.add_binding(android)
    descriptor.add_binding(s60)
    descriptor.add_binding(webview)
    return descriptor
