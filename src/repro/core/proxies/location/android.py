"""Android binding of the Location proxy.

Absorbs (paper Section 4.1):

* the application-context requirement — via ``set_property("context", …)``;
* the Intent/IntentReceiver callback machinery — an internal receiver
  translates proximity broadcasts into uniform ``proximity_event`` calls;
* the m5-rc15 → 1.0 evolution — when the platform's SDK requires a
  ``PendingIntent``, the binding wraps the Intent itself, so application
  code is untouched by the platform change (the maintenance experiment).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.descriptor.model import ProxyDescriptor
from repro.core.proxies.factory import register_implementation
from repro.core.proxies.location.api import NO_EXPIRATION, LocationProxy
from repro.core.proxies.location.descriptor import ANDROID_IMPL
from repro.core.proxy.callbacks import ProximityListener
from repro.core.proxy.datatypes import Location
from repro.core.resilience import LAST_RESULT
from repro.errors import ProxyError
from repro.platforms.android.context import Context
from repro.platforms.android.intents import Intent, IntentFilter, IntentReceiver, PendingIntent
from repro.platforms.android.location import (
    EXTRA_ENTERING,
    NO_EXPIRATION as ANDROID_NO_EXPIRATION,
    Location as AndroidLocation,
    LocationManager,
)
from repro.platforms.android.platform import AndroidPlatform

#: Action prefix for the binding's private proximity intents.
_ACTION_PREFIX = "com.ibm.proxies.android.intent.action.PROXIMITY_ALERT"


def _to_uniform(native: AndroidLocation) -> Location:
    return Location(
        latitude=native.get_latitude(),
        longitude=native.get_longitude(),
        altitude=native.get_altitude(),
        accuracy_m=native.get_accuracy(),
        timestamp_ms=native.get_time(),
        speed_mps=native.get_speed(),
    )


class _ProxyIntentReceiver(IntentReceiver):
    """Internal receiver translating broadcasts to uniform events."""

    def __init__(
        self,
        proxy: "AndroidLocationProxyImpl",
        listener: ProximityListener,
        latitude: float,
        longitude: float,
        altitude: float,
    ) -> None:
        self._proxy = proxy
        self._listener = listener
        self._latitude = latitude
        self._longitude = longitude
        self._altitude = altitude

    def on_receive_intent(self, context: Context, intent: Intent) -> None:
        entering = intent.get_boolean_extra(EXTRA_ENTERING, False)
        manager = context.get_system_service(Context.LOCATION_SERVICE)
        provider = self._proxy.get_property("provider")
        native = manager.get_last_known_location(provider)
        if native is None:  # no fix yet; synthesize from the region centre
            current = Location(self._latitude, self._longitude, self._altitude)
        else:
            current = _to_uniform(native)
        self._listener.proximity_event(
            self._latitude, self._longitude, self._altitude, current, entering
        )


class AndroidLocationProxyImpl(LocationProxy):
    """``com.ibm.proxies.android.location.LocationProxyImpl``."""

    def __init__(self, descriptor: ProxyDescriptor, platform: AndroidPlatform) -> None:
        super().__init__(descriptor, "android")
        self._platform = platform
        self._alert_counter = 0
        #: listener id → (intent-or-pending, receiver) for deregistration.
        self._registrations: Dict[int, Tuple[object, _ProxyIntentReceiver]] = {}

    # -- helpers -------------------------------------------------------------

    def _context(self, for_what: str) -> Context:
        context = self.properties.require("context", for_what)
        if not isinstance(context, Context):
            raise ProxyError(
                f"property 'context' must be an Android Context, got "
                f"{type(context).__name__}"
            )
        return context

    def _location_manager(self, context: Context) -> LocationManager:
        return context.get_system_service(Context.LOCATION_SERVICE)

    # -- uniform API ------------------------------------------------------------

    def add_proximity_alert(
        self,
        latitude: float,
        longitude: float,
        altitude: float,
        radius: float,
        timer: float,
        proximity_listener: ProximityListener,
    ) -> None:
        self._validate_arguments(
            "addProximityAlert",
            latitude=latitude,
            longitude=longitude,
            altitude=altitude,
            radius=radius,
            timer=timer,
        )
        self._record(
            "addProximityAlert",
            latitude=latitude,
            longitude=longitude,
            radius=radius,
            timer=timer,
        )
        context = self._context("addProximityAlert")
        with self._guard("addProximityAlert"):
            manager = self._location_manager(context)
            self._alert_counter += 1
            action = f"{_ACTION_PREFIX}_{self._alert_counter}"
            intent = Intent(action)
            receiver = _ProxyIntentReceiver(
                self, proximity_listener, latitude, longitude, altitude
            )
            context.register_receiver(receiver, IntentFilter(action))
            expiration_ms = (
                ANDROID_NO_EXPIRATION if timer == NO_EXPIRATION else timer * 1000.0
            )
            # SDK absorption: 1.0 requires a PendingIntent where m5-rc15
            # took the raw Intent.  The application never sees this.
            if self._platform.sdk_version.proximity_alert_takes_pending_intent:
                target = PendingIntent.get_broadcast(context, 0, intent)
            else:
                target = intent
            self._trace_event(
                "binding.sdk_absorption",
                action=action,
                target=type(target).__name__,
            )
            manager.add_proximity_alert(
                latitude, longitude, radius, expiration_ms, target
            )
            self._registrations[id(proximity_listener)] = (target, receiver)

    def remove_proximity_alert(self, proximity_listener: ProximityListener) -> None:
        self._record("removeProximityAlert")
        registration = self._registrations.pop(id(proximity_listener), None)
        if registration is None:
            return
        target, receiver = registration
        context = self._context("removeProximityAlert")
        with self._guard("removeProximityAlert"):
            manager = self._location_manager(context)
            manager.remove_proximity_alert(target)
            context.unregister_receiver(receiver)
            if isinstance(target, PendingIntent):
                target.cancel()

    def get_location(self) -> Location:
        self._record("getLocation")
        context = self._context("getLocation")
        provider = self.get_property("provider")

        def attempt() -> Location:
            manager = self._location_manager(context)
            return _to_uniform(manager.get_current_location(provider))

        # Resilience: when the receiver is dark, serve the last-known
        # location rather than failing the caller (graceful degradation).
        return self._invoke("getLocation", attempt, fallback=LAST_RESULT)


register_implementation(ANDROID_IMPL, AndroidLocationProxyImpl)
