"""The uniform Location proxy API (paper Figure 8).

Applications program against this class on every platform; only the
``set_property`` keys differ per platform (and those are discoverable from
the binding plane via the plugin's configuration dialog).
"""

from __future__ import annotations

from repro.core.proxy.base import MProxy
from repro.core.proxy.callbacks import ProximityListener
from repro.core.proxy.datatypes import Location

#: ``timer`` value meaning "the alert never expires".
NO_EXPIRATION = -1


class LocationProxy(MProxy):
    """Abstract uniform API; platform bindings subclass this."""

    interface = "Location"

    def add_proximity_alert(
        self,
        latitude: float,
        longitude: float,
        altitude: float,
        radius: float,
        timer: float,
        proximity_listener: ProximityListener,
    ) -> None:
        """Register a repeating proximity alert.

        The listener's ``proximity_event`` fires with ``entering=True`` on
        every entry into the region and ``entering=False`` on every exit,
        until ``timer`` seconds elapse (:data:`NO_EXPIRATION` = never).
        Identical behaviour on all platforms — bindings fill whatever the
        native stack lacks.
        """
        raise NotImplementedError

    def remove_proximity_alert(self, proximity_listener: ProximityListener) -> None:
        """Deregister every alert attached to ``proximity_listener``."""
        raise NotImplementedError

    def get_location(self) -> Location:
        """Read the device's current position as a uniform value."""
        raise NotImplementedError
