"""S60 binding of the Location proxy — the heavy gap-filler.

The native JSR-179 stack gives one-shot entry-only listeners with no
expiration.  The uniform API promises repeating enter **and** exit events
with a timer.  This binding synthesizes the difference (exactly the logic
the paper's Figure 2(b) shows scattered through application code, now
concentrated here):

* after a native entry fires, a location listener polls for the exit
  crossing and emits the uniform ``entering=False`` event;
* after the exit, the one-shot native listener is **re-registered** so the
  next entry fires again;
* every handler checks the expiration deadline and tears the whole
  machine down once passed (mirroring the paper's ``timeOut`` checks).

Criteria knobs (accuracy, response time, power) arrive as binding-plane
properties, never through the common API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.descriptor.model import ProxyDescriptor
from repro.core.proxies.factory import register_implementation
from repro.core.proxies.location.api import NO_EXPIRATION, LocationProxy
from repro.core.proxies.location.descriptor import S60_IMPL
from repro.core.proxy.callbacks import ProximityListener
from repro.core.proxy.datatypes import Location
from repro.core.resilience import LAST_RESULT
from repro.errors import ProxyPlatformError
from repro.platforms.s60.location import (
    Coordinates,
    Criteria,
    LocationListener as NativeLocationListener,
    LocationProvider,
    ProximityListener as NativeProximityListener,
    S60Location,
)
from repro.platforms.s60.platform import S60Platform

_POWER_LEVELS = {
    "NO_REQUIREMENT": Criteria.NO_REQUIREMENT,
    "LOW": Criteria.POWER_USAGE_LOW,
    "MEDIUM": Criteria.POWER_USAGE_MEDIUM,
    "HIGH": Criteria.POWER_USAGE_HIGH,
}


def _to_uniform(native: S60Location) -> Location:
    coordinates = native.get_qualified_coordinates()
    return Location(
        latitude=coordinates.get_latitude(),
        longitude=coordinates.get_longitude(),
        altitude=coordinates.get_altitude(),
        timestamp_ms=native.get_timestamp(),
        speed_mps=native.get_speed(),
    )


@dataclass
class _AlertMachine:
    """Per-listener synthesis state."""

    listener: ProximityListener
    latitude: float
    longitude: float
    altitude: float
    radius_m: float
    deadline_ms: Optional[float]
    provider: LocationProvider
    native_entry: Optional[NativeProximityListener] = None
    exit_watch: Optional[NativeLocationListener] = None
    active: bool = True


class _NativeEntryListener(NativeProximityListener):
    """One-shot native listener for the next entry crossing."""

    def __init__(self, proxy: "S60LocationProxyImpl", machine: _AlertMachine) -> None:
        self._proxy = proxy
        self._machine = machine

    def proximity_event(self, coordinates: Coordinates, location: S60Location) -> None:
        self._proxy._on_native_entry(self._machine, location)

    def monitoring_state_changed(self, is_monitoring_active: bool) -> None:
        pass  # informational only


class _ExitWatchListener(NativeLocationListener):
    """Polls position while inside the region, looking for the exit."""

    def __init__(self, proxy: "S60LocationProxyImpl", machine: _AlertMachine) -> None:
        self._proxy = proxy
        self._machine = machine

    def location_updated(self, provider: LocationProvider, location: S60Location) -> None:
        self._proxy._on_exit_poll(self._machine, location)

    def provider_state_changed(self, provider: LocationProvider, new_state: int) -> None:
        pass


class S60LocationProxyImpl(LocationProxy):
    """``com.ibm.S60.location.LocationProxy``."""

    def __init__(self, descriptor: ProxyDescriptor, platform: S60Platform) -> None:
        super().__init__(descriptor, "s60")
        self._platform = platform
        self._machines: Dict[int, _AlertMachine] = {}

    # -- criteria from properties -------------------------------------------

    def _build_criteria(self) -> Criteria:
        criteria = Criteria()
        criteria.set_horizontal_accuracy(int(self.get_property("horizontalAccuracy")))
        criteria.set_vertical_accuracy(int(self.get_property("verticalAccuracy")))
        criteria.set_preferred_response_time(
            int(self.get_property("preferredResponseTime"))
        )
        criteria.set_preferred_power_consumption(
            _POWER_LEVELS[self.get_property("powerConsumption")]
        )
        return criteria

    def _acquire_provider(self, for_what: str) -> LocationProvider:
        provider = self._platform.location_provider.get_instance(self._build_criteria())
        if provider is None:
            raise ProxyPlatformError(
                f"{for_what}: no S60 location provider satisfies the "
                "configured criteria (relax horizontalAccuracy)"
            )
        return provider

    # -- uniform API --------------------------------------------------------------

    def add_proximity_alert(
        self,
        latitude: float,
        longitude: float,
        altitude: float,
        radius: float,
        timer: float,
        proximity_listener: ProximityListener,
    ) -> None:
        self._validate_arguments(
            "addProximityAlert",
            latitude=latitude,
            longitude=longitude,
            altitude=altitude,
            radius=radius,
            timer=timer,
        )
        self._record(
            "addProximityAlert",
            latitude=latitude,
            longitude=longitude,
            radius=radius,
            timer=timer,
        )
        with self._guard("addProximityAlert"):
            provider = self._acquire_provider("addProximityAlert")
            now = self._platform.clock.now_ms
            deadline = None if timer == NO_EXPIRATION else now + timer * 1000.0
            machine = _AlertMachine(
                listener=proximity_listener,
                latitude=latitude,
                longitude=longitude,
                altitude=altitude,
                radius_m=radius,
                deadline_ms=deadline,
                provider=provider,
            )
            self._machines[id(proximity_listener)] = machine
            self._arm_entry(machine)
            self._trace_event(
                "binding.alert_machine_armed",
                radius_m=radius,
                deadline_ms=deadline,
            )

    def remove_proximity_alert(self, proximity_listener: ProximityListener) -> None:
        self._record("removeProximityAlert")
        machine = self._machines.pop(id(proximity_listener), None)
        if machine is not None:
            self._teardown(machine)

    def get_location(self) -> Location:
        self._record("getLocation")

        def attempt() -> Location:
            provider = self._acquire_provider("getLocation")
            self._trace_event("binding.provider_acquired")
            return _to_uniform(provider.get_location(-1))

        return self._invoke("getLocation", attempt, fallback=LAST_RESULT)

    # -- synthesis machinery ----------------------------------------------------

    def _arm_entry(self, machine: _AlertMachine) -> None:
        """Register the one-shot native listener for the next entry."""
        entry = _NativeEntryListener(self, machine)
        machine.native_entry = entry
        self._platform.location_provider.add_proximity_listener(
            entry,
            Coordinates(machine.latitude, machine.longitude, machine.altitude),
            machine.radius_m,
        )

    def _expired(self, machine: _AlertMachine) -> bool:
        if machine.deadline_ms is None:
            return False
        return self._platform.clock.now_ms > machine.deadline_ms

    def _on_native_entry(self, machine: _AlertMachine, location: S60Location) -> None:
        if not machine.active:
            return
        if self._expired(machine):  # paper's timeOut check on entry
            self._teardown(machine)
            return
        machine.listener.proximity_event(
            machine.latitude,
            machine.longitude,
            machine.altitude,
            _to_uniform(location),
            True,
        )
        # The native registration auto-removed itself (one-shot); start
        # polling for the exit crossing.
        machine.native_entry = None
        watch = _ExitWatchListener(self, machine)
        machine.exit_watch = watch
        interval_s = max(1, int(self.get_property("preferredResponseTime")) // 1000)
        machine.provider.set_location_listener(watch, interval_s, -1, -1)

    def _on_exit_poll(self, machine: _AlertMachine, location: S60Location) -> None:
        if not machine.active:
            return
        if self._expired(machine):  # paper's timeOut check on update
            self._teardown(machine)
            return
        current = _to_uniform(location)
        centre = Location(machine.latitude, machine.longitude, machine.altitude)
        if current.distance_to_m(centre) > machine.radius_m:
            machine.provider.set_location_listener(None, -1, -1, -1)
            machine.exit_watch = None
            machine.listener.proximity_event(
                machine.latitude,
                machine.longitude,
                machine.altitude,
                current,
                False,
            )
            # Back to waiting for the next entry.
            self._arm_entry(machine)

    def _teardown(self, machine: _AlertMachine) -> None:
        machine.active = False
        if machine.native_entry is not None:
            self._platform.location_provider.remove_proximity_listener(
                machine.native_entry
            )
            machine.native_entry = None
        if machine.exit_watch is not None:
            machine.provider.set_location_listener(None, -1, -1, -1)
            machine.exit_watch = None
        self._machines.pop(id(machine.listener), None)


register_implementation(S60_IMPL, S60LocationProxyImpl)
