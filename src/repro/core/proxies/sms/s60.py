"""S60 binding of the SMS proxy.

Hides the Generic Connection Framework ceremony (``Connector.open`` on an
``sms://`` URL, ``new_message``, blocking ``send``).  The WMA stack has no
delivery reports, so the binding fires the uniform ``on_sent`` after the
blocking send returns and never fires ``on_delivered`` — a platform
capability gap documented in the binding plane's notes, not papered over
with fake events.
"""

from __future__ import annotations

from typing import Optional

from repro.core.descriptor.model import ProxyDescriptor
from repro.core.proxies.factory import register_implementation
from repro.core.proxies.sms.api import SmsProxy, UniformSmsCallback, as_status_listener
from repro.core.proxies.sms.descriptor import S60_IMPL
from repro.platforms.s60.platform import S60Platform
from repro.util.identifiers import IdGenerator


class S60SmsProxyImpl(SmsProxy):
    """``com.ibm.S60.sms.SmsProxy``."""

    def __init__(self, descriptor: ProxyDescriptor, platform: S60Platform) -> None:
        super().__init__(descriptor, "s60")
        self._platform = platform
        self._ids = IdGenerator()

    def send_text_message(
        self,
        destination: str,
        text: str,
        status_listener: Optional[UniformSmsCallback] = None,
    ) -> str:
        self._validate_arguments("sendTextMessage", destination=destination, text=text)
        self._record("sendTextMessage", destination=destination, length=len(text))
        listener = as_status_listener(status_listener)
        message_id = self._ids.next("s60sms")

        def attempt() -> str:
            connection = self._platform.connector.open(f"sms://{destination}")
            self._trace_event("binding.connector_opened", scheme="sms")
            try:
                message = connection.new_message(connection.TEXT_MESSAGE)
                message.set_payload_text(text)
                connection.send(message)
            finally:
                connection.close()
            return message_id

        queue = getattr(self, "redelivery_queue", None)
        fallback = queue.fallback_for(destination, text) if queue else None
        result = self._invoke("sendTextMessage", attempt, fallback=fallback)
        if listener is not None and result == message_id:
            # The blocking send returned: the network accepted the message.
            listener.on_sent(message_id)
        return result


register_implementation(S60_IMPL, S60SmsProxyImpl)
