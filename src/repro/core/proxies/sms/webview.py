"""WebView binding of the SMS proxy — the literal subject of Figure 6.

``SmsWrapperFactory.create_sms_wrapper_instance()`` → handle (``swi``);
``SmsWrapper.send_text_message(swi, ...)`` → notification id; a Java-side
callback object posts sent/delivered/failed results into the Notification
Table; the JS proxy's ``notifHandler`` polls and dispatches to the local
JS callback function.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from repro.core.descriptor.model import ProxyDescriptor
from repro.core.proxies.factory import register_implementation, standard_registry
from repro.core.proxies.sms.android import AndroidSmsProxyImpl
from repro.core.proxies.sms.api import SmsProxy, UniformSmsCallback, as_status_listener
from repro.core.proxies.sms.descriptor import WEBVIEW_IMPL
from repro.core.proxies.webview_common import (
    NotificationHandler,
    WrapperBackend,
    decode_or_raise,
    encode_error,
    encode_ok,
)
from repro.core.proxy.callbacks import SmsStatusListener
from repro.errors import ProxyError
from repro.platforms.android.context import Context
from repro.platforms.webview.platform import WebViewPlatform
from repro.platforms.webview.webview import JsWindow, WebView

FACTORY_JS_NAME = "SmsWrapperFactory"
WRAPPER_JS_NAME = "SmsWrapper"


class _TablePostingStatusListener(SmsStatusListener):
    """The figure's Java 'Callback object' for SMS results."""

    def __init__(
        self, backend: WrapperBackend, notification_id: str, platform: WebViewPlatform
    ) -> None:
        self._backend = backend
        self._notification_id = notification_id
        self._platform = platform

    def _post(self, event: str, message_id: str, reason: Optional[str]) -> None:
        self._backend.notifications.post(
            self._notification_id,
            "smsStatus",
            {"event": event, "messageId": message_id, "reason": reason},
            now_ms=self._platform.clock.now_ms,
        )

    def on_sent(self, message_id: str) -> None:
        self._post("sent", message_id, None)

    def on_delivered(self, message_id: str) -> None:
        self._post("delivered", message_id, None)

    def on_failed(self, message_id: str, reason: str) -> None:
        self._post("failed", message_id, reason)


class SmsWrapperFactory:
    """Java side, step 1 (figure: ``createSmsWrapperInstance``)."""

    def __init__(self, backend: "SmsWrapperJava") -> None:
        self._backend = backend

    def create_sms_wrapper_instance(self) -> int:
        return self._backend.create_instance()


class SmsWrapperJava:
    """Java side, step 2: the ``SmsWrapper`` class behind the bridge."""

    def __init__(self, platform: WebViewPlatform, context: Context) -> None:
        self._platform = platform
        self._context = context
        self._backend = WrapperBackend(platform.notification_table)

    def create_instance(self) -> int:
        proxy = AndroidSmsProxyImpl(
            standard_registry().descriptor("Sms"), self._platform.android
        )
        proxy.set_property("context", self._context)
        return self._backend.add_instance(proxy)

    def instance_count(self) -> int:
        return self._backend.instance_count()

    # -- bridge entry points ---------------------------------------------------

    def set_property(self, handle: int, key: str, value_json: str) -> str:
        return self._backend.set_property_json(handle, key, value_json)

    def send_text_message(self, handle: int, destination: str, text: str) -> str:
        try:
            proxy = self._backend.instance(handle)
            notification_id = self._backend.notifications.new_id()
            listener = _TablePostingStatusListener(
                self._backend, notification_id, self._platform
            )
            message_id = proxy.send_text_message(destination, text, listener)
        except ProxyError as exc:
            return encode_error(exc)
        return encode_ok(
            {"messageId": message_id, "notificationId": notification_id}
        )

    def get_notifications(self, notification_id: str) -> str:
        return self._backend.notifications.drain_json(notification_id)


def install_sms_wrapper(
    webview: WebView, platform: WebViewPlatform, context: Context
) -> SmsWrapperJava:
    """Inject the Java side into a WebView (the plugin extension's job)."""
    wrapper = SmsWrapperJava(platform, context)
    webview.add_javascript_interface(SmsWrapperFactory(wrapper), FACTORY_JS_NAME)
    webview.add_javascript_interface(wrapper, WRAPPER_JS_NAME)
    return wrapper


class SmsProxyJs(SmsProxy):
    """JS side: ``com.ibm.proxies.webview.sms.SmsProxyJs``."""

    def __init__(self, descriptor: ProxyDescriptor, platform: WebViewPlatform) -> None:
        super().__init__(descriptor, "webview")
        window = platform.active_window
        if window is None:
            raise ProxyError(
                "no page is loaded; construct the JS proxy inside a page script"
            )
        self._init_in_window(window)

    @classmethod
    def in_page(cls, window: JsWindow) -> "SmsProxyJs":
        instance = cls.__new__(cls)
        SmsProxy.__init__(instance, standard_registry().descriptor("Sms"), "webview")
        instance._init_in_window(window)
        return instance

    def _init_in_window(self, window: JsWindow) -> None:
        self._window = window
        # In-page construction bypasses the proxy factory; attach the
        # device hub so bridge-crossing invocations still trace.
        if self.observability is None:
            obs = getattr(window.platform.device, "obs", None)
            if obs is not None:
                self.attach_observability(obs)
        factory = window.bridge_object(FACTORY_JS_NAME)
        self._wrapper = window.bridge_object(WRAPPER_JS_NAME)
        self._swi = factory.create_sms_wrapper_instance()
        self._handlers: Dict[str, NotificationHandler] = {}

    def set_property(self, key: str, value) -> None:
        super().set_property(key, value)
        if key != "pollInterval":
            decode_or_raise(
                self._wrapper.set_property(self._swi, key, json.dumps(value))
            )

    def send_text_message(
        self,
        destination: str,
        text: str,
        status_listener: Optional[UniformSmsCallback] = None,
    ) -> str:
        self._validate_arguments("sendTextMessage", destination=destination, text=text)
        self._record("sendTextMessage", destination=destination, length=len(text))

        def attempt() -> Dict:
            return decode_or_raise(
                self._wrapper.send_text_message(self._swi, destination, text)
            )

        queue = getattr(self, "redelivery_queue", None)
        fallback = queue.fallback_for(destination, text) if queue else None
        payload = self._invoke("sendTextMessage", attempt, fallback=fallback)
        if not isinstance(payload, dict):
            return payload  # degraded: the redelivery queue entry's id
        message_id = payload["messageId"]
        notification_id = payload["notificationId"]
        listener = as_status_listener(status_listener)
        if listener is not None:
            def dispatch(notification: Dict) -> None:
                body = notification["payload"]
                event = body["event"]
                if event == "sent":
                    listener.on_sent(body["messageId"])
                elif event == "delivered":
                    listener.on_delivered(body["messageId"])
                else:
                    listener.on_failed(body["messageId"], body.get("reason") or "")

            handler = NotificationHandler(
                self._window,
                self._wrapper,
                notification_id,
                dispatch,
                poll_interval_ms=float(self.get_property("pollInterval")),
            )
            handler.start_polling()
            self._handlers[message_id] = handler
        return message_id

    def stop_tracking(self, message_id: str) -> None:
        """Stop polling for a message's status (JS-side convenience)."""
        handler = self._handlers.pop(message_id, None)
        if handler is not None:
            handler.stop_polling()


register_implementation(WEBVIEW_IMPL, SmsProxyJs)
