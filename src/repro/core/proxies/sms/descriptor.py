"""Three-plane descriptor for the SMS proxy."""

from __future__ import annotations

from repro.core.descriptor.model import (
    BindingPlane,
    CallbackSpec,
    ExceptionSpec,
    MethodSpec,
    ParameterSpec,
    PropertySpec,
    ProxyDescriptor,
    ReturnSpec,
    SemanticPlane,
    SyntacticPlane,
    TypeBinding,
)

ANDROID_IMPL = "com.ibm.proxies.android.sms.SmsProxyImpl"
S60_IMPL = "com.ibm.S60.sms.SmsProxy"
WEBVIEW_IMPL = "com.ibm.proxies.webview.sms.SmsProxyJs"


def build_sms_descriptor() -> ProxyDescriptor:
    """Construct the full SMS descriptor."""
    semantic = SemanticPlane(
        interface="Sms",
        description="Send short text messages with uniform status callbacks",
        methods=(
            MethodSpec(
                name="sendTextMessage",
                description="Submit a text message for delivery",
                parameters=(
                    ParameterSpec("destination", "identity.phone_number", 1, "recipient number"),
                    ParameterSpec("text", "text.message", 2, "message body"),
                    ParameterSpec(
                        "statusListener",
                        "callback.sms_status",
                        3,
                        "sent/delivered/failed callbacks",
                        optional=True,
                    ),
                ),
                returns=ReturnSpec("text.message", "opaque message identifier"),
                callback=CallbackSpec(
                    parameter_name="statusListener",
                    event_name="messageStatus",
                    event_parameters=(
                        ParameterSpec("event", "text.message", 1, "sent | delivered | failed"),
                        ParameterSpec("messageId", "text.message", 2, "identifier from sendTextMessage"),
                        ParameterSpec("reason", "text.message", 3, "failure reason", optional=True),
                    ),
                ),
            ),
        ),
    )

    java = SyntacticPlane(
        language="java",
        callback_style="object",
        method_types={
            "sendTextMessage": (
                TypeBinding("destination", "java.lang.String"),
                TypeBinding("text", "java.lang.String"),
                TypeBinding("statusListener", "com.ibm.telecom.proxy.SmsStatusListener"),
            ),
        },
        return_types={"sendTextMessage": "java.lang.String"},
    )

    javascript = SyntacticPlane(
        language="javascript",
        callback_style="function",
        method_types={
            "sendTextMessage": (
                TypeBinding("destination", "string"),
                TypeBinding("text", "string"),
                TypeBinding("statusListener", "function"),
            ),
        },
        return_types={"sendTextMessage": "string"},
    )

    android = BindingPlane(
        platform="android",
        language="java",
        implementation_class=ANDROID_IMPL,
        properties=(
            PropertySpec(
                "context",
                description="Application context (PendingIntent minting, permissions)",
                type_name="object",
                required=True,
            ),
            PropertySpec(
                "serviceCenter",
                description="SMSC address override (Android scAddress parameter)",
                type_name="string",
            ),
            PropertySpec(
                "deliveryReports",
                description="Whether to request end-to-end delivery reports",
                type_name="boolean",
                default=True,
                allowed_values=(True, False),
            ),
        ),
        exceptions=(
            ExceptionSpec(
                "java.lang.SecurityException",
                maps_to="ProxyPermissionError",
                error_code=1001,
                description="SEND_SMS missing from the manifest",
            ),
            ExceptionSpec(
                "java.lang.IllegalArgumentException",
                maps_to="ProxyInvalidArgumentError",
                error_code=1003,
            ),
        ),
        notes="Sent/delivered PendingIntent broadcasts are translated to the "
        "uniform status listener inside the binding.",
    )

    s60 = BindingPlane(
        platform="s60",
        language="java",
        implementation_class=S60_IMPL,
        properties=(
            PropertySpec(
                "serviceCenter",
                description="SMSC address override (informational on S60)",
                type_name="string",
            ),
        ),
        exceptions=(
            ExceptionSpec(
                "java.io.IOException",
                maps_to="ProxyPlatformError",
                error_code=1005,
                description="GCF send failure",
            ),
            ExceptionSpec(
                "java.lang.SecurityException",
                maps_to="ProxyPermissionError",
                error_code=1001,
            ),
            ExceptionSpec(
                "java.lang.IllegalArgumentException",
                maps_to="ProxyInvalidArgumentError",
                error_code=1003,
            ),
        ),
        notes="WMA send is blocking: the binding fires 'sent' after the "
        "blocking call returns; the platform offers no delivery reports, "
        "so 'delivered' never fires here (platform capability gap).",
    )

    webview = BindingPlane(
        platform="webview",
        language="javascript",
        implementation_class=WEBVIEW_IMPL,
        properties=(
            PropertySpec(
                "serviceCenter",
                description="SMSC address override, forwarded to the Java side",
                type_name="string",
            ),
            PropertySpec(
                "deliveryReports",
                description="Whether to request end-to-end delivery reports",
                type_name="boolean",
                default=True,
                allowed_values=(True, False),
            ),
            PropertySpec(
                "pollInterval",
                description="JS notification-poll period in milliseconds",
                type_name="int",
                default=500,
            ),
        ),
        exceptions=(
            ExceptionSpec(
                "java.lang.SecurityException",
                maps_to="ProxyPermissionError",
                error_code=1001,
            ),
        ),
        notes="Status callbacks ride the Notification Table (paper Figure 6).",
    )

    descriptor = ProxyDescriptor(semantic=semantic)
    descriptor.add_syntactic(java)
    descriptor.add_syntactic(javascript)
    descriptor.add_binding(android)
    descriptor.add_binding(s60)
    descriptor.add_binding(webview)
    return descriptor
