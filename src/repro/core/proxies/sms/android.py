"""Android binding of the SMS proxy.

Hides the PendingIntent result plumbing: the binding mints private
broadcast actions for the sent/delivered intents, registers an internal
receiver, and translates result codes into uniform listener calls.
"""

from __future__ import annotations

from typing import Optional

from repro.core.descriptor.model import ProxyDescriptor
from repro.core.proxies.factory import register_implementation
from repro.core.proxies.sms.api import SmsProxy, UniformSmsCallback, as_status_listener
from repro.core.proxies.sms.descriptor import ANDROID_IMPL
from repro.core.proxy.callbacks import SmsStatusListener
from repro.errors import ProxyError
from repro.platforms.android.context import Context
from repro.platforms.android.intents import Intent, IntentFilter, IntentReceiver, PendingIntent
from repro.platforms.android.platform import AndroidPlatform
from repro.platforms.android.telephony import (
    EXTRA_MESSAGE_ID,
    EXTRA_RESULT_CODE,
    RESULT_OK,
)

_SENT_ACTION_PREFIX = "com.ibm.proxies.android.intent.action.SMS_SENT"
_DELIVERED_ACTION_PREFIX = "com.ibm.proxies.android.intent.action.SMS_DELIVERED"


class _StatusReceiver(IntentReceiver):
    """Translates result broadcasts into uniform listener events.

    Each message's receivers are one-shot: once the terminal outcome for
    their role arrives they unregister, so long-running applications do
    not accumulate dead receivers in the broadcast registry.
    """

    def __init__(self, listener: SmsStatusListener, kind: str) -> None:
        self._listener = listener
        self._kind = kind  # "sent" or "delivered"
        #: A failed send means the delivery broadcast will never come;
        #: the sent-receiver tears its sibling down too.
        self.sibling: "_StatusReceiver" = None

    def on_receive_intent(self, context: Context, intent: Intent) -> None:
        code = intent.get_extra(EXTRA_RESULT_CODE)
        message_id = intent.get_string_extra(EXTRA_MESSAGE_ID) or ""
        context.unregister_receiver(self)
        if code == RESULT_OK:
            if self._kind == "sent":
                self._listener.on_sent(message_id)
            else:
                self._listener.on_delivered(message_id)
        else:
            if self.sibling is not None:
                context.unregister_receiver(self.sibling)
            self._listener.on_failed(message_id, f"result code {code}")


class AndroidSmsProxyImpl(SmsProxy):
    """``com.ibm.proxies.android.sms.SmsProxyImpl``."""

    def __init__(self, descriptor: ProxyDescriptor, platform: AndroidPlatform) -> None:
        super().__init__(descriptor, "android")
        self._platform = platform
        self._send_counter = 0

    def _context(self, for_what: str) -> Context:
        context = self.properties.require("context", for_what)
        if not isinstance(context, Context):
            raise ProxyError(
                f"property 'context' must be an Android Context, got "
                f"{type(context).__name__}"
            )
        return context

    def send_text_message(
        self,
        destination: str,
        text: str,
        status_listener: Optional[UniformSmsCallback] = None,
    ) -> str:
        self._validate_arguments("sendTextMessage", destination=destination, text=text)
        self._record("sendTextMessage", destination=destination, length=len(text))
        listener = as_status_listener(status_listener)
        context = self._context("sendTextMessage")
        with self._guard("sendTextMessage"):
            manager = self._platform.sms_manager(context)
            sent_intent = delivery_intent = None
            if listener is not None:
                self._send_counter += 1
                sent_action = f"{_SENT_ACTION_PREFIX}_{self._send_counter}"
                sent_receiver = _StatusReceiver(listener, "sent")
                context.register_receiver(sent_receiver, IntentFilter(sent_action))
                sent_intent = PendingIntent.get_broadcast(
                    context, 0, Intent(sent_action)
                )
                if self.get_property("deliveryReports"):
                    delivered_action = (
                        f"{_DELIVERED_ACTION_PREFIX}_{self._send_counter}"
                    )
                    delivered_receiver = _StatusReceiver(listener, "delivered")
                    sent_receiver.sibling = delivered_receiver
                    context.register_receiver(
                        delivered_receiver, IntentFilter(delivered_action)
                    )
                    delivery_intent = PendingIntent.get_broadcast(
                        context, 0, Intent(delivered_action)
                    )
                self._trace_event(
                    "binding.status_receivers_registered",
                    delivery_reports=delivery_intent is not None,
                )

        def attempt() -> str:
            return manager.send_text_message(
                destination,
                self.get_property("serviceCenter"),
                text,
                sent_intent=sent_intent,
                delivery_intent=delivery_intent,
            )

        # Resilience: a transiently-refused submission can be parked on
        # the redelivery queue (attached by the factory when configured);
        # the degraded return is the queue entry's id.
        queue = getattr(self, "redelivery_queue", None)
        fallback = queue.fallback_for(destination, text) if queue else None
        return self._invoke("sendTextMessage", attempt, fallback=fallback)


register_implementation(ANDROID_IMPL, AndroidSmsProxyImpl)
