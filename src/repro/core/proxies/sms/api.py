"""The uniform SMS proxy API."""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.core.proxy.base import MProxy
from repro.core.proxy.callbacks import SmsStatusListener


class FunctionSmsStatusListener(SmsStatusListener):
    """Adapter for the JavaScript ``function`` callback style.

    The function receives ``(event, message_id, reason)`` where ``event``
    is ``"sent"``, ``"delivered"`` or ``"failed"`` (``reason`` is ``None``
    except for failures).
    """

    def __init__(self, fn: Callable[[str, str, Optional[str]], None]) -> None:
        self._fn = fn

    def on_sent(self, message_id: str) -> None:
        self._fn("sent", message_id, None)

    def on_delivered(self, message_id: str) -> None:
        self._fn("delivered", message_id, None)

    def on_failed(self, message_id: str, reason: str) -> None:
        self._fn("failed", message_id, reason)


UniformSmsCallback = Union[SmsStatusListener, Callable[[str, str, Optional[str]], None]]


def as_status_listener(callback: Optional[UniformSmsCallback]) -> Optional[SmsStatusListener]:
    """Normalize object-style and function-style callbacks."""
    if callback is None or isinstance(callback, SmsStatusListener):
        return callback
    return FunctionSmsStatusListener(callback)


class SmsProxy(MProxy):
    """Abstract uniform API; platform bindings subclass this."""

    interface = "Sms"

    def send_text_message(
        self,
        destination: str,
        text: str,
        status_listener: Optional[UniformSmsCallback] = None,
    ) -> str:
        """Submit ``text`` to ``destination``; returns a message id.

        The optional listener receives ``on_sent`` when the network accepts
        the message, then ``on_delivered`` or ``on_failed``.  Platforms
        without delivery visibility fire what they can (see each binding
        plane's notes).
        """
        raise NotImplementedError
