"""The SMS M-Proxy: uniform text messaging with status callbacks."""

from repro.core.proxies.sms.api import SmsProxy
from repro.core.proxies.sms.descriptor import build_sms_descriptor

__all__ = ["SmsProxy", "build_sms_descriptor"]
