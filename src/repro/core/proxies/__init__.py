"""Concrete M-Proxies: Location, SMS, Call, HTTP.

Each proxy subpackage ships:

* ``descriptor`` — a builder for the proxy's three-plane descriptor;
* ``api`` — the uniform interface applications program against;
* one binding module per platform (``android``, ``s60``, ``webview``),
  registered in the implementation-class table so the factory can
  instantiate them from the binding plane's ``implementation_class``
  string.

``create_proxy`` is the application-facing entry point:

    >>> proxy = create_proxy("Location", android_platform)   # doctest: +SKIP
    >>> proxy.set_property("context", activity)              # doctest: +SKIP
"""

from repro.core.proxies.factory import (
    create_proxy,
    implementation_class,
    register_implementation,
    standard_registry,
)

__all__ = [
    "create_proxy",
    "implementation_class",
    "register_implementation",
    "standard_registry",
]
