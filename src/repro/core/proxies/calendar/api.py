"""The uniform Calendar proxy API."""

from __future__ import annotations

from typing import List

from repro.core.proxy.base import MProxy
from repro.core.proxy.datatypes import CalendarEvent


class CalendarProxy(MProxy):
    """Abstract uniform API; platform bindings subclass this."""

    interface = "Calendar"

    def list_events(self) -> List[CalendarEvent]:
        """Every calendar entry, ordered by start time."""
        raise NotImplementedError

    def events_between(self, start_ms: float, end_ms: float) -> List[CalendarEvent]:
        """Entries overlapping the half-open window [start, end)."""
        raise NotImplementedError

    def add_event(self, summary: str, start_ms: float, end_ms: float) -> str:
        """Create an entry; returns its identifier.

        The ``eventLocation`` property supplies the entry's location.
        """
        raise NotImplementedError

    def remove_event(self, event_id: str) -> None:
        """Delete an entry.  Unknown ids are a no-op (uniform semantics)."""
        raise NotImplementedError
