"""WebView binding of the Calendar proxy (synchronous JSON envelopes)."""

from __future__ import annotations

import json
from typing import Dict, List

from repro.core.descriptor.model import ProxyDescriptor
from repro.core.proxies.calendar.android import AndroidCalendarProxyImpl
from repro.core.proxies.calendar.api import CalendarProxy
from repro.core.proxies.calendar.descriptor import WEBVIEW_IMPL
from repro.core.proxies.factory import register_implementation, standard_registry
from repro.core.proxies.webview_common import (
    WrapperBackend,
    decode_or_raise,
    encode_error,
    encode_ok,
)
from repro.core.proxy.datatypes import CalendarEvent
from repro.errors import ProxyError
from repro.platforms.android.context import Context
from repro.platforms.webview.platform import WebViewPlatform
from repro.platforms.webview.webview import JsWindow, WebView

FACTORY_JS_NAME = "CalendarWrapperFactory"
WRAPPER_JS_NAME = "CalendarWrapper"


def _event_payload(event: CalendarEvent) -> Dict:
    return {
        "eventId": event.event_id,
        "summary": event.summary,
        "startMs": event.start_ms,
        "endMs": event.end_ms,
        "location": event.location,
    }


def _event_from_payload(payload: Dict) -> CalendarEvent:
    return CalendarEvent(
        event_id=payload["eventId"],
        summary=payload["summary"],
        start_ms=payload["startMs"],
        end_ms=payload["endMs"],
        location=payload.get("location", ""),
    )


class CalendarWrapperFactory:
    """Java side, step 1."""

    def __init__(self, backend: "CalendarWrapperJava") -> None:
        self._backend = backend

    def create_calendar_wrapper_instance(self) -> int:
        return self._backend.create_instance()


class CalendarWrapperJava:
    """Java side, step 2: the ``CalendarWrapper`` class behind the bridge."""

    def __init__(self, platform: WebViewPlatform, context: Context) -> None:
        self._platform = platform
        self._context = context
        self._backend = WrapperBackend(platform.notification_table)

    def create_instance(self) -> int:
        proxy = AndroidCalendarProxyImpl(
            standard_registry().descriptor("Calendar"), self._platform.android
        )
        proxy.set_property("context", self._context)
        return self._backend.add_instance(proxy)

    # -- bridge entry points ---------------------------------------------------

    def set_property(self, handle: int, key: str, value_json: str) -> str:
        return self._backend.set_property_json(handle, key, value_json)

    def list_events(self, handle: int) -> str:
        try:
            events = self._backend.instance(handle).list_events()
        except ProxyError as exc:
            return encode_error(exc)
        return encode_ok({"events": [_event_payload(e) for e in events]})

    def events_between(self, handle: int, start_ms: float, end_ms: float) -> str:
        try:
            events = self._backend.instance(handle).events_between(start_ms, end_ms)
        except ProxyError as exc:
            return encode_error(exc)
        return encode_ok({"events": [_event_payload(e) for e in events]})

    def add_event(self, handle: int, summary: str, start_ms: float, end_ms: float) -> str:
        try:
            event_id = self._backend.instance(handle).add_event(
                summary, start_ms, end_ms
            )
        except ProxyError as exc:
            return encode_error(exc)
        return encode_ok({"eventId": event_id})

    def remove_event(self, handle: int, event_id: str) -> str:
        try:
            self._backend.instance(handle).remove_event(event_id)
        except ProxyError as exc:
            return encode_error(exc)
        return encode_ok()


def install_calendar_wrapper(
    webview: WebView, platform: WebViewPlatform, context: Context
) -> CalendarWrapperJava:
    """Inject the Java side into a WebView (the plugin extension's job)."""
    wrapper = CalendarWrapperJava(platform, context)
    webview.add_javascript_interface(
        CalendarWrapperFactory(wrapper), FACTORY_JS_NAME
    )
    webview.add_javascript_interface(wrapper, WRAPPER_JS_NAME)
    return wrapper


class CalendarProxyJs(CalendarProxy):
    """JS side: ``com.ibm.proxies.webview.calendar.CalendarProxyJs``."""

    def __init__(self, descriptor: ProxyDescriptor, platform: WebViewPlatform) -> None:
        super().__init__(descriptor, "webview")
        window = platform.active_window
        if window is None:
            raise ProxyError(
                "no page is loaded; construct the JS proxy inside a page script"
            )
        self._init_in_window(window)

    @classmethod
    def in_page(cls, window: JsWindow) -> "CalendarProxyJs":
        instance = cls.__new__(cls)
        CalendarProxy.__init__(
            instance, standard_registry().descriptor("Calendar"), "webview"
        )
        instance._init_in_window(window)
        return instance

    def _init_in_window(self, window: JsWindow) -> None:
        self._window = window
        factory = window.bridge_object(FACTORY_JS_NAME)
        self._wrapper = window.bridge_object(WRAPPER_JS_NAME)
        self._swi = factory.create_calendar_wrapper_instance()

    def set_property(self, key: str, value) -> None:
        super().set_property(key, value)
        decode_or_raise(self._wrapper.set_property(self._swi, key, json.dumps(value)))

    def list_events(self) -> List[CalendarEvent]:
        self._record("listEvents")
        payload = decode_or_raise(self._wrapper.list_events(self._swi))
        return [_event_from_payload(e) for e in payload["events"]]

    def events_between(self, start_ms: float, end_ms: float) -> List[CalendarEvent]:
        self._validate_arguments("eventsBetween", startMs=start_ms, endMs=end_ms)
        self._record("eventsBetween", start_ms=start_ms, end_ms=end_ms)
        payload = decode_or_raise(
            self._wrapper.events_between(self._swi, float(start_ms), float(end_ms))
        )
        return [_event_from_payload(e) for e in payload["events"]]

    def add_event(self, summary: str, start_ms: float, end_ms: float) -> str:
        self._validate_arguments(
            "addEvent", summary=summary, startMs=start_ms, endMs=end_ms
        )
        self._record("addEvent", summary=summary)
        payload = decode_or_raise(
            self._wrapper.add_event(self._swi, summary, float(start_ms), float(end_ms))
        )
        return payload["eventId"]

    def remove_event(self, event_id: str) -> None:
        self._validate_arguments("removeEvent", eventId=event_id)
        self._record("removeEvent", event_id=event_id)
        decode_or_raise(self._wrapper.remove_event(self._swi, event_id))


register_implementation(WEBVIEW_IMPL, CalendarProxyJs)
