"""Three-plane descriptor for the Calendar proxy."""

from __future__ import annotations

from repro.core.descriptor.model import (
    BindingPlane,
    ExceptionSpec,
    MethodSpec,
    ParameterSpec,
    PropertySpec,
    ProxyDescriptor,
    ReturnSpec,
    SemanticPlane,
    SyntacticPlane,
    TypeBinding,
)

ANDROID_IMPL = "com.ibm.proxies.android.calendar.CalendarProxyImpl"
S60_IMPL = "com.ibm.S60.calendar.CalendarProxy"
WEBVIEW_IMPL = "com.ibm.proxies.webview.calendar.CalendarProxyJs"


def build_calendar_descriptor() -> ProxyDescriptor:
    """Construct the full Calendar descriptor."""
    semantic = SemanticPlane(
        interface="Calendar",
        description="Read and modify the device calendar",
        methods=(
            MethodSpec(
                name="listEvents",
                description="All events, ordered by start time",
                returns=ReturnSpec("object.event", "list of uniform events"),
            ),
            MethodSpec(
                name="eventsBetween",
                description="Events overlapping a half-open time window",
                parameters=(
                    ParameterSpec("startMs", "time.instant", 1, "window start"),
                    ParameterSpec("endMs", "time.instant", 2, "window end (exclusive)"),
                ),
                returns=ReturnSpec("object.event", "overlapping uniform events"),
            ),
            MethodSpec(
                name="addEvent",
                description="Create a calendar entry",
                parameters=(
                    ParameterSpec("summary", "text.message", 1, "event title"),
                    ParameterSpec("startMs", "time.instant", 2, "start instant"),
                    ParameterSpec("endMs", "time.instant", 3, "end instant"),
                ),
                returns=ReturnSpec("text.message", "new event identifier"),
            ),
            MethodSpec(
                name="removeEvent",
                description="Delete an entry by identifier",
                parameters=(
                    ParameterSpec("eventId", "text.message", 1, "identifier from addEvent/listEvents"),
                ),
            ),
        ),
    )

    java = SyntacticPlane(
        language="java",
        callback_style="object",
        method_types={
            "listEvents": (),
            "eventsBetween": (
                TypeBinding("startMs", "long"),
                TypeBinding("endMs", "long"),
            ),
            "addEvent": (
                TypeBinding("summary", "java.lang.String"),
                TypeBinding("startMs", "long"),
                TypeBinding("endMs", "long"),
            ),
            "removeEvent": (TypeBinding("eventId", "java.lang.String"),),
        },
        return_types={
            "listEvents": "com.ibm.telecom.proxy.CalendarEvent",
            "eventsBetween": "com.ibm.telecom.proxy.CalendarEvent",
            "addEvent": "java.lang.String",
            "removeEvent": "void",
        },
    )

    javascript = SyntacticPlane(
        language="javascript",
        callback_style="function",
        method_types={
            "listEvents": (),
            "eventsBetween": (
                TypeBinding("startMs", "number"),
                TypeBinding("endMs", "number"),
            ),
            "addEvent": (
                TypeBinding("summary", "string"),
                TypeBinding("startMs", "number"),
                TypeBinding("endMs", "number"),
            ),
            "removeEvent": (TypeBinding("eventId", "string"),),
        },
        return_types={
            "listEvents": "object",
            "eventsBetween": "object",
            "addEvent": "string",
            "removeEvent": "void",
        },
    )

    android = BindingPlane(
        platform="android",
        language="java",
        implementation_class=ANDROID_IMPL,
        properties=(
            PropertySpec(
                "context",
                description="Application context used to obtain the ContentResolver",
                type_name="object",
                required=True,
            ),
            PropertySpec(
                "eventLocation",
                description="Default eventLocation column for created events",
                type_name="string",
                default="",
            ),
        ),
        exceptions=(
            ExceptionSpec(
                "java.lang.SecurityException",
                maps_to="ProxyPermissionError",
                error_code=1001,
                description="READ_CALENDAR / WRITE_CALENDAR missing",
            ),
            ExceptionSpec(
                "java.lang.IllegalArgumentException",
                maps_to="ProxyInvalidArgumentError",
                error_code=1003,
            ),
        ),
        notes="Cursor/ContentValues plumbing over the calendar provider.",
    )

    s60 = BindingPlane(
        platform="s60",
        language="java",
        implementation_class=S60_IMPL,
        properties=(
            PropertySpec(
                "eventLocation",
                description="Default LOCATION field for created events",
                type_name="string",
                default="",
            ),
        ),
        exceptions=(
            ExceptionSpec(
                "javax.microedition.pim.PIMException",
                maps_to="ProxyPlatformError",
                error_code=1005,
            ),
            ExceptionSpec(
                "java.lang.SecurityException",
                maps_to="ProxyPermissionError",
                error_code=1001,
            ),
        ),
        notes="JSR-75 EventList open/iterate/commit ceremony hidden inside "
        "the binding; window filtering is client-side (the JSR offers none).",
    )

    webview = BindingPlane(
        platform="webview",
        language="javascript",
        implementation_class=WEBVIEW_IMPL,
        properties=(
            PropertySpec(
                "eventLocation",
                description="Default location for created events",
                type_name="string",
                default="",
            ),
        ),
        exceptions=(
            ExceptionSpec(
                "java.lang.SecurityException",
                maps_to="ProxyPermissionError",
                error_code=1001,
            ),
        ),
        notes="Event lists cross the bridge as JSON.",
    )

    descriptor = ProxyDescriptor(semantic=semantic)
    descriptor.add_syntactic(java)
    descriptor.add_syntactic(javascript)
    descriptor.add_binding(android)
    descriptor.add_binding(s60)
    descriptor.add_binding(webview)
    return descriptor
