"""The Calendar M-Proxy — the second half of the paper's future-work item
("calendaring and contact list information")."""

from repro.core.proxies.calendar.api import CalendarProxy
from repro.core.proxies.calendar.descriptor import build_calendar_descriptor

__all__ = ["CalendarProxy", "build_calendar_descriptor"]
