"""S60 binding of the Calendar proxy (JSR-75 EventList underneath)."""

from __future__ import annotations

from typing import List

from repro.core.descriptor.model import ProxyDescriptor
from repro.core.proxies.calendar.api import CalendarProxy
from repro.core.proxies.calendar.descriptor import S60_IMPL
from repro.core.proxies.factory import register_implementation
from repro.core.proxy.datatypes import CalendarEvent
from repro.errors import ProxyInvalidArgumentError
from repro.platforms.s60.pim import Event, EventItem, PimStatics
from repro.platforms.s60.platform import S60Platform


def _to_uniform(item: EventItem) -> CalendarEvent:
    try:
        location = item.get_string(Event.LOCATION)
    except Exception:
        location = ""
    return CalendarEvent(
        event_id=item.record_id,
        summary=item.get_string(Event.SUMMARY),
        start_ms=item.get_date(Event.START),
        end_ms=item.get_date(Event.END),
        location=location,
    )


class S60CalendarProxyImpl(CalendarProxy):
    """``com.ibm.S60.calendar.CalendarProxy``."""

    def __init__(self, descriptor: ProxyDescriptor, platform: S60Platform) -> None:
        super().__init__(descriptor, "s60")
        self._platform = platform

    def _open(self, mode: int):
        return self._platform.pim.open_pim_list(PimStatics.EVENT_LIST, mode)

    def list_events(self) -> List[CalendarEvent]:
        self._record("listEvents")
        with self._guard("listEvents"):
            event_list = self._open(PimStatics.READ_ONLY)
            try:
                return [_to_uniform(item) for item in event_list.items()]
            finally:
                event_list.close()

    def events_between(self, start_ms: float, end_ms: float) -> List[CalendarEvent]:
        self._validate_arguments("eventsBetween", startMs=start_ms, endMs=end_ms)
        self._record("eventsBetween", start_ms=start_ms, end_ms=end_ms)
        # JSR-75 offers no window query; filter client-side (binding note).
        return [
            event
            for event in self.list_events()
            if event.start_ms < end_ms and start_ms < event.end_ms
        ]

    def add_event(self, summary: str, start_ms: float, end_ms: float) -> str:
        self._validate_arguments(
            "addEvent", summary=summary, startMs=start_ms, endMs=end_ms
        )
        if end_ms < start_ms:
            raise ProxyInvalidArgumentError("event ends before it starts")
        self._record("addEvent", summary=summary)
        with self._guard("addEvent"):
            event_list = self._open(PimStatics.READ_WRITE)
            try:
                item = event_list.create_event()
                item.add_string(Event.SUMMARY, 0, summary)
                item.add_date(Event.START, 0, start_ms)
                item.add_date(Event.END, 0, end_ms)
                location = self.get_property("eventLocation")
                if location:
                    item.add_string(Event.LOCATION, 0, location)
                item.commit()
                return item.record_id
            finally:
                event_list.close()

    def remove_event(self, event_id: str) -> None:
        self._validate_arguments("removeEvent", eventId=event_id)
        self._record("removeEvent", event_id=event_id)
        with self._guard("removeEvent"):
            event_list = self._open(PimStatics.READ_WRITE)
            try:
                for item in event_list.items():
                    if item.record_id == event_id:
                        event_list.remove_event(item)
                        return
            finally:
                event_list.close()


register_implementation(S60_IMPL, S60CalendarProxyImpl)
