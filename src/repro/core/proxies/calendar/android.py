"""Android binding of the Calendar proxy (calendar provider underneath)."""

from __future__ import annotations

from typing import List

from repro.core.descriptor.model import ProxyDescriptor
from repro.core.proxies.calendar.api import CalendarProxy
from repro.core.proxies.calendar.descriptor import ANDROID_IMPL
from repro.core.proxies.factory import register_implementation
from repro.core.proxy.datatypes import CalendarEvent
from repro.errors import ProxyError, ProxyInvalidArgumentError
from repro.platforms.android.calendar_provider import (
    CALENDAR_URI,
    COLUMN_DTEND,
    COLUMN_DTSTART,
    COLUMN_EVENT_LOCATION,
    COLUMN_ID,
    COLUMN_TITLE,
)
from repro.platforms.android.contacts import ContentValues
from repro.platforms.android.context import Context
from repro.platforms.android.platform import AndroidPlatform


class AndroidCalendarProxyImpl(CalendarProxy):
    """``com.ibm.proxies.android.calendar.CalendarProxyImpl``."""

    def __init__(self, descriptor: ProxyDescriptor, platform: AndroidPlatform) -> None:
        super().__init__(descriptor, "android")
        self._platform = platform

    def _resolver(self, for_what: str):
        context = self.properties.require("context", for_what)
        if not isinstance(context, Context):
            raise ProxyError(
                f"property 'context' must be an Android Context, got "
                f"{type(context).__name__}"
            )
        return context.get_content_resolver()

    @staticmethod
    def _drain(cursor) -> List[CalendarEvent]:
        events = []
        while cursor.move_to_next():
            events.append(
                CalendarEvent(
                    event_id=cursor.get_string(COLUMN_ID),
                    summary=cursor.get_string(COLUMN_TITLE),
                    start_ms=float(cursor.get_string(COLUMN_DTSTART)),
                    end_ms=float(cursor.get_string(COLUMN_DTEND)),
                    location=cursor.get_string(COLUMN_EVENT_LOCATION) or "",
                )
            )
        cursor.close()
        return events

    def list_events(self) -> List[CalendarEvent]:
        self._record("listEvents")
        with self._guard("listEvents"):
            return self._drain(self._resolver("listEvents").query(CALENDAR_URI))

    def events_between(self, start_ms: float, end_ms: float) -> List[CalendarEvent]:
        self._validate_arguments("eventsBetween", startMs=start_ms, endMs=end_ms)
        self._record("eventsBetween", start_ms=start_ms, end_ms=end_ms)
        # The provider has no window selection; filter client-side like a
        # real app would with a date-range selection clause.
        return [
            event
            for event in self.list_events()
            if event.start_ms < end_ms and start_ms < event.end_ms
        ]

    def add_event(self, summary: str, start_ms: float, end_ms: float) -> str:
        self._validate_arguments(
            "addEvent", summary=summary, startMs=start_ms, endMs=end_ms
        )
        if end_ms < start_ms:
            raise ProxyInvalidArgumentError("event ends before it starts")
        self._record("addEvent", summary=summary)
        with self._guard("addEvent"):
            values = ContentValues()
            values.put(COLUMN_TITLE, summary)
            values.put(COLUMN_DTSTART, start_ms)
            values.put(COLUMN_DTEND, end_ms)
            values.put(COLUMN_EVENT_LOCATION, self.get_property("eventLocation"))
            row_uri = self._resolver("addEvent").insert(CALENDAR_URI, values)
            return row_uri.rsplit("/", 1)[-1]

    def remove_event(self, event_id: str) -> None:
        self._validate_arguments("removeEvent", eventId=event_id)
        self._record("removeEvent", event_id=event_id)
        with self._guard("removeEvent"):
            self._resolver("removeEvent").delete(f"{CALENDAR_URI}/{event_id}")


register_implementation(ANDROID_IMPL, AndroidCalendarProxyImpl)
