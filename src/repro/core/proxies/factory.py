"""Proxy instantiation from descriptors.

The binding plane names its implementation module with a Java-style
qualified class string (``com.ibm.proxies.android.location.LocationProxyImpl``);
this module maps those strings to the Python classes that realize them and
builds proxies for a live platform object.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from repro.core.descriptor.registry import ProxyRegistry
from repro.core.proxy.base import MProxy
from repro.core.resilience import (
    ResiliencePolicy,
    ResilienceRuntime,
    SmsRedeliveryQueue,
)
from repro.errors import ProxyUnavailableError, RegistryError

#: implementation-class string → Python class.
_IMPLEMENTATIONS: Dict[str, Type[MProxy]] = {}


def register_implementation(class_name: str, cls: Type[MProxy]) -> None:
    """Bind an implementation-class string to a Python proxy class."""
    _IMPLEMENTATIONS[class_name] = cls


def implementation_class(class_name: str) -> Type[MProxy]:
    """Resolve an implementation-class string."""
    try:
        return _IMPLEMENTATIONS[class_name]
    except KeyError:
        raise RegistryError(
            f"no implementation registered for {class_name!r}"
        ) from None


_STANDARD_REGISTRY: Optional[ProxyRegistry] = None


#: Packaged descriptor documents, loaded in this order.
SHIPPED_DESCRIPTOR_FILES = (
    "location.xml",
    "sms.xml",
    "call.xml",
    "http.xml",
    "contacts.xml",
    "calendar.xml",
)


def descriptors_dir() -> "pathlib.Path":
    """Directory holding the shipped descriptor XML documents."""
    import pathlib

    return pathlib.Path(__file__).resolve().parent / "descriptors"


def standard_registry() -> ProxyRegistry:
    """The registry holding the shipped proxies (built once).

    Descriptors load from the packaged XML documents in
    ``repro/core/proxies/descriptors/`` — the descriptors really are data,
    schema-validated on load.  A test asserts the files stay in sync with
    the Python builders that generate them.
    """
    global _STANDARD_REGISTRY
    if _STANDARD_REGISTRY is None:
        registry = ProxyRegistry()
        base = descriptors_dir()
        for file_name in SHIPPED_DESCRIPTOR_FILES:
            registry.register_xml((base / file_name).read_text())
        _STANDARD_REGISTRY = registry
    return _STANDARD_REGISTRY


def create_proxy(
    interface: str,
    platform_object,
    registry: Optional[ProxyRegistry] = None,
    *,
    resilience=None,
) -> MProxy:
    """Instantiate the proxy binding of ``interface`` for a live platform.

    ``platform_object`` is an ``AndroidPlatform``, ``S60Platform`` or
    ``WebViewPlatform``; its ``platform_name`` selects the binding plane.
    A missing binding raises :class:`~repro.errors.ProxyUnavailableError`
    — e.g. ``create_proxy("Call", s60_platform)``, the capability gap the
    paper reports.

    ``resilience`` selects the guard attached to the new proxy:

    * ``None`` (default) — attach the passthrough-safe baseline
      :class:`~repro.core.resilience.ResiliencePolicy` (one attempt, no
      breaker; behaviourally identical to a bare proxy but with
      counters);
    * a :class:`~repro.core.resilience.ResiliencePolicy` — attach it
      (SMS proxies additionally get a ``redelivery_queue`` when the
      policy configures redelivery);
    * ``False`` — attach nothing (a completely bare proxy).

    The device's observability hub (``device.obs``) is attached to the
    proxy and its resilience runtime, so enabling tracing on the device
    instruments every proxied invocation with no per-binding wiring.
    """
    # Ensure binding modules have registered their classes.
    import repro.core.proxies.location.android  # noqa: F401
    import repro.core.proxies.location.s60  # noqa: F401
    import repro.core.proxies.location.webview  # noqa: F401
    import repro.core.proxies.sms.android  # noqa: F401
    import repro.core.proxies.sms.s60  # noqa: F401
    import repro.core.proxies.sms.webview  # noqa: F401
    import repro.core.proxies.call.android  # noqa: F401
    import repro.core.proxies.call.webview  # noqa: F401
    import repro.core.proxies.http.android  # noqa: F401
    import repro.core.proxies.http.s60  # noqa: F401
    import repro.core.proxies.http.webview  # noqa: F401
    import repro.core.proxies.contacts.android  # noqa: F401
    import repro.core.proxies.contacts.s60  # noqa: F401
    import repro.core.proxies.contacts.webview  # noqa: F401
    import repro.core.proxies.calendar.android  # noqa: F401
    import repro.core.proxies.calendar.s60  # noqa: F401
    import repro.core.proxies.calendar.webview  # noqa: F401

    registry = registry or standard_registry()
    platform_name = platform_object.platform_name
    try:
        binding = registry.binding(interface, platform_name)
    except RegistryError as exc:
        raise ProxyUnavailableError(str(exc)) from exc
    cls = implementation_class(binding.implementation_class)
    proxy = cls(registry.descriptor(interface), platform_object)
    observability = getattr(platform_object.device, "obs", None)
    if observability is not None:
        proxy.attach_observability(observability)
    if resilience is not False:
        policy = resilience if resilience is not None else ResiliencePolicy()
        runtime = ResilienceRuntime(
            policy,
            platform_object.scheduler,
            label=f"{interface}/{platform_name}",
            observability=observability,
        )
        proxy.attach_resilience(runtime)
        if interface == "Sms" and policy.redelivery is not None:
            proxy.redelivery_queue = SmsRedeliveryQueue(
                platform_object.scheduler,
                proxy.send_text_message,
                policy.redelivery,
            )
    return proxy
