"""Android binding of the Contacts proxy (ContentResolver underneath)."""

from __future__ import annotations

from typing import List

from repro.core.descriptor.model import ProxyDescriptor
from repro.core.proxies.contacts.api import ContactsProxy
from repro.core.proxies.contacts.descriptor import ANDROID_IMPL
from repro.core.proxies.factory import register_implementation
from repro.core.proxy.datatypes import Contact
from repro.errors import ProxyError
from repro.platforms.android.contacts import (
    COLUMN_DISPLAY_NAME,
    COLUMN_EMAIL,
    COLUMN_ID,
    COLUMN_NUMBER,
    CONTACTS_URI,
    ContentValues,
)
from repro.platforms.android.context import Context
from repro.platforms.android.platform import AndroidPlatform


class AndroidContactsProxyImpl(ContactsProxy):
    """``com.ibm.proxies.android.contacts.ContactsProxyImpl``."""

    def __init__(self, descriptor: ProxyDescriptor, platform: AndroidPlatform) -> None:
        super().__init__(descriptor, "android")
        self._platform = platform

    def _resolver(self, for_what: str):
        context = self.properties.require("context", for_what)
        if not isinstance(context, Context):
            raise ProxyError(
                f"property 'context' must be an Android Context, got "
                f"{type(context).__name__}"
            )
        return context.get_content_resolver()

    @staticmethod
    def _drain(cursor) -> List[Contact]:
        contacts = []
        while cursor.move_to_next():
            number = cursor.get_string(COLUMN_NUMBER)
            contacts.append(
                Contact(
                    contact_id=cursor.get_string(COLUMN_ID),
                    name=cursor.get_string(COLUMN_DISPLAY_NAME),
                    phone_numbers=(number,) if number else (),
                    email=cursor.get_string(COLUMN_EMAIL) or "",
                )
            )
        cursor.close()
        return contacts

    def list_contacts(self) -> List[Contact]:
        self._record("listContacts")
        with self._guard("listContacts"):
            cursor = self._resolver("listContacts").query(CONTACTS_URI)
            return self._drain(cursor)

    def find_by_name(self, name: str) -> List[Contact]:
        self._validate_arguments("findByName", name=name)
        self._record("findByName", name=name)
        with self._guard("findByName"):
            cursor = self._resolver("findByName").query(CONTACTS_URI, selection=name)
            return self._drain(cursor)

    def add_contact(self, name: str, phone_number: str) -> str:
        self._validate_arguments("addContact", name=name, phoneNumber=phone_number)
        self._record("addContact", name=name)
        with self._guard("addContact"):
            values = ContentValues()
            values.put(COLUMN_DISPLAY_NAME, name)
            values.put(COLUMN_NUMBER, phone_number)
            row_uri = self._resolver("addContact").insert(CONTACTS_URI, values)
            return row_uri.rsplit("/", 1)[-1]

    def remove_contact(self, contact_id: str) -> None:
        self._validate_arguments("removeContact", contactId=contact_id)
        self._record("removeContact", contact_id=contact_id)
        with self._guard("removeContact"):
            self._resolver("removeContact").delete(f"{CONTACTS_URI}/{contact_id}")


register_implementation(ANDROID_IMPL, AndroidContactsProxyImpl)
