"""WebView binding of the Contacts proxy.

Contact data is plain values, so the bridge calls are synchronous: lists
cross as JSON arrays inside the usual envelopes.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.descriptor.model import ProxyDescriptor
from repro.core.proxies.contacts.android import AndroidContactsProxyImpl
from repro.core.proxies.contacts.api import ContactsProxy
from repro.core.proxies.contacts.descriptor import WEBVIEW_IMPL
from repro.core.proxies.factory import register_implementation, standard_registry
from repro.core.proxies.webview_common import (
    WrapperBackend,
    decode_or_raise,
    encode_error,
    encode_ok,
)
from repro.core.proxy.datatypes import Contact
from repro.errors import ProxyError
from repro.platforms.android.context import Context
from repro.platforms.webview.platform import WebViewPlatform
from repro.platforms.webview.webview import JsWindow, WebView

FACTORY_JS_NAME = "ContactsWrapperFactory"
WRAPPER_JS_NAME = "ContactsWrapper"


def _contact_payload(contact: Contact) -> Dict:
    return {
        "contactId": contact.contact_id,
        "name": contact.name,
        "phoneNumbers": list(contact.phone_numbers),
        "email": contact.email,
    }


def _contact_from_payload(payload: Dict) -> Contact:
    return Contact(
        contact_id=payload["contactId"],
        name=payload["name"],
        phone_numbers=tuple(payload.get("phoneNumbers", ())),
        email=payload.get("email", ""),
    )


class ContactsWrapperFactory:
    """Java side, step 1."""

    def __init__(self, backend: "ContactsWrapperJava") -> None:
        self._backend = backend

    def create_contacts_wrapper_instance(self) -> int:
        return self._backend.create_instance()


class ContactsWrapperJava:
    """Java side, step 2: the ``ContactsWrapper`` class behind the bridge."""

    def __init__(self, platform: WebViewPlatform, context: Context) -> None:
        self._platform = platform
        self._context = context
        self._backend = WrapperBackend(platform.notification_table)

    def create_instance(self) -> int:
        proxy = AndroidContactsProxyImpl(
            standard_registry().descriptor("Contacts"), self._platform.android
        )
        proxy.set_property("context", self._context)
        return self._backend.add_instance(proxy)

    # -- bridge entry points ---------------------------------------------------

    def list_contacts(self, handle: int) -> str:
        try:
            contacts = self._backend.instance(handle).list_contacts()
        except ProxyError as exc:
            return encode_error(exc)
        return encode_ok({"contacts": [_contact_payload(c) for c in contacts]})

    def find_by_name(self, handle: int, name: str) -> str:
        try:
            contacts = self._backend.instance(handle).find_by_name(name)
        except ProxyError as exc:
            return encode_error(exc)
        return encode_ok({"contacts": [_contact_payload(c) for c in contacts]})

    def add_contact(self, handle: int, name: str, phone_number: str) -> str:
        try:
            contact_id = self._backend.instance(handle).add_contact(name, phone_number)
        except ProxyError as exc:
            return encode_error(exc)
        return encode_ok({"contactId": contact_id})

    def remove_contact(self, handle: int, contact_id: str) -> str:
        try:
            self._backend.instance(handle).remove_contact(contact_id)
        except ProxyError as exc:
            return encode_error(exc)
        return encode_ok()


def install_contacts_wrapper(
    webview: WebView, platform: WebViewPlatform, context: Context
) -> ContactsWrapperJava:
    """Inject the Java side into a WebView (the plugin extension's job)."""
    wrapper = ContactsWrapperJava(platform, context)
    webview.add_javascript_interface(
        ContactsWrapperFactory(wrapper), FACTORY_JS_NAME
    )
    webview.add_javascript_interface(wrapper, WRAPPER_JS_NAME)
    return wrapper


class ContactsProxyJs(ContactsProxy):
    """JS side: ``com.ibm.proxies.webview.contacts.ContactsProxyJs``."""

    def __init__(self, descriptor: ProxyDescriptor, platform: WebViewPlatform) -> None:
        super().__init__(descriptor, "webview")
        window = platform.active_window
        if window is None:
            raise ProxyError(
                "no page is loaded; construct the JS proxy inside a page script"
            )
        self._init_in_window(window)

    @classmethod
    def in_page(cls, window: JsWindow) -> "ContactsProxyJs":
        instance = cls.__new__(cls)
        ContactsProxy.__init__(
            instance, standard_registry().descriptor("Contacts"), "webview"
        )
        instance._init_in_window(window)
        return instance

    def _init_in_window(self, window: JsWindow) -> None:
        self._window = window
        factory = window.bridge_object(FACTORY_JS_NAME)
        self._wrapper = window.bridge_object(WRAPPER_JS_NAME)
        self._swi = factory.create_contacts_wrapper_instance()

    def list_contacts(self) -> List[Contact]:
        self._record("listContacts")
        payload = decode_or_raise(self._wrapper.list_contacts(self._swi))
        return [_contact_from_payload(c) for c in payload["contacts"]]

    def find_by_name(self, name: str) -> List[Contact]:
        self._validate_arguments("findByName", name=name)
        self._record("findByName", name=name)
        payload = decode_or_raise(self._wrapper.find_by_name(self._swi, name))
        return [_contact_from_payload(c) for c in payload["contacts"]]

    def add_contact(self, name: str, phone_number: str) -> str:
        self._validate_arguments("addContact", name=name, phoneNumber=phone_number)
        self._record("addContact", name=name)
        payload = decode_or_raise(
            self._wrapper.add_contact(self._swi, name, phone_number)
        )
        return payload["contactId"]

    def remove_contact(self, contact_id: str) -> None:
        self._validate_arguments("removeContact", contactId=contact_id)
        self._record("removeContact", contact_id=contact_id)
        decode_or_raise(self._wrapper.remove_contact(self._swi, contact_id))


register_implementation(WEBVIEW_IMPL, ContactsProxyJs)
