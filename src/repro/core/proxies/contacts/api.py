"""The uniform Contacts proxy API."""

from __future__ import annotations

from typing import List

from repro.core.proxy.base import MProxy
from repro.core.proxy.datatypes import Contact


class ContactsProxy(MProxy):
    """Abstract uniform API; platform bindings subclass this."""

    interface = "Contacts"

    def list_contacts(self) -> List[Contact]:
        """Every address-book entry, deterministically ordered."""
        raise NotImplementedError

    def find_by_name(self, name: str) -> List[Contact]:
        """Entries whose display name contains ``name`` (case-insensitive)."""
        raise NotImplementedError

    def add_contact(self, name: str, phone_number: str) -> str:
        """Create an entry; returns its identifier."""
        raise NotImplementedError

    def remove_contact(self, contact_id: str) -> None:
        """Delete an entry.  Unknown ids are a no-op (uniform semantics)."""
        raise NotImplementedError
