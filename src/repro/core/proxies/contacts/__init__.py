"""The Contacts M-Proxy — the paper's future-work interface, implemented.

"In the future, we would like to extend MobiVine implementation to cover
other platform interfaces like those related to calendaring and contact
list information."  Same three-plane treatment as the original four:
Android's ContentResolver rows, S60's JSR-75 typed items and the WebView
bridge all flatten onto one uniform API.
"""

from repro.core.proxies.contacts.api import ContactsProxy
from repro.core.proxies.contacts.descriptor import build_contacts_descriptor

__all__ = ["ContactsProxy", "build_contacts_descriptor"]
