"""S60 binding of the Contacts proxy (JSR-75 PIM underneath)."""

from __future__ import annotations

from typing import List

from repro.core.descriptor.model import ProxyDescriptor
from repro.core.proxies.contacts.api import ContactsProxy
from repro.core.proxies.contacts.descriptor import S60_IMPL
from repro.core.proxies.factory import register_implementation
from repro.core.proxy.datatypes import Contact as UniformContact
from repro.platforms.s60.pim import Contact, ContactItem, PimStatics
from repro.platforms.s60.platform import S60Platform


def _to_uniform(item: ContactItem) -> UniformContact:
    numbers = tuple(
        item.get_string(Contact.TEL, index)
        for index in range(item.count_values(Contact.TEL))
    )
    email = (
        item.get_string(Contact.EMAIL, 0)
        if item.count_values(Contact.EMAIL)
        else ""
    )
    return UniformContact(
        contact_id=item.record_id,
        name=item.get_string(Contact.FORMATTED_NAME, 0),
        phone_numbers=numbers,
        email=email,
    )


class S60ContactsProxyImpl(ContactsProxy):
    """``com.ibm.S60.contacts.ContactsProxy``."""

    def __init__(self, descriptor: ProxyDescriptor, platform: S60Platform) -> None:
        super().__init__(descriptor, "s60")
        self._platform = platform

    def _open(self, mode: int):
        return self._platform.pim.open_pim_list(PimStatics.CONTACT_LIST, mode)

    def list_contacts(self) -> List[UniformContact]:
        self._record("listContacts")
        with self._guard("listContacts"):
            contact_list = self._open(PimStatics.READ_ONLY)
            try:
                return [_to_uniform(item) for item in contact_list.items()]
            finally:
                contact_list.close()

    def find_by_name(self, name: str) -> List[UniformContact]:
        self._validate_arguments("findByName", name=name)
        self._record("findByName", name=name)
        with self._guard("findByName"):
            contact_list = self._open(PimStatics.READ_ONLY)
            try:
                return [
                    _to_uniform(item) for item in contact_list.items_matching(name)
                ]
            finally:
                contact_list.close()

    def add_contact(self, name: str, phone_number: str) -> str:
        self._validate_arguments("addContact", name=name, phoneNumber=phone_number)
        self._record("addContact", name=name)
        with self._guard("addContact"):
            contact_list = self._open(PimStatics.READ_WRITE)
            try:
                item = contact_list.create_contact()
                item.add_string(Contact.FORMATTED_NAME, 0, name)
                item.add_string(Contact.TEL, 0, phone_number)
                item.commit()
                return item.record_id
            finally:
                contact_list.close()

    def remove_contact(self, contact_id: str) -> None:
        self._validate_arguments("removeContact", contactId=contact_id)
        self._record("removeContact", contact_id=contact_id)
        with self._guard("removeContact"):
            contact_list = self._open(PimStatics.READ_WRITE)
            try:
                for item in contact_list.items():
                    if item.record_id == contact_id:
                        contact_list.remove_contact(item)
                        return
                # Unknown ids are a uniform no-op.
            finally:
                contact_list.close()


register_implementation(S60_IMPL, S60ContactsProxyImpl)
