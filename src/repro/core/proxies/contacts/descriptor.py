"""Three-plane descriptor for the Contacts proxy."""

from __future__ import annotations

from repro.core.descriptor.model import (
    BindingPlane,
    ExceptionSpec,
    MethodSpec,
    ParameterSpec,
    PropertySpec,
    ProxyDescriptor,
    ReturnSpec,
    SemanticPlane,
    SyntacticPlane,
    TypeBinding,
)

ANDROID_IMPL = "com.ibm.proxies.android.contacts.ContactsProxyImpl"
S60_IMPL = "com.ibm.S60.contacts.ContactsProxy"
WEBVIEW_IMPL = "com.ibm.proxies.webview.contacts.ContactsProxyJs"


def build_contacts_descriptor() -> ProxyDescriptor:
    """Construct the full Contacts descriptor."""
    semantic = SemanticPlane(
        interface="Contacts",
        description="Read and modify the device address book",
        methods=(
            MethodSpec(
                name="listContacts",
                description="All contacts, deterministically ordered",
                returns=ReturnSpec("object.contact", "list of uniform contacts"),
            ),
            MethodSpec(
                name="findByName",
                description="Contacts whose display name contains the fragment",
                parameters=(
                    ParameterSpec("name", "text.message", 1, "case-insensitive fragment"),
                ),
                returns=ReturnSpec("object.contact", "matching uniform contacts"),
            ),
            MethodSpec(
                name="addContact",
                description="Create an address-book entry",
                parameters=(
                    ParameterSpec("name", "text.message", 1, "display name"),
                    ParameterSpec("phoneNumber", "identity.phone_number", 2, "primary number"),
                ),
                returns=ReturnSpec("text.message", "new contact identifier"),
            ),
            MethodSpec(
                name="removeContact",
                description="Delete an entry by identifier",
                parameters=(
                    ParameterSpec("contactId", "text.message", 1, "identifier from addContact/listContacts"),
                ),
            ),
        ),
    )

    java = SyntacticPlane(
        language="java",
        callback_style="object",
        method_types={
            "listContacts": (),
            "findByName": (TypeBinding("name", "java.lang.String"),),
            "addContact": (
                TypeBinding("name", "java.lang.String"),
                TypeBinding("phoneNumber", "java.lang.String"),
            ),
            "removeContact": (TypeBinding("contactId", "java.lang.String"),),
        },
        return_types={
            "listContacts": "com.ibm.telecom.proxy.Contact",
            "findByName": "com.ibm.telecom.proxy.Contact",
            "addContact": "java.lang.String",
            "removeContact": "void",
        },
    )

    javascript = SyntacticPlane(
        language="javascript",
        callback_style="function",
        method_types={
            "listContacts": (),
            "findByName": (TypeBinding("name", "string"),),
            "addContact": (
                TypeBinding("name", "string"),
                TypeBinding("phoneNumber", "string"),
            ),
            "removeContact": (TypeBinding("contactId", "string"),),
        },
        return_types={
            "listContacts": "object",
            "findByName": "object",
            "addContact": "string",
            "removeContact": "void",
        },
    )

    android = BindingPlane(
        platform="android",
        language="java",
        implementation_class=ANDROID_IMPL,
        properties=(
            PropertySpec(
                "context",
                description="Application context used to obtain the ContentResolver",
                type_name="object",
                required=True,
            ),
        ),
        exceptions=(
            ExceptionSpec(
                "java.lang.SecurityException",
                maps_to="ProxyPermissionError",
                error_code=1001,
                description="READ_CONTACTS / WRITE_CONTACTS missing",
            ),
            ExceptionSpec(
                "java.lang.IllegalArgumentException",
                maps_to="ProxyInvalidArgumentError",
                error_code=1003,
            ),
        ),
        notes="Cursor/ContentValues plumbing hidden inside the binding.",
    )

    s60 = BindingPlane(
        platform="s60",
        language="java",
        implementation_class=S60_IMPL,
        properties=(),
        exceptions=(
            ExceptionSpec(
                "javax.microedition.pim.PIMException",
                maps_to="ProxyPlatformError",
                error_code=1005,
            ),
            ExceptionSpec(
                "java.lang.SecurityException",
                maps_to="ProxyPermissionError",
                error_code=1001,
            ),
        ),
        notes="JSR-75 open/iterate/commit ceremony hidden inside the binding.",
    )

    webview = BindingPlane(
        platform="webview",
        language="javascript",
        implementation_class=WEBVIEW_IMPL,
        properties=(),
        exceptions=(
            ExceptionSpec(
                "java.lang.SecurityException",
                maps_to="ProxyPermissionError",
                error_code=1001,
            ),
        ),
        notes="Contact lists cross the bridge as JSON.",
    )

    descriptor = ProxyDescriptor(semantic=semantic)
    descriptor.add_syntactic(java)
    descriptor.add_syntactic(javascript)
    descriptor.add_binding(android)
    descriptor.add_binding(s60)
    descriptor.add_binding(webview)
    return descriptor
