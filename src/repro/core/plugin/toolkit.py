"""A minimal model of the host development toolkit (Eclipse in the paper).

MobiVine's design constraint is *seamless integration*: proxies must appear
inside the platform vendor's existing tooling rather than a new IDE.  The
substrate models just enough of a toolkit for that integration to be
observable: projects with source files, classpaths, resources, and a
plugin registration point (the Snippet-Contributor analogue).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import ConfigurationError


@dataclass
class CodeFile:
    """One source file in a project."""

    name: str
    content: str = ""
    language: str = "java"

    def insert_at_marker(self, marker: str, snippet: str) -> None:
        """Insert ``snippet`` at the line containing ``marker``.

        This models drag-and-drop into the editor at the cursor location.
        """
        if marker not in self.content:
            raise ConfigurationError(
                f"marker {marker!r} not found in {self.name}"
            )
        self.content = self.content.replace(marker, snippet, 1)

    @property
    def line_count(self) -> int:
        return len(self.content.splitlines())


@dataclass
class Project:
    """A toolkit project targeting one platform."""

    name: str
    platform: str  # "android" | "s60" | "webview"
    language: str = "java"
    files: Dict[str, CodeFile] = field(default_factory=dict)
    classpath: List[str] = field(default_factory=list)
    resources: List[str] = field(default_factory=list)

    def add_file(self, code_file: CodeFile) -> None:
        if code_file.name in self.files:
            raise ConfigurationError(f"file {code_file.name!r} already in project")
        self.files[code_file.name] = code_file

    def file(self, name: str) -> CodeFile:
        try:
            return self.files[name]
        except KeyError:
            raise ConfigurationError(f"no file {name!r} in project {self.name!r}") from None

    def add_classpath_entry(self, entry: str) -> None:
        """Idempotent classpath wiring (re-embedding must not duplicate)."""
        if entry not in self.classpath:
            self.classpath.append(entry)

    def add_resource(self, resource: str) -> None:
        if resource not in self.resources:
            self.resources.append(resource)


class Toolkit:
    """The host IDE: projects plus registered plugins."""

    def __init__(self, name: str = "eclipse") -> None:
        self.name = name
        self._projects: Dict[str, Project] = {}
        self._plugins: List[object] = []

    def create_project(self, name: str, platform: str, language: str = "java") -> Project:
        if name in self._projects:
            raise ConfigurationError(f"project {name!r} already exists")
        project = Project(name=name, platform=platform, language=language)
        self._projects[name] = project
        return project

    def project(self, name: str) -> Project:
        try:
            return self._projects[name]
        except KeyError:
            raise ConfigurationError(f"no project {name!r}") from None

    def register_plugin(self, plugin: object) -> None:
        """The Eclipse plug-in extension point."""
        self._plugins.append(plugin)

    @property
    def plugins(self) -> List[object]:
        return list(self._plugins)
