"""The Proxy Drawer (paper Figure 7a).

A categorized store of proxies: each proxy interface is a *category*, each
of its APIs an *item*.  Contents come straight from the registry, filtered
to the plugin's platform — so an S60 drawer simply has no Call category,
matching the platform's capability gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.descriptor.registry import ProxyRegistry
from repro.errors import RegistryError


@dataclass(frozen=True)
class DrawerItem:
    """One draggable API entry in the drawer."""

    category: str  # proxy interface, e.g. "Location"
    name: str  # canonical method, e.g. "addProximityAlert"
    description: str


class ProxyDrawer:
    """The Snippets-view model for one platform."""

    def __init__(self, registry: ProxyRegistry, platform: str) -> None:
        self._registry = registry
        self.platform = platform

    def categories(self) -> List[str]:
        """Proxy interfaces available on this platform, sorted."""
        return self._registry.interfaces_for_platform(self.platform)

    def items(self, category: str) -> List[DrawerItem]:
        """The APIs of one proxy, as drawer items."""
        if category not in self.categories():
            raise RegistryError(
                f"proxy {category!r} is not available on {self.platform!r}"
            )
        descriptor = self._registry.descriptor(category)
        return [
            DrawerItem(category=category, name=method.name, description=method.description)
            for method in descriptor.semantic.methods
        ]

    def all_items(self) -> Dict[str, List[DrawerItem]]:
        """The full drawer: category → items."""
        return {category: self.items(category) for category in self.categories()}

    def find(self, category: str, item_name: str) -> DrawerItem:
        """Locate one item (the drag source for a drop action)."""
        for item in self.items(category):
            if item.name == item_name:
                return item
        raise RegistryError(f"no item {item_name!r} in category {category!r}")
