"""Invocation-code generation (plugin feature 3).

Given a configured proxy API, the generators emit the snippet the plugin
drops into the editor — Figure 8 for Java, Figure 9 for JavaScript, plus a
Python generator targeting this reproduction's own runnable API.  One
common generation routine walks the descriptor; per-language subclasses
supply syntax — mirroring the paper's claim that a common proxy
interpretation routine powers every plugin.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.descriptor.model import MethodSpec, ProxyDescriptor
from repro.errors import ConfigurationError


def _simple_class_name(qualified: str) -> str:
    return qualified.rsplit(".", 1)[-1]


class CodeGenerator:
    """Language-independent walk; subclasses provide syntax."""

    language = "abstract"

    def generate(
        self,
        descriptor: ProxyDescriptor,
        method_name: str,
        platform: str,
        variables: Dict[str, Any],
        properties: Dict[str, Any],
        *,
        callback_target: Optional[str] = None,
    ) -> str:
        """Render the invocation snippet.

        ``variables`` maps semantic parameter names to literal values or
        identifier strings; ``properties`` maps property names to values;
        ``callback_target`` names the handler (``this`` / a function name)
        for APIs with a callback parameter.
        """
        method = descriptor.semantic.method(method_name)
        binding = descriptor.binding_for(platform)
        impl = _simple_class_name(binding.implementation_class)
        arguments: List[str] = []
        for parameter in method.ordered_parameters():
            if (
                method.callback is not None
                and parameter.name == method.callback.parameter_name
            ):
                arguments.append(callback_target or self.default_callback_target())
            elif parameter.name in variables:
                arguments.append(self.render_value(variables[parameter.name]))
            else:
                arguments.append(parameter.name)  # reference a user variable
        lines: List[str] = []
        lines.extend(self.prologue(impl))
        for key in sorted(properties):
            lines.append(self.property_line(key, properties[key]))
        lines.append(self.call_line(method, arguments))
        exceptions = [e.platform_class for e in binding.exceptions]
        return self.wrap_try(lines, exceptions, platform)

    # -- syntax hooks ---------------------------------------------------------

    def default_callback_target(self) -> str:
        raise NotImplementedError

    def render_value(self, value: Any) -> str:
        raise NotImplementedError

    def prologue(self, impl_class: str) -> List[str]:
        raise NotImplementedError

    def property_line(self, key: str, value: Any) -> str:
        raise NotImplementedError

    def call_line(self, method: MethodSpec, arguments: List[str]) -> str:
        raise NotImplementedError

    def wrap_try(self, lines: List[str], exceptions: List[str], platform: str) -> str:
        raise NotImplementedError


class JavaGenerator(CodeGenerator):
    """Figure-8 style Java snippets (Android and S60 projects)."""

    language = "java"

    def default_callback_target(self) -> str:
        return "this"

    def render_value(self, value: Any) -> str:
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, str):
            return f'"{value}"'
        return str(value)

    def prologue(self, impl_class: str) -> List[str]:
        return [f"{impl_class} proxy = new {impl_class}();"]

    def property_line(self, key: str, value: Any) -> str:
        rendered = "this" if value == "__context__" else self.render_value(value)
        return f'proxy.setProperty("{key}", {rendered});'

    def call_line(self, method: MethodSpec, arguments: List[str]) -> str:
        return f"proxy.{method.name}({', '.join(arguments)});"

    def wrap_try(self, lines: List[str], exceptions: List[str], platform: str) -> str:
        body = "\n".join(f"    {line}" for line in lines)
        comment = f"// Handle {platform} specific exceptions"
        if exceptions:
            comment += ": " + ", ".join(
                _simple_class_name(name) for name in exceptions
            )
        return f"try {{\n{body}\n}} catch (Exception e) {{\n    {comment}\n}}"


class JavascriptGenerator(CodeGenerator):
    """Figure-9 style JavaScript snippets (WebView projects)."""

    language = "javascript"

    def default_callback_target(self) -> str:
        return "callbackFunction"

    def render_value(self, value: Any) -> str:
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, str):
            return f'"{value}"'
        return str(value)

    def prologue(self, impl_class: str) -> List[str]:
        return [f"var proxy = new {impl_class}();"]

    def property_line(self, key: str, value: Any) -> str:
        return f'proxy.setProperty("{key}", {self.render_value(value)});'

    def call_line(self, method: MethodSpec, arguments: List[str]) -> str:
        return f"proxy.{method.name}({', '.join(arguments)});"

    def wrap_try(self, lines: List[str], exceptions: List[str], platform: str) -> str:
        body = "\n".join(f"    {line}" for line in lines)
        return (
            f"try {{\n{body}\n}} catch (ex) {{\n"
            f"    // Handle {platform} specific error codes\n}}"
        )


class PythonGenerator(CodeGenerator):
    """Snippets targeting this reproduction's runnable Python API."""

    language = "python"

    _SNAKE = {
        "addProximityAlert": "add_proximity_alert",
        "removeProximityAlert": "remove_proximity_alert",
        "getLocation": "get_location",
        "sendTextMessage": "send_text_message",
        "makeACall": "make_a_call",
        "endCall": "end_call",
        "get": "get",
        "post": "post",
    }

    def default_callback_target(self) -> str:
        return "listener"

    def render_value(self, value: Any) -> str:
        return repr(value)

    def prologue(self, impl_class: str) -> List[str]:
        return ["proxy = create_proxy(interface, platform)"]

    def property_line(self, key: str, value: Any) -> str:
        rendered = "context" if value == "__context__" else self.render_value(value)
        return f"proxy.set_property({key!r}, {rendered})"

    def call_line(self, method: MethodSpec, arguments: List[str]) -> str:
        snake = self._SNAKE.get(method.name, method.name)
        return f"proxy.{snake}({', '.join(arguments)})"

    def wrap_try(self, lines: List[str], exceptions: List[str], platform: str) -> str:
        body = "\n".join(f"    {line}" for line in lines)
        return (
            f"try:\n{body}\nexcept ProxyError as exc:\n"
            f"    ...  # uniform errors replace {platform}-specific exceptions"
        )


class CGenerator(CodeGenerator):
    """C-style snippets: callbacks are function pointers (paper §3.1)."""

    language = "c"

    def default_callback_target(self) -> str:
        return "&callback_function"

    def render_value(self, value: Any) -> str:
        if isinstance(value, bool):
            return "1" if value else "0"
        if isinstance(value, str):
            return f'"{value}"'
        return str(value)

    def prologue(self, impl_class: str) -> List[str]:
        handle = impl_class.lower()
        return [f"{impl_class}_t *proxy = {handle}_new();"]

    def property_line(self, key: str, value: Any) -> str:
        return f'proxy_set_property(proxy, "{key}", {self.render_value(value)});'

    def call_line(self, method: MethodSpec, arguments: List[str]) -> str:
        snake = "".join(
            f"_{c.lower()}" if c.isupper() else c for c in method.name
        )
        return f"proxy_{snake}(proxy, {', '.join(arguments)});"

    def wrap_try(self, lines: List[str], exceptions: List[str], platform: str) -> str:
        body = "\n".join(lines)
        return (
            f"{body}\n"
            f"if (proxy_last_error(proxy) != PROXY_OK) {{\n"
            f"    /* handle {platform} specific error codes */\n}}"
        )


_GENERATORS: Dict[str, CodeGenerator] = {
    "java": JavaGenerator(),
    "javascript": JavascriptGenerator(),
    "python": PythonGenerator(),
    "c": CGenerator(),
}


def generator_for(language: str) -> CodeGenerator:
    """Resolve a generator by language name."""
    try:
        return _GENERATORS[language]
    except KeyError:
        raise ConfigurationError(f"no code generator for {language!r}") from None
