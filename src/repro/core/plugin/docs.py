"""Proxy documentation rendering.

The plugin's *presentation* feature, reusable outside the dialog: render a
descriptor's three planes as human-readable markdown — the reference page
a toolkit would show for a proxy, generated from the same structured data
that drives the runtime.
"""

from __future__ import annotations

from typing import List

from repro.core.descriptor.model import ProxyDescriptor
from repro.core.descriptor.registry import ProxyRegistry
from repro.obs.report import instrumentation_points


def render_proxy_markdown(descriptor: ProxyDescriptor) -> str:
    """One proxy's reference page."""
    lines: List[str] = [f"# {descriptor.interface} proxy"]
    if descriptor.semantic.description:
        lines += ["", descriptor.semantic.description]

    lines += ["", "## Interface (semantic plane)"]
    for method in descriptor.semantic.methods:
        signature = ", ".join(
            parameter.name for parameter in method.ordered_parameters()
        )
        lines += ["", f"### `{method.name}({signature})`"]
        if method.description:
            lines += ["", method.description]
        if method.parameters:
            lines += ["", "| parameter | dimension | meaning |", "|---|---|---|"]
            for parameter in method.ordered_parameters():
                optional = " *(optional)*" if parameter.optional else ""
                lines.append(
                    f"| `{parameter.name}` | `{parameter.dimension}` | "
                    f"{parameter.description}{optional} |"
                )
        if method.callback is not None:
            event_parameters = ", ".join(
                p.name for p in method.callback.event_parameters
            )
            lines += [
                "",
                f"Callback: `{method.callback.event_name}({event_parameters})` "
                f"on the `{method.callback.parameter_name}` argument.",
            ]
        if method.returns is not None:
            lines += ["", f"Returns: `{method.returns.dimension}` — {method.returns.description}"]

    lines += ["", "## Language types (syntactic planes)"]
    for language in descriptor.languages():
        plane = descriptor.syntactic[language]
        lines += ["", f"### {language} (callback style: {plane.callback_style})"]
        for method_name in sorted(plane.method_types):
            bindings = plane.method_types[method_name]
            typed = ", ".join(
                f"{binding.type_name} {binding.parameter_name}" for binding in bindings
            )
            return_type = plane.return_types.get(method_name, "void")
            lines.append(f"- `{return_type} {method_name}({typed})`")

    lines += ["", "## Platform bindings (binding planes)"]
    for platform in descriptor.platforms():
        binding = descriptor.bindings[platform]
        lines += ["", f"### {platform}", "", f"Implementation: `{binding.implementation_class}`"]
        if binding.properties:
            lines += ["", "| property | type | default | allowed | required |", "|---|---|---|---|---|"]
            for spec in binding.properties:
                allowed = (
                    ", ".join(str(v) for v in spec.allowed_values)
                    if spec.allowed_values
                    else "—"
                )
                lines.append(
                    f"| `{spec.name}` | {spec.type_name} | {spec.default!r} | "
                    f"{allowed} | {'yes' if spec.required else 'no'} |"
                )
        if binding.exceptions:
            lines += ["", "Exceptions:"]
            for exc in binding.exceptions:
                lines.append(
                    f"- `{exc.platform_class}` → `{exc.maps_to}` (code {exc.error_code})"
                )
        if binding.notes:
            lines += ["", f"> {binding.notes}"]

    lines += [
        "",
        "## Observability (instrumentation points)",
        "",
        "With tracing enabled every invocation produces this span tree "
        "(virtual-clock timed; see [OBSERVABILITY.md](OBSERVABILITY.md)):",
    ]
    for point in instrumentation_points(descriptor):
        lines += ["", f"### `{point['method']}`"]
        lines += [f"- span: `{span}`" for span in point["spans"]]
        lines += [f"- metric: `{metric}`" for metric in point["metrics"]]
    return "\n".join(lines) + "\n"


def render_registry_markdown(registry: ProxyRegistry) -> str:
    """The full proxy catalogue as one document."""
    sections = [render_proxy_markdown(registry.descriptor(name)) for name in registry.interfaces()]
    coverage = ["# MobiVine proxy catalogue", "", "| interface | platforms |", "|---|---|"]
    for name in registry.interfaces():
        platforms = ", ".join(registry.descriptor(name).platforms())
        coverage.append(f"| {name} | {platforms} |")
    coverage += [
        "",
        "Every binding runs under the middleware's resilience layer — "
        "per-operation retry, timeout, circuit breaking and graceful "
        "degradation; see [RESILIENCE.md](RESILIENCE.md).",
    ]
    return "\n".join(coverage) + "\n\n" + "\n".join(sections)
