"""Platform-specific plugin extensions (plugin feature 4: embedding).

Each platform has its own deployment semantics; the extension absorbs
them (paper Section 4.2, "Platform Specific Extensions"):

* **Android** — proxy implementation jars join the project's classpath
  and resource structure.
* **S60** — same, *plus* the deployment-time merge of every chosen proxy
  jar into the application jar, because the platform requires a single
  J2ME MIDlet-suite bundle; the JAD gains the permissions the proxies
  need.
* **WebView** — the JS proxy implementation files are injected into the
  project and the Java 'Wrapper' objects are wired through
  ``add_javascript_interface`` calls.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.plugin.toolkit import CodeFile, Project
from repro.errors import ConfigurationError
from repro.platforms.s60.packaging import Jar, JarEntry, JadDescriptor, MidletSuite

#: Proxy implementation artifacts per (platform, interface): jar name and
#: nominal entry sizes (bytes) for the packaging model.
_PROXY_JARS: Dict[str, Dict[str, List[JarEntry]]] = {
    "android": {
        "Location": [JarEntry("com/ibm/proxies/android/location/LocationProxyImpl.class", 6144)],
        "Sms": [JarEntry("com/ibm/proxies/android/sms/SmsProxyImpl.class", 4096)],
        "Call": [JarEntry("com/ibm/proxies/android/call/CallProxyImpl.class", 3072)],
        "Http": [JarEntry("com/ibm/proxies/android/http/HttpProxyImpl.class", 3584)],
        "Contacts": [JarEntry("com/ibm/proxies/android/contacts/ContactsProxyImpl.class", 4608)],
        "Calendar": [JarEntry("com/ibm/proxies/android/calendar/CalendarProxyImpl.class", 4352)],
    },
    "s60": {
        "Location": [JarEntry("com/ibm/S60/location/LocationProxy.class", 8192)],
        "Sms": [JarEntry("com/ibm/S60/sms/SmsProxy.class", 3584)],
        "Http": [JarEntry("com/ibm/S60/http/HttpProxy.class", 3072)],
        "Contacts": [JarEntry("com/ibm/S60/contacts/ContactsProxy.class", 5120)],
        "Calendar": [JarEntry("com/ibm/S60/calendar/CalendarProxy.class", 4864)],
    },
}

#: MIDP permissions each S60 proxy needs in the suite descriptor.
_S60_PERMISSIONS: Dict[str, List[str]] = {
    "Location": ["javax.microedition.location.Location"],
    "Sms": ["javax.wireless.messaging.sms.send"],
    "Http": ["javax.microedition.io.Connector.http"],
    "Contacts": [
        "javax.microedition.pim.ContactList.read",
        "javax.microedition.pim.ContactList.write",
    ],
    "Calendar": [
        "javax.microedition.pim.EventList.read",
        "javax.microedition.pim.EventList.write",
    ],
}

#: JS implementation files per interface for WebView projects.
_WEBVIEW_JS_FILES: Dict[str, str] = {
    "Location": "proxies/location_proxy.js",
    "Sms": "proxies/sms_proxy.js",
    "Call": "proxies/call_proxy.js",
    "Http": "proxies/http_proxy.js",
    "Contacts": "proxies/contacts_proxy.js",
    "Calendar": "proxies/calendar_proxy.js",
}

#: JS global pairs (factory, wrapper) injected per interface.
_WEBVIEW_WRAPPERS: Dict[str, tuple] = {
    "Location": ("LocationWrapperFactory", "LocationWrapper"),
    "Sms": ("SmsWrapperFactory", "SmsWrapper"),
    "Call": ("CallWrapperFactory", "CallWrapper"),
    "Http": ("HttpWrapperFactory", "HttpWrapper"),
    "Contacts": ("ContactsWrapperFactory", "ContactsWrapper"),
    "Calendar": ("CalendarWrapperFactory", "CalendarWrapper"),
}


def proxy_jar(platform: str, interface: str) -> Jar:
    """The implementation jar artifact for (platform, interface)."""
    try:
        entries = _PROXY_JARS[platform][interface]
    except KeyError:
        raise ConfigurationError(
            f"no {platform} proxy jar for interface {interface!r}"
        ) from None
    return Jar(f"mobivine-{interface.lower()}-{platform}.jar", entries)


class AndroidPlatformExtension:
    """Embedding rules for Android projects."""

    platform = "android"

    def embed_proxy(self, project: Project, interface: str) -> None:
        """Wire a proxy's jar into the project (idempotent)."""
        jar = proxy_jar("android", interface)
        project.add_classpath_entry(jar.name)
        project.add_resource(f"libs/{jar.name}")


class S60PlatformExtension:
    """Embedding + deployment rules for S60 projects."""

    platform = "s60"

    def __init__(self) -> None:
        self._chosen: Dict[str, List[str]] = {}

    def embed_proxy(self, project: Project, interface: str) -> None:
        """Wire a proxy's jar into the project and remember it for the
        deployment-time merge."""
        jar = proxy_jar("s60", interface)
        project.add_classpath_entry(jar.name)
        chosen = self._chosen.setdefault(project.name, [])
        if interface not in chosen:
            chosen.append(interface)

    def chosen_interfaces(self, project: Project) -> List[str]:
        return list(self._chosen.get(project.name, []))

    def build_suite(
        self,
        project: Project,
        application_jar: Jar,
        jad: Optional[JadDescriptor] = None,
    ) -> MidletSuite:
        """Deployment: merge chosen proxy jars into the application jar.

        The platform requires one bundle, so the suite jar contains the
        application classes *and* every proxy implementation; the JAD
        gains the MIDP permissions those proxies need.
        """
        descriptor = jad or JadDescriptor(midlet_name=project.name)
        proxy_jars = [
            proxy_jar("s60", interface)
            for interface in self.chosen_interfaces(project)
        ]
        merged = application_jar.merged_with(*proxy_jars)
        for interface in self.chosen_interfaces(project):
            for permission in _S60_PERMISSIONS.get(interface, []):
                descriptor.require_permission(permission)
        return MidletSuite(jad=descriptor, jar=merged)


class WebViewPlatformExtension:
    """Embedding rules for WebView projects.

    Two halves: at *build* time, inject the JS proxy implementation files
    and generate the ``addJavascriptInterface`` wiring source; at *run*
    time, actually install the Java wrapper objects into a live WebView.
    """

    platform = "webview"

    def embed_proxy(self, project: Project, interface: str) -> None:
        """Inject the JS implementation file and wiring code."""
        js_file = _WEBVIEW_JS_FILES.get(interface)
        if js_file is None:
            raise ConfigurationError(f"no WebView artifacts for {interface!r}")
        if js_file not in project.files:
            project.add_file(
                CodeFile(
                    name=js_file,
                    content=f"// MobiVine {interface} JS proxy implementation\n",
                    language="javascript",
                )
            )
        project.add_resource(js_file)
        wiring_name = "WebViewWiring.java"
        if wiring_name not in project.files:
            project.add_file(
                CodeFile(
                    name=wiring_name,
                    content="// generated addJavascriptInterface wiring\n",
                    language="java",
                )
            )
        factory_name, wrapper_name = _WEBVIEW_WRAPPERS[interface]
        wiring = project.file(wiring_name)
        line = (
            f"webView.addJavascriptInterface(new {wrapper_name}(context), "
            f'"{wrapper_name}"); // + {factory_name}\n'
        )
        if line not in wiring.content:
            wiring.content += line

    def install_wrappers(self, webview, platform, context, interfaces: Iterable[str]) -> Dict[str, object]:
        """Run-time half: inject live Java wrapper objects into a WebView."""
        from repro.core.proxies.location.webview import install_location_wrapper
        from repro.core.proxies.sms.webview import install_sms_wrapper
        from repro.core.proxies.call.webview import install_call_wrapper
        from repro.core.proxies.http.webview import install_http_wrapper
        from repro.core.proxies.contacts.webview import install_contacts_wrapper
        from repro.core.proxies.calendar.webview import install_calendar_wrapper

        installers = {
            "Location": install_location_wrapper,
            "Sms": install_sms_wrapper,
            "Call": install_call_wrapper,
            "Http": install_http_wrapper,
            "Contacts": install_contacts_wrapper,
            "Calendar": install_calendar_wrapper,
        }
        installed = {}
        for interface in interfaces:
            if interface not in installers:
                raise ConfigurationError(f"no WebView wrapper for {interface!r}")
            installed[interface] = installers[interface](webview, platform, context)
        return installed


def extension_for(platform: str):
    """Construct the right extension for a platform name."""
    extensions = {
        "android": AndroidPlatformExtension,
        "s60": S60PlatformExtension,
        "webview": WebViewPlatformExtension,
    }
    try:
        return extensions[platform]()
    except KeyError:
        raise ConfigurationError(f"no platform extension for {platform!r}") from None
