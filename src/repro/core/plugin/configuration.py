"""The Proxy Configuration dialog (paper Figure 7b).

For one drawer item, the dialog presents two columns:

* **Variables** — the semantic plane's parameters, each with its
  description and dimension (the callback parameter is shown as the
  handler slot);
* **Properties** — the binding plane's platform attributes, each with its
  description, default and allowed values (e.g. the paper's
  ``powerConsumption`` snapshot).

User inputs are validated immediately (dimension bounds for variables,
allowed values for properties) and the Source view previews the generated
code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.descriptor.model import ProxyDescriptor
from repro.core.descriptor.typesys import STANDARD_DIMENSIONS
from repro.core.plugin.codegen import generator_for
from repro.errors import ConfigurationError

#: Platform → default snippet language.
_PLATFORM_LANGUAGE = {"android": "java", "s60": "java", "webview": "javascript"}


@dataclass(frozen=True)
class DialogField:
    """One row of the dialog: a variable or a property."""

    kind: str  # "variable" | "property"
    name: str
    description: str
    type_name: str
    default: Optional[Any] = None
    allowed_values: Tuple[Any, ...] = ()
    required: bool = False


class ConfigurationDialog:
    """Model of the configuration dialog for one (API, platform) pair."""

    def __init__(
        self,
        descriptor: ProxyDescriptor,
        method_name: str,
        platform: str,
        *,
        language: Optional[str] = None,
    ) -> None:
        self.descriptor = descriptor
        self.method = descriptor.semantic.method(method_name)
        self.binding = descriptor.binding_for(platform)
        self.platform = platform
        self.language = language or _PLATFORM_LANGUAGE[platform]
        self._variables: Dict[str, Any] = {}
        self._properties: Dict[str, Any] = {}
        self._callback_target: Optional[str] = None

    # -- presentation (plugin feature 2) ----------------------------------------

    def variable_fields(self) -> List[DialogField]:
        """The Variables column."""
        syntactic = self.descriptor.syntactic[self.language]
        fields = []
        for parameter in self.method.ordered_parameters():
            fields.append(
                DialogField(
                    kind="variable",
                    name=parameter.name,
                    description=parameter.description,
                    type_name=syntactic.type_of(self.method.name, parameter.name),
                    required=not parameter.optional,
                )
            )
        return fields

    def property_fields(self) -> List[DialogField]:
        """The Properties column (platform attributes)."""
        return [
            DialogField(
                kind="property",
                name=spec.name,
                description=spec.description,
                type_name=spec.type_name,
                default=spec.default,
                allowed_values=spec.allowed_values,
                required=spec.required,
            )
            for spec in self.binding.properties
        ]

    # -- configuration (plugin feature 3) -----------------------------------------

    def set_variable(self, name: str, value: Any) -> None:
        """Provide a value for a semantic parameter (dimension-checked)."""
        parameter = self.method.parameter(name)
        if not isinstance(value, str) or _is_literal_string_dimension(
            parameter.dimension
        ):
            # Literal values are checked against the dimension; bare
            # identifier strings (references to user variables) are not.
            try:
                parameter.validate_value(value)
            except ValueError as exc:
                raise ConfigurationError(str(exc)) from exc
        self._variables[name] = value

    def set_property(self, name: str, value: Any) -> None:
        """Provide a value for a platform property (allowed-values-checked)."""
        spec = self.binding.property_spec(name)
        try:
            spec.validate_value(value)
        except ValueError as exc:
            raise ConfigurationError(str(exc)) from exc
        self._properties[name] = value

    def set_callback_target(self, target: str) -> None:
        """Name the handler object/function for the callback parameter."""
        self._callback_target = target

    def validation_issues(self) -> List[str]:
        """Everything still missing before code can be embedded."""
        issues = []
        for spec in self.binding.properties:
            if spec.required and spec.name not in self._properties and spec.default is None:
                issues.append(f"required property {spec.name!r} is not set")
        callback_name = (
            self.method.callback.parameter_name
            if self.method.callback is not None
            else None
        )
        for parameter in self.method.parameters:
            if parameter.name == callback_name or parameter.optional:
                continue
            if parameter.name not in self._variables:
                # Unset variables are emitted as identifier references,
                # which is valid — but surface it so the user notices.
                issues.append(
                    f"variable {parameter.name!r} will reference an "
                    "identifier of the same name"
                )
        return issues

    # -- the Source view -----------------------------------------------------------

    def preview(self) -> str:
        """Generate the invocation snippet for the Source view."""
        effective_properties = dict(self._properties)
        for spec in self.binding.properties:
            if spec.required and spec.name not in effective_properties:
                if spec.name == "context":
                    effective_properties["context"] = "__context__"
        return generator_for(self.language).generate(
            self.descriptor,
            self.method.name,
            self.platform,
            self._variables,
            effective_properties,
            callback_target=self._callback_target,
        )


def _is_literal_string_dimension(dimension: str) -> bool:
    spec = STANDARD_DIMENSIONS.get(dimension)
    return spec.python_type is str
