"""The MobiVine Plug-in: the four features tied together.

One plugin instance per platform, registered into the host toolkit; the
flow mirrors a developer's: browse the drawer → open the configuration
dialog → preview generated code → embed into a project file.
"""

from __future__ import annotations


from repro.core.descriptor.registry import ProxyRegistry
from repro.core.plugin.configuration import ConfigurationDialog
from repro.core.plugin.drawer import DrawerItem, ProxyDrawer
from repro.core.plugin.packaging import extension_for
from repro.core.plugin.toolkit import Project, Toolkit
from repro.errors import ConfigurationError


class MobiVinePlugin:
    """A platform's MobiVine plug-in inside the host toolkit."""

    def __init__(
        self,
        toolkit: Toolkit,
        registry: ProxyRegistry,
        platform: str,
    ) -> None:
        self.toolkit = toolkit
        self.registry = registry
        self.platform = platform
        #: Feature 1: proxy visibility.
        self.drawer = ProxyDrawer(registry, platform)
        #: Feature 4: platform-specific embedding rules.
        self.extension = extension_for(platform)
        toolkit.register_plugin(self)

    # -- feature 2: presentation ------------------------------------------------

    def open_configuration(self, item: DrawerItem) -> ConfigurationDialog:
        """Open the configuration dialog for a drawer item."""
        descriptor = self.registry.descriptor(item.category)
        return ConfigurationDialog(descriptor, item.name, self.platform)

    # -- feature 4: embedding ----------------------------------------------------

    def embed(
        self,
        project: Project,
        dialog: ConfigurationDialog,
        *,
        file_name: str,
        marker: str,
    ) -> str:
        """Drop the configured proxy into a project.

        Inserts the generated snippet at ``marker`` in ``file_name`` and
        wires the implementation artifacts per the platform extension.
        Returns the embedded snippet.
        """
        if project.platform != self.platform:
            raise ConfigurationError(
                f"project targets {project.platform!r}, plugin is for "
                f"{self.platform!r}"
            )
        snippet = dialog.preview()
        project.file(file_name).insert_at_marker(marker, snippet)
        self.extension.embed_proxy(project, dialog.descriptor.interface)
        return snippet
