"""The M-Plugin: MobiVine's toolkit integration (paper Sections 3.2, 4.2).

A plugin bridges M-Proxies into an existing development toolkit with four
features:

1. **Visibility** — the :class:`ProxyDrawer` lists every proxy (category)
   and API (item) available on the plugin's platform.
2. **Presentation** — the :class:`ConfigurationDialog` shows an API's
   Variables (semantic parameters) and Properties (platform attributes)
   with descriptions, defaults and allowed values.
3. **Configuration** — the dialog validates user inputs and generates
   invocation code, with a Source preview.
4. **Embedding** — platform-specific extensions wire the proxy
   implementation artifacts into the project (classpath entries, the S60
   single-jar merge, WebView JS injection).
"""

from repro.core.plugin.toolkit import CodeFile, Project, Toolkit
from repro.core.plugin.docs import render_proxy_markdown, render_registry_markdown
from repro.core.plugin.drawer import DrawerItem, ProxyDrawer
from repro.core.plugin.configuration import ConfigurationDialog, DialogField
from repro.core.plugin.packaging import (
    AndroidPlatformExtension,
    S60PlatformExtension,
    WebViewPlatformExtension,
)
from repro.core.plugin.plugin import MobiVinePlugin

__all__ = [
    "AndroidPlatformExtension",
    "CodeFile",
    "ConfigurationDialog",
    "DialogField",
    "DrawerItem",
    "MobiVinePlugin",
    "Project",
    "ProxyDrawer",
    "S60PlatformExtension",
    "Toolkit",
    "WebViewPlatformExtension",
    "render_proxy_markdown",
    "render_registry_markdown",
]
