"""XML serialization of proxy descriptors.

The paper's proxies are XML documents against five schemas.  This module
renders a :class:`ProxyDescriptor` to that XML form and parses it back; the
round trip is exercised by property-based tests.  Document shape follows
the paper's listings (Section 3.1): a ``<proxy>`` root with one
``<semantic>`` element, one ``<syntactic>`` per language and one
``<binding>`` per platform.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Any, Optional

from repro.core.descriptor.model import (
    BindingPlane,
    CallbackSpec,
    ExceptionSpec,
    MethodSpec,
    ParameterSpec,
    PropertySpec,
    ProxyDescriptor,
    ReturnSpec,
    SemanticPlane,
    SyntacticPlane,
    TypeBinding,
)
from repro.errors import DescriptorError


# ---------------------------------------------------------------------------
# serialization
# ---------------------------------------------------------------------------

def _parameter_element(parent: ET.Element, spec: ParameterSpec) -> None:
    element = ET.SubElement(
        parent,
        "parameter",
        name=spec.name,
        dimension=spec.dimension,
        order=str(spec.order),
    )
    if spec.optional:
        element.set("optional", "true")
    if spec.description:
        element.text = spec.description


def _semantic_element(parent: ET.Element, plane: SemanticPlane) -> None:
    semantic = ET.SubElement(parent, "semantic")
    if plane.description:
        ET.SubElement(semantic, "description").text = plane.description
    for method in plane.methods:
        method_el = ET.SubElement(semantic, "method", name=method.name)
        if method.description:
            method_el.set("description", method.description)
        for parameter in method.ordered_parameters():
            _parameter_element(method_el, parameter)
        if method.callback is not None:
            callback_el = ET.SubElement(
                method_el,
                "callback",
                parameter=method.callback.parameter_name,
                event=method.callback.event_name,
            )
            for parameter in method.callback.event_parameters:
                _parameter_element(callback_el, parameter)
        if method.returns is not None:
            return_el = ET.SubElement(
                method_el, "return", dimension=method.returns.dimension
            )
            if method.returns.description:
                return_el.text = method.returns.description


def _syntactic_element(parent: ET.Element, plane: SyntacticPlane) -> None:
    syntactic = ET.SubElement(
        parent,
        "syntactic",
        language=plane.language,
        callbackStyle=plane.callback_style,
    )
    for method_name in sorted(plane.method_types):
        method_el = ET.SubElement(syntactic, "method", name=method_name)
        for binding in plane.method_types[method_name]:
            type_el = ET.SubElement(
                method_el, "type", parameter=binding.parameter_name
            )
            type_el.text = binding.type_name
        if method_name in plane.return_types:
            ET.SubElement(method_el, "return").text = plane.return_types[method_name]


def _binding_element(parent: ET.Element, plane: BindingPlane) -> None:
    binding = ET.SubElement(
        parent,
        "binding",
        platform=plane.platform,
        language=plane.language,
    )
    ET.SubElement(binding, "class").text = plane.implementation_class
    for exc in plane.exceptions:
        exc_el = ET.SubElement(
            binding,
            "exception",
            mapsTo=exc.maps_to,
            code=str(exc.error_code),
        )
        exc_el.set("class", exc.platform_class)
        if exc.description:
            exc_el.text = exc.description
    for prop in plane.properties:
        prop_el = ET.SubElement(
            binding,
            "property",
            name=prop.name,
            type=prop.type_name,
        )
        if prop.required:
            prop_el.set("required", "true")
        if prop.description:
            ET.SubElement(prop_el, "description").text = prop.description
        if prop.default is not None:
            ET.SubElement(prop_el, "default").text = _render_value(prop.default)
        for allowed in prop.allowed_values:
            ET.SubElement(prop_el, "allowed").text = _render_value(allowed)
    if plane.notes:
        ET.SubElement(binding, "notes").text = plane.notes


def _render_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def descriptor_to_xml(descriptor: ProxyDescriptor) -> str:
    """Render a descriptor as an XML document string."""
    root = ET.Element("proxy", interface=descriptor.interface)
    _semantic_element(root, descriptor.semantic)
    for language in sorted(descriptor.syntactic):
        _syntactic_element(root, descriptor.syntactic[language])
    for platform in sorted(descriptor.bindings):
        _binding_element(root, descriptor.bindings[platform])
    ET.indent(root)
    return ET.tostring(root, encoding="unicode") + "\n"


# ---------------------------------------------------------------------------
# parsing
# ---------------------------------------------------------------------------

def _parse_parameter(element: ET.Element) -> ParameterSpec:
    try:
        name = element.attrib["name"]
        dimension = element.attrib["dimension"]
        order = int(element.attrib["order"])
    except KeyError as exc:
        raise DescriptorError(f"parameter missing attribute {exc}") from None
    return ParameterSpec(
        name=name,
        dimension=dimension,
        order=order,
        description=(element.text or "").strip(),
        optional=element.get("optional", "false") == "true",
    )


def _parse_semantic(element: ET.Element) -> SemanticPlane:
    interface = element.get("_interface", "")
    description_el = element.find("description")
    methods = []
    for method_el in element.findall("method"):
        name = method_el.get("name")
        if not name:
            raise DescriptorError("method element missing name")
        parameters = tuple(
            _parse_parameter(p) for p in method_el.findall("parameter")
        )
        callback: Optional[CallbackSpec] = None
        callback_el = method_el.find("callback")
        if callback_el is not None:
            callback = CallbackSpec(
                parameter_name=callback_el.get("parameter", ""),
                event_name=callback_el.get("event", ""),
                event_parameters=tuple(
                    _parse_parameter(p) for p in callback_el.findall("parameter")
                ),
            )
        returns: Optional[ReturnSpec] = None
        return_el = method_el.find("return")
        if return_el is not None:
            returns = ReturnSpec(
                dimension=return_el.get("dimension", ""),
                description=(return_el.text or "").strip(),
            )
        methods.append(
            MethodSpec(
                name=name,
                description=method_el.get("description", ""),
                parameters=parameters,
                returns=returns,
                callback=callback,
            )
        )
    return SemanticPlane(
        interface=interface,
        description=(description_el.text or "").strip()
        if description_el is not None
        else "",
        methods=tuple(methods),
    )


def _parse_syntactic(element: ET.Element) -> SyntacticPlane:
    language = element.get("language", "")
    method_types = {}
    return_types = {}
    for method_el in element.findall("method"):
        name = method_el.get("name")
        if not name:
            raise DescriptorError("syntactic method element missing name")
        bindings = tuple(
            TypeBinding(
                parameter_name=t.get("parameter", ""),
                type_name=(t.text or "").strip(),
            )
            for t in method_el.findall("type")
        )
        method_types[name] = bindings
        return_el = method_el.find("return")
        if return_el is not None and return_el.text:
            return_types[name] = return_el.text.strip()
    return SyntacticPlane(
        language=language,
        callback_style=element.get("callbackStyle", "object"),
        method_types=method_types,
        return_types=return_types,
    )


def _parse_value(text: str, type_name: str) -> Any:
    if type_name == "int":
        return int(text)
    if type_name in ("float", "double"):
        return float(text)
    if type_name in ("bool", "boolean"):
        return text == "true"
    return text


def _parse_binding(element: ET.Element) -> BindingPlane:
    class_el = element.find("class")
    if class_el is None or not (class_el.text or "").strip():
        raise DescriptorError("binding element missing <class>")
    exceptions = tuple(
        ExceptionSpec(
            platform_class=e.get("class", ""),
            maps_to=e.get("mapsTo", "ProxyPlatformError"),
            error_code=int(e.get("code", "1005")),
            description=(e.text or "").strip(),
        )
        for e in element.findall("exception")
    )
    properties = []
    for prop_el in element.findall("property"):
        type_name = prop_el.get("type", "string")
        default_el = prop_el.find("default")
        description_el = prop_el.find("description")
        properties.append(
            PropertySpec(
                name=prop_el.get("name", ""),
                description=(description_el.text or "").strip()
                if description_el is not None
                else "",
                type_name=type_name,
                default=_parse_value(default_el.text or "", type_name)
                if default_el is not None
                else None,
                allowed_values=tuple(
                    _parse_value((a.text or "").strip(), type_name)
                    for a in prop_el.findall("allowed")
                ),
                required=prop_el.get("required", "false") == "true",
            )
        )
    notes_el = element.find("notes")
    return BindingPlane(
        platform=element.get("platform", ""),
        language=element.get("language", ""),
        implementation_class=(class_el.text or "").strip(),
        properties=tuple(properties),
        exceptions=exceptions,
        notes=(notes_el.text or "").strip() if notes_el is not None else "",
    )


def descriptor_from_xml(xml_text: str) -> ProxyDescriptor:
    """Parse an XML document back into a :class:`ProxyDescriptor`.

    Validation against the five schemas is a separate, explicit step
    (:func:`repro.core.descriptor.schema.validate_descriptor_xml`) so
    tooling can report *all* schema violations, not just the first parse
    error.
    """
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise DescriptorError(f"malformed descriptor XML: {exc}") from exc
    if root.tag != "proxy":
        raise DescriptorError(f"root element must be <proxy>, got <{root.tag}>")
    interface = root.get("interface")
    if not interface:
        raise DescriptorError("<proxy> missing interface attribute")
    semantic_el = root.find("semantic")
    if semantic_el is None:
        raise DescriptorError("descriptor missing <semantic> plane")
    semantic_el.set("_interface", interface)
    descriptor = ProxyDescriptor(semantic=_parse_semantic(semantic_el))
    for syntactic_el in root.findall("syntactic"):
        descriptor.add_syntactic(_parse_syntactic(syntactic_el))
    for binding_el in root.findall("binding"):
        descriptor.add_binding(_parse_binding(binding_el))
    return descriptor
