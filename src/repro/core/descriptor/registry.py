"""The proxy registry: where descriptors live at run time.

The registry backs both the proxy runtime (bindings, properties, exception
maps) and the M-Plugin (drawer contents, configuration dialogs).  The
paper's extension story — "a new platform publishes only binding
artifacts" — is :meth:`ProxyRegistry.add_binding`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.descriptor.model import BindingPlane, ProxyDescriptor
from repro.core.descriptor.schema import validate_descriptor_xml
from repro.core.descriptor.xml_io import descriptor_from_xml
from repro.errors import DescriptorError, RegistryError


class ProxyRegistry:
    """Interface name → descriptor, with platform-aware lookups."""

    def __init__(self) -> None:
        self._descriptors: Dict[str, ProxyDescriptor] = {}

    # -- population ----------------------------------------------------------

    def register(self, descriptor: ProxyDescriptor) -> None:
        """Add a validated descriptor; duplicate interfaces are an error."""
        descriptor.validate()
        if descriptor.interface in self._descriptors:
            raise RegistryError(
                f"interface {descriptor.interface!r} already registered"
            )
        self._descriptors[descriptor.interface] = descriptor

    def register_xml(self, xml_text: str) -> ProxyDescriptor:
        """Parse, schema-validate and register a descriptor document."""
        violations = validate_descriptor_xml(xml_text)
        if violations:
            summary = "; ".join(str(v) for v in violations[:5])
            raise DescriptorError(
                f"descriptor fails schema validation ({len(violations)} "
                f"violations): {summary}"
            )
        descriptor = descriptor_from_xml(xml_text)
        self.register(descriptor)
        return descriptor

    def add_binding(self, interface: str, binding: BindingPlane) -> None:
        """Extension point: attach a new platform to an existing proxy."""
        self.descriptor(interface).add_binding(binding)

    # -- lookup ----------------------------------------------------------------

    def descriptor(self, interface: str) -> ProxyDescriptor:
        try:
            return self._descriptors[interface]
        except KeyError:
            raise RegistryError(f"unknown interface {interface!r}") from None

    def binding(self, interface: str, platform: str) -> BindingPlane:
        """The binding plane for (interface, platform).

        Missing bindings are a :class:`RegistryError` — the lookup failure
        an application sees when a capability simply does not exist on a
        platform (the paper's S60 Call case).
        """
        descriptor = self.descriptor(interface)
        if platform not in descriptor.bindings:
            raise RegistryError(
                f"interface {interface!r} has no binding for platform "
                f"{platform!r} (available: {descriptor.platforms()})"
            )
        return descriptor.bindings[platform]

    def interfaces(self) -> List[str]:
        """All registered interface names, sorted."""
        return sorted(self._descriptors)

    def interfaces_for_platform(self, platform: str) -> List[str]:
        """Interfaces that have a binding on ``platform`` (drawer contents)."""
        return sorted(
            name
            for name, descriptor in self._descriptors.items()
            if platform in descriptor.bindings
        )

    def __contains__(self, interface: str) -> bool:
        return interface in self._descriptors

    def __len__(self) -> int:
        return len(self._descriptors)
