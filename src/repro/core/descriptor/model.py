"""Dataclasses for the three descriptor planes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.descriptor.typesys import DimensionRegistry, STANDARD_DIMENSIONS
from repro.errors import DescriptorError

#: Languages the syntactic plane may bind.  C is supported at the
#: syntactic-plane and codegen level (the paper: "in JavaScript (or C)
#: we can specify a function (or a function pointer)"); no shipped
#: platform binds it.
LANGUAGES = ("java", "javascript", "c")

#: Platform vocabulary: name → the language its bindings are written in.
#: Extensible at run time (paper Section 3.3: a new platform joins by
#: publishing binding artifacts; registering its name here is the first).
_PLATFORM_LANGUAGES: Dict[str, str] = {
    "android": "java",
    "s60": "java",
    "webview": "javascript",
}

#: The three platforms of the paper's prototype (import-stable alias).
PLATFORMS = ("android", "s60", "webview")


def register_platform(name: str, language: str) -> None:
    """Add a platform name to the vocabulary.

    ``language`` must be one of :data:`LANGUAGES` — new platforms reuse an
    existing syntactic plane, which is exactly what makes binding-only
    extension possible.  Re-registering with the same language is a no-op;
    changing an existing platform's language is an error.
    """
    if language not in LANGUAGES:
        raise DescriptorError(
            f"platform language must be one of {LANGUAGES}, got {language!r}"
        )
    existing = _PLATFORM_LANGUAGES.get(name)
    if existing is not None and existing != language:
        raise DescriptorError(
            f"platform {name!r} is already registered with language {existing!r}"
        )
    _PLATFORM_LANGUAGES[name] = language


def known_platforms() -> Tuple[str, ...]:
    """Every registered platform name, sorted."""
    return tuple(sorted(_PLATFORM_LANGUAGES))


def platform_language(name: str) -> str:
    """The binding language registered for ``name``."""
    try:
        return _PLATFORM_LANGUAGES[name]
    except KeyError:
        raise DescriptorError(f"unknown platform {name!r}") from None


@dataclass(frozen=True)
class ParameterSpec:
    """One semantic-plane parameter: name, order, dimension, meaning."""

    name: str
    dimension: str
    order: int
    description: str = ""
    optional: bool = False

    def validate_value(
        self, value: Any, dimensions: DimensionRegistry = STANDARD_DIMENSIONS
    ) -> None:
        """Check ``value`` against the parameter's dimension."""
        if value is None and self.optional:
            return
        dimensions.get(self.dimension).validate(value)


@dataclass(frozen=True)
class ReturnSpec:
    """Semantic-plane return value."""

    dimension: str
    description: str = ""


@dataclass(frozen=True)
class CallbackSpec:
    """Semantic-plane callback: the uniform event and its parameters.

    ``event_name`` is the canonical handler method (``proximityEvent`` in
    the paper's listing) and ``event_parameters`` the uniform payload.
    """

    parameter_name: str
    event_name: str
    event_parameters: Tuple[ParameterSpec, ...] = ()


@dataclass(frozen=True)
class MethodSpec:
    """One canonical interface method in the semantic plane."""

    name: str
    description: str = ""
    parameters: Tuple[ParameterSpec, ...] = ()
    returns: Optional[ReturnSpec] = None
    callback: Optional[CallbackSpec] = None

    def __post_init__(self) -> None:
        orders = [p.order for p in self.parameters]
        if sorted(orders) != list(range(1, len(orders) + 1)):
            raise DescriptorError(
                f"method {self.name!r}: parameter orders must be 1..N, got {orders}"
            )
        names = [p.name for p in self.parameters]
        if len(set(names)) != len(names):
            raise DescriptorError(f"method {self.name!r}: duplicate parameter names")

    def ordered_parameters(self) -> List[ParameterSpec]:
        return sorted(self.parameters, key=lambda p: p.order)

    def parameter(self, name: str) -> ParameterSpec:
        for spec in self.parameters:
            if spec.name == name:
                return spec
        raise DescriptorError(f"method {self.name!r} has no parameter {name!r}")


@dataclass(frozen=True)
class SemanticPlane:
    """Plane 1: canonical structure of one proxy interface."""

    interface: str
    description: str = ""
    methods: Tuple[MethodSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.interface:
            raise DescriptorError("semantic plane needs an interface name")
        names = [m.name for m in self.methods]
        if len(set(names)) != len(names):
            raise DescriptorError(f"interface {self.interface!r}: duplicate methods")

    def method(self, name: str) -> MethodSpec:
        for spec in self.methods:
            if spec.name == name:
                return spec
        raise DescriptorError(f"interface {self.interface!r} has no method {name!r}")

    def method_names(self) -> List[str]:
        return [m.name for m in self.methods]


@dataclass(frozen=True)
class TypeBinding:
    """Syntactic plane: a concrete type for one parameter in one language."""

    parameter_name: str
    type_name: str


@dataclass(frozen=True)
class SyntacticPlane:
    """Plane 2: one language's concrete types for the interface.

    ``callback_style`` records the idiom: ``"object"`` (a listener object
    with a named method — Java) or ``"function"`` (a bare function —
    JavaScript/C).
    """

    language: str
    callback_style: str = "object"
    method_types: Dict[str, Tuple[TypeBinding, ...]] = field(default_factory=dict)
    return_types: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.language not in LANGUAGES:
            raise DescriptorError(f"unknown language {self.language!r}")
        if self.callback_style not in ("object", "function"):
            raise DescriptorError(f"unknown callback style {self.callback_style!r}")

    def type_of(self, method: str, parameter: str) -> str:
        for binding in self.method_types.get(method, ()):
            if binding.parameter_name == parameter:
                return binding.type_name
        raise DescriptorError(
            f"no {self.language} type bound for {method}.{parameter}"
        )


@dataclass(frozen=True)
class PropertySpec:
    """Binding plane: one platform-specific attribute.

    This is the paper's key refinement over plain wrappers: attributes
    that are *inherently* platform-specific (Android's application
    context, S60's preferredResponseTime) stay out of the common API and
    flow in through ``set_property``, validated against this spec.
    """

    name: str
    description: str = ""
    type_name: str = "string"
    default: Optional[Any] = None
    allowed_values: Tuple[Any, ...] = ()
    required: bool = False

    def validate_value(self, value: Any) -> None:
        if self.allowed_values and value not in self.allowed_values:
            raise ValueError(
                f"property {self.name!r}: {value!r} not in allowed values "
                f"{list(self.allowed_values)}"
            )


@dataclass(frozen=True)
class ExceptionSpec:
    """Binding plane: one platform exception and its uniform mapping."""

    platform_class: str
    maps_to: str = "ProxyPlatformError"
    error_code: int = 1005
    description: str = ""


@dataclass(frozen=True)
class BindingPlane:
    """Plane 3: one platform's implementation binding."""

    platform: str
    language: str
    implementation_class: str
    properties: Tuple[PropertySpec, ...] = ()
    exceptions: Tuple[ExceptionSpec, ...] = ()
    notes: str = ""

    def __post_init__(self) -> None:
        if self.platform not in _PLATFORM_LANGUAGES:
            raise DescriptorError(f"unknown platform {self.platform!r}")
        if self.language not in LANGUAGES:
            raise DescriptorError(f"unknown language {self.language!r}")
        if self.language != _PLATFORM_LANGUAGES[self.platform]:
            raise DescriptorError(
                f"platform {self.platform!r} bindings are written in "
                f"{_PLATFORM_LANGUAGES[self.platform]!r}, not {self.language!r}"
            )
        if not self.implementation_class:
            raise DescriptorError("binding plane needs an implementation class")
        names = [p.name for p in self.properties]
        if len(set(names)) != len(names):
            raise DescriptorError(
                f"binding {self.platform!r}: duplicate property names"
            )

    def property_spec(self, name: str) -> PropertySpec:
        for spec in self.properties:
            if spec.name == name:
                return spec
        raise DescriptorError(
            f"binding {self.platform!r} has no property {name!r}"
        )

    def exception_for(self, platform_class: str) -> Optional[ExceptionSpec]:
        for spec in self.exceptions:
            if spec.platform_class == platform_class:
                return spec
        return None


@dataclass
class ProxyDescriptor:
    """A complete M-Proxy: one semantic plane + syntactic + binding planes."""

    semantic: SemanticPlane
    syntactic: Dict[str, SyntacticPlane] = field(default_factory=dict)
    bindings: Dict[str, BindingPlane] = field(default_factory=dict)

    @property
    def interface(self) -> str:
        return self.semantic.interface

    def add_syntactic(self, plane: SyntacticPlane) -> None:
        if plane.language in self.syntactic:
            raise DescriptorError(
                f"{self.interface}: {plane.language} syntactic plane already present"
            )
        self.syntactic[plane.language] = plane

    def add_binding(self, plane: BindingPlane) -> None:
        """Extension point: new platforms publish only a binding plane."""
        if plane.platform in self.bindings:
            raise DescriptorError(
                f"{self.interface}: {plane.platform} binding already present"
            )
        if plane.language not in self.syntactic:
            raise DescriptorError(
                f"{self.interface}: binding for {plane.platform!r} targets "
                f"language {plane.language!r} with no syntactic plane"
            )
        self.bindings[plane.platform] = plane

    def binding_for(self, platform: str) -> BindingPlane:
        try:
            return self.bindings[platform]
        except KeyError:
            raise DescriptorError(
                f"interface {self.interface!r} has no binding for {platform!r}"
            ) from None

    def platforms(self) -> List[str]:
        return sorted(self.bindings)

    def languages(self) -> List[str]:
        return sorted(self.syntactic)

    def validate(self) -> None:
        """Cross-plane consistency: every binding's language has a
        syntactic plane; every syntactic plane types every parameter of
        every method."""
        for binding in self.bindings.values():
            if binding.language not in self.syntactic:
                raise DescriptorError(
                    f"{self.interface}: binding {binding.platform} needs a "
                    f"{binding.language} syntactic plane"
                )
        for plane in self.syntactic.values():
            for method in self.semantic.methods:
                for parameter in method.parameters:
                    plane.type_of(method.name, parameter.name)
