"""The dimension system of the semantic plane.

The paper's semantic plane fixes each parameter's *dimension* — its
meaning and unit, independent of any language type.  A
:class:`Dimension` validates values (so ``latitude=417`` fails at the
proxy boundary, uniformly on every platform) and carries the default
type names the syntactic plane offers per language.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.errors import DescriptorError


@dataclass(frozen=True)
class Dimension:
    """A semantic value space: name, unit, bounds, and default lang types."""

    name: str
    unit: str = ""
    description: str = ""
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    java_type: str = "java.lang.Object"
    javascript_type: str = "object"
    python_type: type = object

    def validate(self, value: Any) -> None:
        """Raise ``ValueError`` when ``value`` is outside the dimension."""
        if self.python_type in (int, float):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(
                    f"{self.name}: expected a number, got {type(value).__name__}"
                )
            if self.minimum is not None and value < self.minimum:
                raise ValueError(
                    f"{self.name}: {value} below minimum {self.minimum}"
                )
            if self.maximum is not None and value > self.maximum:
                raise ValueError(
                    f"{self.name}: {value} above maximum {self.maximum}"
                )
        elif self.python_type is str:
            if not isinstance(value, str):
                raise ValueError(
                    f"{self.name}: expected a string, got {type(value).__name__}"
                )
        elif self.python_type is bool:
            if not isinstance(value, bool):
                raise ValueError(
                    f"{self.name}: expected a bool, got {type(value).__name__}"
                )
        # python_type is object: any value passes (callbacks, opaque handles)

    def type_for_language(self, language: str) -> str:
        """The default concrete type for ``language`` ('java'/'javascript')."""
        if language == "java":
            return self.java_type
        if language == "javascript":
            return self.javascript_type
        raise DescriptorError(f"unknown language {language!r}")


class DimensionRegistry:
    """Named dimensions available to descriptors."""

    def __init__(self) -> None:
        self._dimensions: Dict[str, Dimension] = {}

    def register(self, dimension: Dimension) -> None:
        if dimension.name in self._dimensions:
            raise DescriptorError(f"dimension {dimension.name!r} already registered")
        self._dimensions[dimension.name] = dimension

    def get(self, name: str) -> Dimension:
        try:
            return self._dimensions[name]
        except KeyError:
            raise DescriptorError(f"unknown dimension {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._dimensions

    def names(self) -> list:
        return sorted(self._dimensions)


def _build_standard() -> DimensionRegistry:
    registry = DimensionRegistry()
    for dimension in (
        Dimension(
            "angle.latitude", "degrees", "WGS-84 latitude",
            minimum=-90.0, maximum=90.0,
            java_type="double", javascript_type="number", python_type=float,
        ),
        Dimension(
            "angle.longitude", "degrees", "WGS-84 longitude",
            minimum=-180.0, maximum=180.0,
            java_type="double", javascript_type="number", python_type=float,
        ),
        Dimension(
            "length.altitude", "metres", "height above the ellipsoid",
            minimum=-500.0, maximum=40_000.0,
            java_type="double", javascript_type="number", python_type=float,
        ),
        Dimension(
            "length.radius", "metres", "proximity region radius",
            minimum=1e-9,
            java_type="float", javascript_type="number", python_type=float,
        ),
        Dimension(
            "time.duration", "seconds", "expiration or timeout; -1 = unbounded",
            minimum=-1.0,
            java_type="long", javascript_type="number", python_type=float,
        ),
        Dimension(
            "identity.phone_number", "", "E.164-ish dialable number",
            java_type="java.lang.String", javascript_type="string", python_type=str,
        ),
        Dimension(
            "text.message", "", "short-message payload",
            java_type="java.lang.String", javascript_type="string", python_type=str,
        ),
        Dimension(
            "web.url", "", "absolute http URL",
            java_type="java.lang.String", javascript_type="string", python_type=str,
        ),
        Dimension(
            "web.body", "", "request entity body",
            java_type="java.lang.String", javascript_type="string", python_type=str,
        ),
        Dimension(
            "callback.proximity", "", "uniform proximity listener",
            java_type="com.ibm.telecom.proxy.ProximityListener",
            javascript_type="function", python_type=object,
        ),
        Dimension(
            "callback.sms_status", "", "uniform SMS status listener",
            java_type="com.ibm.telecom.proxy.SmsStatusListener",
            javascript_type="function", python_type=object,
        ),
        Dimension(
            "callback.call_state", "", "uniform call state listener",
            java_type="com.ibm.telecom.proxy.CallStateListener",
            javascript_type="function", python_type=object,
        ),
        Dimension(
            "callback.http_response", "", "uniform HTTP response listener",
            java_type="com.ibm.telecom.proxy.HttpResponseListener",
            javascript_type="function", python_type=object,
        ),
        Dimension(
            "object.location", "", "uniform location value",
            java_type="com.ibm.telecom.proxy.Location",
            javascript_type="object", python_type=object,
        ),
        Dimension(
            "object.http_result", "", "uniform HTTP result value",
            java_type="com.ibm.telecom.proxy.HttpResult",
            javascript_type="object", python_type=object,
        ),
        Dimension(
            "object.call_handle", "", "uniform call handle",
            java_type="com.ibm.telecom.proxy.CallHandle",
            javascript_type="object", python_type=object,
        ),
        Dimension(
            "object.contact", "", "uniform contact value",
            java_type="com.ibm.telecom.proxy.Contact",
            javascript_type="object", python_type=object,
        ),
        Dimension(
            "object.event", "", "uniform calendar-event value",
            java_type="com.ibm.telecom.proxy.CalendarEvent",
            javascript_type="object", python_type=object,
        ),
        Dimension(
            "time.instant", "milliseconds", "absolute instant on the device clock",
            minimum=0.0,
            java_type="long", javascript_type="number", python_type=float,
        ),
        Dimension(
            "flag.boolean", "", "true/false switch",
            java_type="boolean", javascript_type="boolean", python_type=bool,
        ),
    ):
        registry.register(dimension)
    return registry


#: The dimensions every shipped descriptor draws from.
STANDARD_DIMENSIONS = _build_standard()
