"""M-Proxy descriptors: the three-plane model as data.

A :class:`ProxyDescriptor` is the structured unit of Section 3.1:

* one :class:`SemanticPlane` — canonical method names, parameters with
  dimensions, return and callback shapes;
* one :class:`SyntacticPlane` per programming language — concrete data
  types and callback styles;
* one :class:`BindingPlane` per platform — implementation module,
  platform properties (with defaults and allowed values) and the
  platform's exception set.

Descriptors round-trip through XML (``xml_io``) against five schemas
(``schema``), are collected in a :class:`ProxyRegistry`, and drive the
proxy runtime and the plugin's configuration dialogs at run time.
"""

from repro.core.descriptor.model import (
    BindingPlane,
    CallbackSpec,
    ExceptionSpec,
    MethodSpec,
    ParameterSpec,
    PropertySpec,
    ProxyDescriptor,
    ReturnSpec,
    SemanticPlane,
    SyntacticPlane,
    TypeBinding,
)
from repro.core.descriptor.typesys import Dimension, DimensionRegistry, STANDARD_DIMENSIONS
from repro.core.descriptor.schema import (
    BindingJavaSchema,
    BindingJavascriptSchema,
    SchemaViolation,
    SemanticSchema,
    SyntacticJavaSchema,
    SyntacticJavascriptSchema,
    validate_descriptor_xml,
)
from repro.core.descriptor.xml_io import descriptor_from_xml, descriptor_to_xml
from repro.core.descriptor.registry import ProxyRegistry

__all__ = [
    "BindingJavaSchema",
    "BindingJavascriptSchema",
    "BindingPlane",
    "CallbackSpec",
    "Dimension",
    "DimensionRegistry",
    "ExceptionSpec",
    "MethodSpec",
    "ParameterSpec",
    "PropertySpec",
    "ProxyDescriptor",
    "ProxyRegistry",
    "ReturnSpec",
    "STANDARD_DIMENSIONS",
    "SchemaViolation",
    "SemanticPlane",
    "SemanticSchema",
    "SyntacticJavaSchema",
    "SyntacticJavascriptSchema",
    "SyntacticPlane",
    "TypeBinding",
    "descriptor_from_xml",
    "descriptor_to_xml",
    "validate_descriptor_xml",
]
