"""The five descriptor schemas.

The paper defines five XML Schemas: one for the semantic plane, one per
language (Java, JavaScript) for the syntactic plane, and one per language
for the binding plane.  The offline environment has no XSD validator, so
each schema is a structural validator that walks the element tree and
accumulates :class:`SchemaViolation` records — which is also friendlier
tooling behaviour, since a dialog can show every problem at once.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass
from typing import List

from repro.core.descriptor.typesys import STANDARD_DIMENSIONS
from repro.errors import DescriptorError


@dataclass(frozen=True)
class SchemaViolation:
    """One schema problem: where it is and what is wrong."""

    schema: str
    path: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"[{self.schema}] {self.path}: {self.message}"


class _SchemaBase:
    """Shared walk/report helpers."""

    name = "abstract"

    def validate(self, element: ET.Element) -> List[SchemaViolation]:
        """Return all violations (empty list = valid)."""
        raise NotImplementedError

    def _violation(self, path: str, message: str) -> SchemaViolation:
        return SchemaViolation(self.name, path, message)


class SemanticSchema(_SchemaBase):
    """Schema 1: the ``<semantic>`` plane."""

    name = "semantic"

    def validate(self, element: ET.Element) -> List[SchemaViolation]:
        violations: List[SchemaViolation] = []
        methods = element.findall("method")
        if not methods:
            violations.append(
                self._violation("semantic", "at least one <method> is required")
            )
        seen_methods = set()
        for method in methods:
            name = method.get("name", "")
            path = f"semantic/method[@name={name!r}]"
            if not name:
                violations.append(self._violation(path, "missing name attribute"))
                continue
            if name in seen_methods:
                violations.append(self._violation(path, "duplicate method name"))
            seen_methods.add(name)
            violations.extend(self._validate_parameters(method, path))
            callback = method.find("callback")
            if callback is not None:
                cb_path = f"{path}/callback"
                if not callback.get("parameter"):
                    violations.append(
                        self._violation(cb_path, "missing parameter attribute")
                    )
                if not callback.get("event"):
                    violations.append(
                        self._violation(cb_path, "missing event attribute")
                    )
                violations.extend(self._validate_parameters(callback, cb_path))
        return violations

    def _validate_parameters(
        self, parent: ET.Element, path: str
    ) -> List[SchemaViolation]:
        violations: List[SchemaViolation] = []
        orders = []
        seen_names = set()
        for parameter in parent.findall("parameter"):
            p_name = parameter.get("name", "")
            p_path = f"{path}/parameter[@name={p_name!r}]"
            if not p_name:
                violations.append(self._violation(p_path, "missing name attribute"))
            elif p_name in seen_names:
                violations.append(self._violation(p_path, "duplicate parameter name"))
            seen_names.add(p_name)
            dimension = parameter.get("dimension", "")
            if not dimension:
                violations.append(
                    self._violation(p_path, "missing dimension attribute")
                )
            elif dimension not in STANDARD_DIMENSIONS:
                violations.append(
                    self._violation(p_path, f"unknown dimension {dimension!r}")
                )
            order_text = parameter.get("order", "")
            if not order_text.isdigit():
                violations.append(
                    self._violation(p_path, f"order must be an integer, got {order_text!r}")
                )
            else:
                orders.append(int(order_text))
        if orders and sorted(orders) != list(range(1, len(orders) + 1)):
            violations.append(
                self._violation(path, f"parameter orders must be 1..N, got {orders}")
            )
        return violations


class _SyntacticSchema(_SchemaBase):
    """Shared syntactic-plane checks; subclasses pin the language."""

    language = "abstract"
    #: Type names the language's plane may use (empty = unconstrained).
    primitive_types: frozenset = frozenset()
    callback_styles: frozenset = frozenset({"object", "function"})

    def validate(self, element: ET.Element) -> List[SchemaViolation]:
        violations: List[SchemaViolation] = []
        path = f"syntactic[@language={self.language!r}]"
        if element.get("language") != self.language:
            violations.append(
                self._violation(
                    path,
                    f"language attribute is {element.get('language')!r}, "
                    f"expected {self.language!r}",
                )
            )
        style = element.get("callbackStyle", "object")
        if style not in self.callback_styles:
            violations.append(
                self._violation(
                    path,
                    f"callbackStyle {style!r} not allowed for {self.language} "
                    f"(allowed: {sorted(self.callback_styles)})",
                )
            )
        for method in element.findall("method"):
            name = method.get("name", "")
            m_path = f"{path}/method[@name={name!r}]"
            if not name:
                violations.append(self._violation(m_path, "missing name attribute"))
            for type_el in method.findall("type"):
                t_path = f"{m_path}/type[@parameter={type_el.get('parameter')!r}]"
                if not type_el.get("parameter"):
                    violations.append(
                        self._violation(t_path, "missing parameter attribute")
                    )
                type_name = (type_el.text or "").strip()
                if not type_name:
                    violations.append(self._violation(t_path, "empty type name"))
                elif self.primitive_types and (
                    "." not in type_name and type_name not in self.primitive_types
                ):
                    violations.append(
                        self._violation(
                            t_path,
                            f"{type_name!r} is neither a {self.language} primitive "
                            "nor a qualified class name",
                        )
                    )
        return violations


class SyntacticJavaSchema(_SyntacticSchema):
    """Schema 2: syntactic plane for Java (S60 and Android)."""

    name = "syntactic-java"
    language = "java"
    primitive_types = frozenset(
        {"boolean", "byte", "char", "short", "int", "long", "float", "double", "void"}
    )
    callback_styles = frozenset({"object"})


class SyntacticJavascriptSchema(_SyntacticSchema):
    """Schema 3: syntactic plane for JavaScript (WebView)."""

    name = "syntactic-javascript"
    language = "javascript"
    primitive_types = frozenset(
        {"number", "string", "boolean", "object", "function", "undefined", "void"}
    )
    callback_styles = frozenset({"function"})


class SyntacticCSchema(_SyntacticSchema):
    """Schema for the C syntactic plane (callbacks are function pointers).

    C type names have no package qualification, so the plane accepts any
    non-empty type text (``float``, ``const char *``, ``prox_cb_t``).
    """

    name = "syntactic-c"
    language = "c"
    primitive_types = frozenset()  # unconstrained: C types carry no dots
    callback_styles = frozenset({"function"})


class _BindingSchema(_SchemaBase):
    """Shared binding-plane checks; subclasses pin the language.

    The allowed platform set is derived from the live platform vocabulary
    so run-time platform registration (the extension story) immediately
    extends what the schema accepts.
    """

    language = "abstract"

    _PROPERTY_TYPES = frozenset({"string", "int", "float", "double", "bool", "boolean", "object"})

    @property
    def platforms(self) -> frozenset:
        from repro.core.descriptor.model import _PLATFORM_LANGUAGES

        return frozenset(
            name
            for name, language in _PLATFORM_LANGUAGES.items()
            if language == self.language
        )

    def validate(self, element: ET.Element) -> List[SchemaViolation]:
        violations: List[SchemaViolation] = []
        platform = element.get("platform", "")
        path = f"binding[@platform={platform!r}]"
        if platform not in self.platforms:
            violations.append(
                self._violation(
                    path,
                    f"platform {platform!r} not allowed for the {self.language} "
                    f"binding schema (allowed: {sorted(self.platforms)})",
                )
            )
        if element.get("language") != self.language:
            violations.append(
                self._violation(
                    path,
                    f"language attribute is {element.get('language')!r}, "
                    f"expected {self.language!r}",
                )
            )
        class_el = element.find("class")
        if class_el is None or not (class_el.text or "").strip():
            violations.append(self._violation(path, "missing <class> element"))
        for exc in element.findall("exception"):
            e_path = f"{path}/exception[@class={exc.get('class')!r}]"
            if not exc.get("class"):
                violations.append(self._violation(e_path, "missing class attribute"))
            code = exc.get("code", "")
            if not code.isdigit():
                violations.append(
                    self._violation(e_path, f"code must be an integer, got {code!r}")
                )
        seen_properties = set()
        for prop in element.findall("property"):
            p_name = prop.get("name", "")
            p_path = f"{path}/property[@name={p_name!r}]"
            if not p_name:
                violations.append(self._violation(p_path, "missing name attribute"))
            elif p_name in seen_properties:
                violations.append(self._violation(p_path, "duplicate property name"))
            seen_properties.add(p_name)
            type_name = prop.get("type", "string")
            if type_name not in self._PROPERTY_TYPES:
                violations.append(
                    self._violation(p_path, f"unknown property type {type_name!r}")
                )
        return violations


class BindingJavaSchema(_BindingSchema):
    """Schema 4: binding plane for Java platforms (Android, S60)."""

    name = "binding-java"
    language = "java"


class BindingJavascriptSchema(_BindingSchema):
    """Schema 5: binding plane for JavaScript platforms (WebView)."""

    name = "binding-javascript"
    language = "javascript"


class BindingCSchema(_BindingSchema):
    """Binding schema for C platforms (none shipped; extension point)."""

    name = "binding-c"
    language = "c"


#: Schema instances keyed by (element kind, language).
_SYNTACTIC_SCHEMAS = {
    "java": SyntacticJavaSchema(),
    "javascript": SyntacticJavascriptSchema(),
    "c": SyntacticCSchema(),
}
_BINDING_SCHEMAS = {
    "java": BindingJavaSchema(),
    "javascript": BindingJavascriptSchema(),
    "c": BindingCSchema(),
}
_SEMANTIC_SCHEMA = SemanticSchema()


def validate_descriptor_xml(xml_text: str) -> List[SchemaViolation]:
    """Validate a full descriptor document against all five schemas.

    Returns every violation found; an empty list means the document is
    valid.  Raises :class:`DescriptorError` only for documents too broken
    to walk (not well-formed, wrong root).
    """
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise DescriptorError(f"malformed descriptor XML: {exc}") from exc
    if root.tag != "proxy":
        raise DescriptorError(f"root element must be <proxy>, got <{root.tag}>")
    violations: List[SchemaViolation] = []
    if not root.get("interface"):
        violations.append(
            SchemaViolation("proxy", "proxy", "missing interface attribute")
        )
    semantic = root.find("semantic")
    if semantic is None:
        violations.append(
            SchemaViolation("proxy", "proxy", "missing <semantic> plane")
        )
    else:
        violations.extend(_SEMANTIC_SCHEMA.validate(semantic))
    for syntactic in root.findall("syntactic"):
        language = syntactic.get("language", "")
        schema = _SYNTACTIC_SCHEMAS.get(language)
        if schema is None:
            violations.append(
                SchemaViolation(
                    "proxy",
                    f"syntactic[@language={language!r}]",
                    f"no schema for language {language!r}",
                )
            )
        else:
            violations.extend(schema.validate(syntactic))
    for binding in root.findall("binding"):
        language = binding.get("language", "")
        schema = _BINDING_SCHEMAS.get(language)
        if schema is None:
            violations.append(
                SchemaViolation(
                    "proxy",
                    f"binding[@platform={binding.get('platform')!r}]",
                    f"no binding schema for language {language!r}",
                )
            )
        else:
            violations.extend(schema.validate(binding))
    return violations
