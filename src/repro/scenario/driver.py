"""Scenario worlds: one live platform deployment per record/replay run.

A *world* bundles everything the step executor needs — the built
workforce scenario (device + platform + server), a tracing-enabled
observability hub, the launched :class:`WorkforceLogic`, an optional
:class:`~repro.runtime.ConcurrencyRuntime`, and a capability probe —
behind one platform-independent surface.

The builder table is **extensible at run time**:
:func:`register_scenario_driver` attaches a new platform's world
builder, so a recording can be replayed against a platform that did not
exist when it was captured (the paper's Section-3.3 extension story,
now exercised by the test driver; pair it with
:func:`repro.core.descriptor.model.register_platform` for the
descriptor vocabulary).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.apps.workforce import scenario as worlds
from repro.apps.workforce.proxied import (
    WorkforceLogic,
    launch_on_android,
    launch_on_s60,
    launch_on_webview,
)
from repro.core.plugin.packaging import WebViewPlatformExtension
from repro.core.proxies import create_proxy
from repro.core.proxy.callbacks import ProximityListener
from repro.core.resilience import chaos_policy
from repro.errors import ConfigurationError, ProxyError
from repro.obs import Observability
from repro.runtime import AdmissionConfig, ConcurrencyRuntime, TokenBucketConfig
from repro.scenario.model import Scenario

#: Span-tree layers below the middleware collapse to one opaque leaf.
_NATIVE_LAYERS = ("substrate", "bridge")


def normalized_shape(tracer, span) -> Tuple:
    """A span subtree reduced to its uniform middleware layer shape.

    Span names are ``layer:operation``; the shape keeps the layer only.
    Everything below the binding layer (``substrate``, ``bridge``) is
    platform plumbing — WebView legitimately runs two substrate hops
    through its bridge where Android runs one — so those subtrees
    collapse to a single ``native`` leaf.  What remains is the uniform
    middleware shape every platform must share.
    """
    layer = span.name.split(":", 1)[0]
    if layer in _NATIVE_LAYERS:
        return ("native",)
    children = tuple(
        normalized_shape(tracer, child) for child in tracer.children_of(span)
    )
    deduped = []
    for child in children:
        if not (deduped and deduped[-1] == child == ("native",)):
            deduped.append(child)
    return (layer, tuple(deduped))


class _SilentListener(ProximityListener):
    """Probe listener for validation-only alert registrations."""

    def proximity_event(self, *args) -> None:  # pragma: no cover - never fires
        pass


def _call_probe(platform_object, interface: str):
    try:
        create_proxy(interface, platform_object)
        return "available"
    except ProxyError as exc:
        return exc.error_code


@dataclass
class ScenarioWorld:
    """One live deployment a scenario executes against."""

    platform_name: str
    bundle: Any
    hub: Observability
    logic: WorkforceLogic
    runtime: Optional[ConcurrencyRuntime] = None
    #: interface → "available" | uniform error code.  WebView pre-probes
    #: inside the live page (proxies only bind there).
    probed: Dict[str, Any] = field(default_factory=dict)
    #: cursor into ``logic.activity_events`` for callbacks steps.
    event_cursor: int = 0

    def advance(self, delta_ms: float) -> None:
        self.bundle.platform.run_for(delta_ms)

    def drain_runtime(self) -> None:
        if self.runtime is None:
            raise ConfigurationError(
                f"scenario world on {self.platform_name!r} has no runtime"
            )
        self.runtime.drain()

    def probe_interface(self, interface: str):
        if interface in self.probed:
            return self.probed[interface]
        return _call_probe(self.bundle.platform, interface)

    def drain_callbacks(self):
        events = list(self.logic.activity_events[self.event_cursor:])
        self.event_cursor = len(self.logic.activity_events)
        return events


def _resilience_arg(scenario: Scenario):
    profile = scenario.env.resilience
    if profile == "chaos":
        seed = scenario.seed
        return lambda interface: chaos_policy(interface, seed=seed)
    if profile == "bare":
        return False
    return None  # the factory's passthrough-safe baseline


def _attach_runtime(
    scenario: Scenario, bundle, hub: Observability
) -> Optional[ConcurrencyRuntime]:
    spec = scenario.env.runtime
    if spec is None:
        return None
    admission = None
    if spec.admission is not None:
        knobs = dict(spec.admission)
        overflow = int(knobs.pop("overflow_capacity", 0))
        admission = AdmissionConfig(
            bucket=TokenBucketConfig(**knobs) if knobs else TokenBucketConfig(),
            overflow_capacity=overflow,
            # Pinned shards: admission outcomes are part of the recorded
            # contract and must not depend on autoscaler history.
            autoscaler=None,
        )
    distrib = None
    if spec.distrib is not None:
        from repro.distrib.config import DistribConfig

        distrib = DistribConfig(**spec.distrib)
    return ConcurrencyRuntime(
        bundle.device.scheduler,
        shards=spec.shards,
        queue_depth=spec.queue_depth,
        seed=scenario.seed,
        observability=hub,
        admission=admission,
        distrib=distrib,
    )


def _new_hub() -> Observability:
    # Deterministic spans: real-time stamps off, like the conformance suite.
    return Observability(capture_real_time=False)


def _build_android(scenario: Scenario) -> ScenarioWorld:
    hub = _new_hub()
    bundle = worlds.build_android(
        fault_plan=scenario.env.fault_plan(scenario.seed), observability=hub
    )
    logic = launch_on_android(
        bundle.platform,
        bundle.new_context(),
        bundle.config,
        resilience=_resilience_arg(scenario),
    )
    return ScenarioWorld(
        platform_name="android",
        bundle=bundle,
        hub=hub,
        logic=logic,
        runtime=_attach_runtime(scenario, bundle, hub),
    )


def _build_s60(scenario: Scenario) -> ScenarioWorld:
    hub = _new_hub()
    bundle = worlds.build_s60(
        fault_plan=scenario.env.fault_plan(scenario.seed), observability=hub
    )
    logic = launch_on_s60(
        bundle.platform, bundle.config, resilience=_resilience_arg(scenario)
    )
    return ScenarioWorld(
        platform_name="s60",
        bundle=bundle,
        hub=hub,
        logic=logic,
        runtime=_attach_runtime(scenario, bundle, hub),
    )


def _build_webview(scenario: Scenario) -> ScenarioWorld:
    hub = _new_hub()
    bundle = worlds.build_webview(
        fault_plan=scenario.env.fault_plan(scenario.seed), observability=hub
    )
    webview = bundle.platform.new_webview()
    WebViewPlatformExtension().install_wrappers(
        webview,
        bundle.platform,
        bundle.new_context(),
        ["Location", "Sms", "Http", "Call"],
    )
    holder: Dict[str, Any] = {}

    def page(window) -> None:
        # Proxies (and capability probes) must bind inside the live
        # page — the JS wrappers only exist in the loaded window.
        holder["logic"] = launch_on_webview(
            bundle.platform, bundle.config, resilience=_resilience_arg(scenario)
        )
        holder["call"] = _call_probe(bundle.platform, "Call")

    webview.load_page(page)
    return ScenarioWorld(
        platform_name="webview",
        bundle=bundle,
        hub=hub,
        logic=holder["logic"],
        runtime=_attach_runtime(scenario, bundle, hub),
        probed={"Call": holder["call"]},
    )


#: platform name → world builder.  Extensible: see
#: :func:`register_scenario_driver`.
SCENARIO_DRIVERS: Dict[str, Callable[[Scenario], ScenarioWorld]] = {
    "android": _build_android,
    "s60": _build_s60,
    "webview": _build_webview,
}


def register_scenario_driver(
    name: str, builder: Callable[[Scenario], ScenarioWorld]
) -> None:
    """Attach a world builder for a (possibly hot-registered) platform.

    Re-registering the same name replaces the builder — replay harnesses
    stand up disposable platforms and the latest registration wins.
    """
    SCENARIO_DRIVERS[name] = builder


def unregister_scenario_driver(name: str) -> None:
    """Detach a previously registered builder (test cleanup)."""
    SCENARIO_DRIVERS.pop(name, None)


def build_world(platform: str, scenario: Scenario) -> ScenarioWorld:
    builder = SCENARIO_DRIVERS.get(platform)
    if builder is None:
        raise ConfigurationError(
            f"no scenario driver for platform {platform!r}; "
            f"known: {sorted(SCENARIO_DRIVERS)}"
        )
    world = builder(scenario)
    world.platform_name = platform
    return world
