"""Scenario recordings: the byte-stable JSONL capture format.

A :class:`ScenarioRecording` is one executed scenario — the full
scenario definition plus the per-step outcomes it produced on one
platform.  Serialization is canonical (sorted keys, rounded floats,
pure JSON types), so two identically-seeded runs of the same scenario
produce **byte-identical** files and recordings can be committed,
diffed and replayed like golden fixtures.

Line format::

    {"schema": "repro.scenario-recording/v1", "name": ..., "platform":
     ..., "seed": ..., "scenario": {...}}     # header
    {"step": "s00", "kind": "advance", ...}   # one line per step
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Tuple

from repro.errors import ConfigurationError
from repro.scenario.model import Scenario

#: Serialization schema tag for recording documents.
RECORDING_SCHEMA = "repro.scenario-recording/v1"


def round_floats(value: Any, digits: int = 6) -> Any:
    """Recursively round floats (and tuples → lists) for byte-stable JSON."""
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return round(value, digits)
    if isinstance(value, dict):
        return {key: round_floats(item, digits) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [round_floats(item, digits) for item in value]
    return value


def shape_to_list(shape: Tuple) -> List:
    """A :func:`~repro.scenario.driver.normalized_shape` tuple as JSON."""
    if len(shape) == 1:
        return [shape[0], []]
    return [shape[0], [shape_to_list(child) for child in shape[1]]]


def shape_to_tuple(payload) -> Tuple:
    """Inverse of :func:`shape_to_list` (for the conformance harness)."""
    name, children = payload
    if name == "native" and not children:
        return ("native",)
    return (name, tuple(shape_to_tuple(child) for child in children))


def _canonical_line(payload: Mapping[str, Any]) -> str:
    return json.dumps(
        round_floats(dict(payload)), sort_keys=True, separators=(",", ":")
    )


@dataclass(frozen=True)
class ScenarioRecording:
    """One scenario run: definition + per-step outcomes on one platform."""

    scenario: Scenario
    platform: str
    outcomes: Tuple[Dict[str, Any], ...]

    def __post_init__(self) -> None:
        # Outcomes round-trip through canonical JSON immediately, so the
        # in-memory recording is indistinguishable from a parsed one —
        # replay-of-replay is a fixed point by construction.
        canonical = tuple(
            json.loads(_canonical_line(outcome)) for outcome in self.outcomes
        )
        object.__setattr__(self, "outcomes", canonical)
        if len(canonical) != len(self.scenario.steps):
            raise ConfigurationError(
                f"recording has {len(canonical)} outcomes for "
                f"{len(self.scenario.steps)} scenario steps"
            )

    def outcome(self, step_id: str) -> Dict[str, Any]:
        for outcome in self.outcomes:
            if outcome.get("step") == step_id:
                return outcome
        raise KeyError(step_id)

    @property
    def header(self) -> Dict[str, Any]:
        return {
            "schema": RECORDING_SCHEMA,
            "name": self.scenario.name,
            "platform": self.platform,
            "seed": self.scenario.seed,
            "scenario": self.scenario.to_dict(),
        }

    def to_jsonl(self) -> str:
        lines = [_canonical_line(self.header)]
        lines.extend(_canonical_line(outcome) for outcome in self.outcomes)
        return "\n".join(lines) + "\n"

    @classmethod
    def parse(cls, text: str) -> "ScenarioRecording":
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise ConfigurationError("empty scenario recording")
        header = json.loads(lines[0])
        if header.get("schema") != RECORDING_SCHEMA:
            raise ConfigurationError(
                f"unsupported recording schema {header.get('schema')!r}"
            )
        return cls(
            scenario=Scenario.from_dict(header["scenario"]),
            platform=header["platform"],
            outcomes=tuple(json.loads(line) for line in lines[1:]),
        )
