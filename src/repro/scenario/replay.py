"""The Replayer: re-execute a recording on any platform and diff.

:func:`replay` rebuilds the scenario embedded in a recording, runs it
through the same step executor that produced the recording — on the
recording's platform, any other registered platform, or one
hot-registered via
:func:`~repro.scenario.driver.register_scenario_driver` mid-replay —
and returns both the fresh recording and the structured
:class:`~repro.scenario.diff.ScenarioDiff` against the base.

Same platform + same seed ⇒ the replay is byte-identical to the base
and the diff is empty; a different platform must diverge only where the
declared-divergence table says it may.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.scenario.diff import ScenarioDiff, diff_recordings
from repro.scenario.divergence import DECLARED_DIVERGENCES, DeclaredDivergence
from repro.scenario.recorder import record
from repro.scenario.recording import ScenarioRecording


@dataclass(frozen=True)
class ReplayResult:
    """One replay: the fresh recording plus its diff against the base."""

    base: ScenarioRecording
    replayed: ScenarioRecording
    diff: ScenarioDiff

    @property
    def passed(self) -> bool:
        return self.diff.passed


def replay(
    base: ScenarioRecording,
    platform: Optional[str] = None,
    registry: Sequence[DeclaredDivergence] = DECLARED_DIVERGENCES,
) -> ReplayResult:
    """Re-execute ``base``'s scenario and diff the outcomes.

    ``platform`` defaults to the platform the base was recorded on
    (pure determinism check); any registered platform name replays
    cross-platform.
    """
    target = platform or base.platform
    replayed = record(base.scenario, platform=target)
    return ReplayResult(
        base=base,
        replayed=replayed,
        diff=diff_recordings(base, replayed, registry),
    )
