"""Scenario record/replay: the cross-platform test driver.

MobiVine's core promise is that *the platform is an implementation
detail*.  This package turns that promise into a general mechanism: an
app flow is described once as a declarative
:class:`~repro.scenario.model.Scenario` (proxied calls, callback
expectations, fault-plan windows, virtual-clock advances, assertions),
**recorded** against one platform into a seeded, byte-stable
:class:`~repro.scenario.recording.ScenarioRecording` (JSONL), and
**replayed** against any other — including a platform hot-registered
mid-replay — producing a structured
:class:`~repro.scenario.diff.ScenarioDiff` in which every divergence is
either matched against the declared-divergence table
(:mod:`~repro.scenario.divergence`, generalizing the paper's S60 Call
gap) or reported as a failure.

The bundled library (:mod:`~repro.scenario.library`) ships six recorded
flows under ``tests/scenarios/``; the conformance suite and the CI
recorded-scenario gate are both thin consumers of the replayer.  CLI:
``python -m repro.obs scenario {list,record,replay,diff}`` (see
``docs/SCENARIOS.md``).
"""

from repro.scenario.diff import (
    DIFF_SCHEMA,
    ScenarioDiff,
    StepDivergence,
    diff_recordings,
)
from repro.scenario.divergence import (
    DECLARED_DIVERGENCES,
    DeclaredDivergence,
    expected_divergences,
    find_declaration,
    is_declared,
)
from repro.scenario.driver import (
    SCENARIO_DRIVERS,
    ScenarioWorld,
    build_world,
    normalized_shape,
    register_scenario_driver,
    unregister_scenario_driver,
)
from repro.scenario.library import LIBRARY, build, names
from repro.scenario.model import (
    AdvanceStep,
    AssertStep,
    BurstStep,
    CallStep,
    CallbacksStep,
    RuntimeSpec,
    SagaFlowStep,
    Scenario,
    ScenarioEnv,
    SCENARIO_SCHEMA,
)
from repro.scenario.recorder import canonical_result, execute, record
from repro.scenario.recording import (
    RECORDING_SCHEMA,
    ScenarioRecording,
    shape_to_list,
    shape_to_tuple,
)
from repro.scenario.replay import ReplayResult, replay

__all__ = [
    "AdvanceStep",
    "AssertStep",
    "BurstStep",
    "CallStep",
    "CallbacksStep",
    "DECLARED_DIVERGENCES",
    "DIFF_SCHEMA",
    "DeclaredDivergence",
    "LIBRARY",
    "RECORDING_SCHEMA",
    "ReplayResult",
    "RuntimeSpec",
    "SCENARIO_DRIVERS",
    "SCENARIO_SCHEMA",
    "SagaFlowStep",
    "Scenario",
    "ScenarioDiff",
    "ScenarioEnv",
    "ScenarioRecording",
    "ScenarioWorld",
    "StepDivergence",
    "build",
    "build_world",
    "canonical_result",
    "diff_recordings",
    "execute",
    "expected_divergences",
    "find_declaration",
    "is_declared",
    "names",
    "normalized_shape",
    "record",
    "register_scenario_driver",
    "replay",
    "shape_to_list",
    "shape_to_tuple",
    "unregister_scenario_driver",
]
