"""The bundled scenario library.

Six recorded flows, each exercising one plane of the middleware through
the same declarative DSL; their recordings live under
``tests/scenarios/`` and CI replays every one on android/s60/webview
with the declared-divergence gate (see ``docs/SCENARIOS.md``):

* ``commute`` — the canonical conformance flow: full commute, probe
  battery, span-shape capture (the conformance harness consumes this
  scenario's replay);
* ``retry_storm`` — a total network-drop window under the hardened
  chaos policy: retries, breaker, degraded fallbacks, recovery;
* ``partition_window`` — a blackout bracketing the first site arrival:
  the event log degrades, the commute survives, the server's view is
  the partition-shaped subset;
* ``throttle_wave`` — token-bucket admission under two request waves:
  the per-wave admitted/throttled (1013) ladder is the contract;
* ``saga_flow`` — the locate → enrich → reserve → post report saga on
  the replicated tier: completed, compensated-under-faults, recovered;
* ``webview_drain`` — concurrent dispatch + coalesced fix reads + the
  commute's callback drain, recorded on WebView (every result crosses
  the JS bridge and notification tables) and replayed everywhere.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.apps.workforce.common import PATH_STATUS, SERVER_HOST
from repro.scenario.model import (
    AdvanceStep,
    AssertStep,
    BurstStep,
    CallStep,
    CallbacksStep,
    RuntimeSpec,
    SagaFlowStep,
    Scenario,
    ScenarioEnv,
)

_STATUS_URL = f"http://{SERVER_HOST}{PATH_STATUS}"

#: Full away → site → away → site commute (two visits).
COMMUTE_MS = 200_000.0


def commute() -> Scenario:
    """The canonical cross-platform conformance flow."""
    return Scenario(
        name="commute",
        description=(
            "Full workforce commute plus the conformance probe battery: "
            "canonical events, fix, status GET, uniform error codes, the "
            "Call capability probe and the normalized getLocation span "
            "shape."
        ),
        platform="android",
        steps=(
            AdvanceStep("s00", COMMUTE_MS),
            CallStep("s01", "logic", "reportLocation", probe="report"),
            CallStep("s02", "location", "getLocation", probe="final_fix"),
            CallStep(
                "s03", "http", "get", {"url": _STATUS_URL}, probe="status_get"
            ),
            CallStep(
                "s04",
                "location",
                "addProximityAlert",
                {
                    "latitude": 999.0,
                    "longitude": 77.2,
                    "altitude": 0.0,
                    "radius": 500.0,
                    "timer": -1,
                },
                probe="invalid_latitude",
            ),
            CallStep(
                "s05",
                "location",
                "getProperty",
                {"key": "noSuchProperty"},
                probe="unknown_property",
            ),
            CallStep(
                "s06",
                "probe",
                "createProxy",
                {"interface": "Call"},
                probe="call_proxy",
            ),
            CallStep(
                "s07",
                "location",
                "getLocation",
                probe="location_span",
                capture_shape=True,
            ),
            CallbacksStep("s08", probe="proximity_events"),
            CallStep("s09", "server", "activityLog", probe="server_events"),
            AssertStep("s10", "s03", "result.status", "equals", 200),
            AssertStep("s11", "s08", "events", "contains", "arrived"),
        ),
    )


def retry_storm() -> Scenario:
    """A 30 s total network outage under the hardened chaos policy."""
    return Scenario(
        name="retry_storm",
        description=(
            "Total network-drop window [10s, 40s): the chaos policy "
            "retries with backoff, the breaker opens, fallbacks serve "
            "degraded responses, and the substrate recovers cleanly."
        ),
        platform="android",
        env=ScenarioEnv(
            resilience="chaos",
            fault_rules=(
                {
                    "site": "network.request",
                    "kind": "drop",
                    "rate": 1.0,
                    "start_ms": 10_000.0,
                    "end_ms": 40_000.0,
                },
            ),
        ),
        steps=(
            AdvanceStep("s00", 5_000.0),
            CallStep(
                "s01", "http", "get", {"url": _STATUS_URL}, probe="healthy_get"
            ),
            AdvanceStep("s02", 10_000.0),
            CallStep("s03", "logic", "reportLocation", probe="storm_report"),
            CallStep(
                "s04", "http", "get", {"url": _STATUS_URL}, probe="storm_get"
            ),
            AdvanceStep("s05", 65_000.0),
            CallStep(
                "s06",
                "http",
                "get",
                {"url": _STATUS_URL},
                probe="recovered_get",
                capture_shape=True,
            ),
            CallbacksStep("s07", probe="storm_events"),
            AssertStep("s08", "s06", "result.status", "equals", 200),
        ),
    )


def partition_window() -> Scenario:
    """A blackout window bracketing the first site arrival."""
    return Scenario(
        name="partition_window",
        description=(
            "Network partition [40s, 60s) covers the first arrival: the "
            "activity POST degrades (log-failed), the commute continues, "
            "and the server's activity log is the partition-shaped "
            "subset of the canonical sequence."
        ),
        platform="android",
        env=ScenarioEnv(
            resilience="chaos",
            fault_rules=(
                {
                    "site": "network.request",
                    "kind": "drop",
                    "rate": 1.0,
                    "start_ms": 40_000.0,
                    "end_ms": 60_000.0,
                },
            ),
        ),
        steps=(
            AdvanceStep("s00", 100_000.0),
            CallbacksStep("s01", probe="partition_events"),
            AdvanceStep("s02", 100_000.0),
            CallbacksStep("s03", probe="healed_events"),
            CallStep("s04", "logic", "reportLocation", probe="healed_report"),
            CallStep("s05", "server", "reportCount", probe="report_count"),
            CallStep("s06", "server", "activityLog", probe="server_events"),
            AssertStep("s07", "s01", "events", "contains", "arrived"),
            AssertStep("s08", "s05", "result", "equals", 1),
        ),
    )


def throttle_wave() -> Scenario:
    """Two request waves against a small per-tenant token bucket."""
    return Scenario(
        name="throttle_wave",
        description=(
            "A 10-request wave against a 4-token bucket (5/s refill): the "
            "admitted/throttled-1013 ladder per wave is the recorded "
            "admission contract, identical on every platform."
        ),
        platform="android",
        env=ScenarioEnv(
            runtime=RuntimeSpec(
                shards=2,
                queue_depth=8,
                admission={
                    "rate_per_s": 5.0,
                    "capacity": 4.0,
                    "overflow_capacity": 0,
                },
            ),
        ),
        steps=(
            AdvanceStep("s00", 2_000.0),
            BurstStep(
                "s01", op="get", count=10, tenant="wave", probe="first_wave"
            ),
            AdvanceStep("s02", 2_000.0),
            BurstStep(
                "s03", op="get", count=6, tenant="wave", probe="second_wave"
            ),
            AssertStep("s04", "s01", "counts.1013", "equals", 6),
            AssertStep("s05", "s03", "counts.ok", "equals", 4),
        ),
    )


def saga_flow() -> Scenario:
    """The report saga: completed, compensated under faults, recovered."""
    return Scenario(
        name="saga_flow",
        description=(
            "locate -> enrich -> reserve -> post on the replicated tier: "
            "a clean completion, a compensated run inside a network-drop "
            "window (the reservation is rolled back), and a recovery."
        ),
        platform="android",
        env=ScenarioEnv(
            fault_rules=(
                {
                    "site": "network.request",
                    "kind": "drop",
                    "rate": 1.0,
                    "start_ms": 30_000.0,
                    "end_ms": 31_000.0,
                },
            ),
            runtime=RuntimeSpec(
                shards=2,
                queue_depth=8,
                distrib={
                    "regions": ["ap-south", "eu-west"],
                    "replication_delay_ms": 100.0,
                    "gossip_interval_ms": 500.0,
                },
            ),
        ),
        steps=(
            AdvanceStep("s00", 5_000.0),
            SagaFlowStep("s01", saga="report", probe="clean_saga"),
            AdvanceStep("s02", 25_100.0),
            SagaFlowStep("s03", saga="report", probe="faulted_saga"),
            AdvanceStep("s04", 10_000.0),
            SagaFlowStep("s05", saga="report", probe="recovered_saga"),
            AssertStep("s06", "s03", "status", "equals", "compensated"),
            AssertStep("s07", "s05", "status", "equals", "completed"),
        ),
    )


def webview_drain() -> Scenario:
    """Concurrent dispatch + coalesced reads + the commute callback drain."""
    return Scenario(
        name="webview_drain",
        description=(
            "Recorded on WebView so every result crosses the JS bridge "
            "and notification tables: a 6-GET dispatch burst, a 4-read "
            "coalesced fix burst, then the commute's proximity callbacks "
            "drained in two windows."
        ),
        platform="webview",
        env=ScenarioEnv(runtime=RuntimeSpec(shards=2, queue_depth=8)),
        steps=(
            AdvanceStep("s00", 5_000.0),
            BurstStep(
                "s01", op="get", count=6, tenant="drain", probe="get_burst"
            ),
            BurstStep(
                "s02",
                op="getLocation",
                count=4,
                tenant="drain",
                probe="fix_burst",
            ),
            AdvanceStep("s03", 95_000.0),
            CallbacksStep("s04", probe="first_visit_events"),
            CallStep(
                "s05",
                "http",
                "get",
                {"url": _STATUS_URL},
                probe="status_span",
                capture_shape=True,
            ),
            AdvanceStep("s06", 100_000.0),
            CallbacksStep("s07", probe="second_visit_events"),
            CallStep("s08", "server", "activityLog", probe="server_events"),
            AssertStep("s09", "s08", "result", "contains", "arrived"),
        ),
    )


#: name → builder for every bundled scenario.
LIBRARY: Dict[str, Callable[[], Scenario]] = {
    "commute": commute,
    "retry_storm": retry_storm,
    "partition_window": partition_window,
    "throttle_wave": throttle_wave,
    "saga_flow": saga_flow,
    "webview_drain": webview_drain,
}


def names() -> Tuple[str, ...]:
    return tuple(sorted(LIBRARY))


def build(name: str) -> Scenario:
    try:
        return LIBRARY[name]()
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; bundled: {', '.join(names())}"
        ) from None
