"""The declared-divergence table.

MobiVine's conformance promise is *identical observable behaviour on
every platform* — but the paper itself reports one honest exception:
S60 ships no telephony Call API, so the uniform layer must refuse with
error code 1002 where Android and WebView return a live proxy.  This
module generalizes that pattern: any per-platform divergence a scenario
is allowed to show must be **declared** here with its canonical value,
the diverging platforms' values, and a reason.  Anything else a replay
turns up is an undeclared divergence and fails the diff.

Both suites consume one registry: the scenario replayer's
:class:`~repro.scenario.diff.ScenarioDiff` classifies per-step
divergences against it, and the conformance harness's legacy
``EXPECTED_DIVERGENCES`` mapping is derived from it via
:func:`expected_divergences`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

#: The platforms the bundled scenario library covers.
PLATFORMS = ("android", "s60", "webview")


@dataclass(frozen=True)
class DeclaredDivergence:
    """One sanctioned cross-platform behaviour gap.

    ``probe`` keys the divergence to a scenario step (the step's
    ``probe`` label, or its ``step_id`` when unlabeled); ``field`` names
    the outcome field allowed to diverge.  ``canonical`` is what every
    conforming platform produces; ``per_platform`` maps each diverging
    platform to the value it is allowed to produce instead.
    """

    probe: str
    field: str
    canonical: Any
    per_platform: Mapping[str, Any] = field(default_factory=dict)
    reason: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "per_platform", dict(self.per_platform))

    def expected_value(self, platform: str) -> Any:
        """What ``platform`` is allowed to produce for this probe/field."""
        return self.per_platform.get(platform, self.canonical)

    def matches(self, platform: str, value: Any) -> bool:
        return value == self.expected_value(platform)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "probe": self.probe,
            "field": self.field,
            "canonical": self.canonical,
            "per_platform": dict(self.per_platform),
            "reason": self.reason,
        }


#: The registry.  Today's sole entry is the paper's S60 Call gap.
DECLARED_DIVERGENCES: Tuple[DeclaredDivergence, ...] = (
    DeclaredDivergence(
        probe="call_proxy",
        field="result",
        canonical="available",
        per_platform={"s60": 1002},
        reason=(
            "S60 ships no telephony Call API (the paper's capability "
            "gap): create_proxy('Call', s60) must refuse with the "
            "uniform ProxyUnavailableError, code 1002."
        ),
    ),
)


def find_declaration(
    probe: str,
    field_name: str,
    registry: Sequence[DeclaredDivergence] = DECLARED_DIVERGENCES,
) -> Optional[DeclaredDivergence]:
    """The declaration covering ``(probe, field)``, or ``None``."""
    for declaration in registry:
        if declaration.probe == probe and declaration.field == field_name:
            return declaration
    return None


def is_declared(
    probe: str,
    field_name: str,
    base_platform: str,
    base_value: Any,
    other_platform: str,
    other_value: Any,
    registry: Sequence[DeclaredDivergence] = DECLARED_DIVERGENCES,
) -> Optional[DeclaredDivergence]:
    """Whether a concrete divergence is sanctioned, in either direction.

    Returns the covering declaration when **both** sides show exactly
    the value declared for their platform — a declared probe producing a
    *different* wrong value is still a failure.
    """
    declaration = find_declaration(probe, field_name, registry)
    if declaration is None:
        return None
    if declaration.matches(base_platform, base_value) and declaration.matches(
        other_platform, other_value
    ):
        return declaration
    return None


def expected_divergences(
    platforms: Sequence[str] = PLATFORMS,
    registry: Sequence[DeclaredDivergence] = DECLARED_DIVERGENCES,
) -> Dict[str, Dict[str, Any]]:
    """The conformance suite's legacy view: probe → platform → value."""
    return {
        declaration.probe: {
            platform: declaration.expected_value(platform)
            for platform in platforms
        }
        for declaration in registry
    }
