"""The scenario step executor and Recorder.

One executor serves both halves of the record/replay loop: *recording*
runs a declarative :class:`~repro.scenario.model.Scenario` against a
freshly built world and captures every outcome — proxied call results
canonicalized to platform-independent values, uniform error codes,
callback firings, normalized span-tree shapes, admission/saga outcome
ladders — into a byte-stable
:class:`~repro.scenario.recording.ScenarioRecording`; *replay* (see
:mod:`~repro.scenario.replay`) re-executes the embedded scenario on
another platform through this same executor, so the two sides can never
drift apart.

Canonicalization policy: platform polling artifacts (fix timestamps,
message ids) are deliberately **not** part of the canonical result —
they differ legitimately per platform — while everything the app can
observe (coordinates to ~10 m, HTTP status/body, error codes, event
order) is.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.apps.workforce.common import (
    PATH_REPORT_LOCATION,
    SERVER_HOST,
    encode,
)
from repro.core.proxy.datatypes import HttpResult, Location
from repro.errors import ProxyError
from repro.scenario.driver import (
    ScenarioWorld,
    _SilentListener,
    build_world,
    normalized_shape,
)
from repro.scenario.model import Scenario
from repro.scenario.recording import ScenarioRecording, shape_to_list


#: Resilience fallback responses start with this uniform marker.
_DEGRADED_PREFIX = "resilience: degraded response"


def canonical_result(value: Any) -> Any:
    """A proxied result reduced to its platform-independent essence."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return round(value, 6)
    if isinstance(value, Location):
        # ~10 m resolution; timestamps are per-platform polling artifacts.
        return {
            "latitude": round(value.latitude, 4),
            "longitude": round(value.longitude, 4),
        }
    if isinstance(value, HttpResult):
        body = value.body
        # Degraded fallback bodies carry platform-specific diagnostics
        # (exception class, binding name); the uniform contract is only
        # the degraded 503 itself.
        if body.startswith(_DEGRADED_PREFIX):
            body = _DEGRADED_PREFIX
        return {"status": value.status, "body": body, "ok": value.ok}
    if isinstance(value, (list, tuple)):
        return [canonical_result(item) for item in value]
    if isinstance(value, dict):
        return {str(key): canonical_result(item) for key, item in value.items()}
    return {"type": type(value).__name__}


def _capture_shapes(world: ScenarioWorld) -> List[List]:
    tracer = world.hub.tracer
    return [
        shape_to_list(normalized_shape(tracer, root)) for root in tracer.roots()
    ]


def _run_call(step, world: ScenarioWorld) -> Dict[str, Any]:
    outcome: Dict[str, Any] = {}
    if step.capture_shape:
        world.hub.tracer.reset()
    try:
        result = _dispatch_call(step, world)
    except ProxyError as exc:
        outcome["result"] = None
        outcome["error_code"] = exc.error_code
    else:
        outcome["result"] = canonical_result(result)
        outcome["error_code"] = None
    if step.capture_shape:
        outcome["shape"] = _capture_shapes(world)
    return outcome


def _dispatch_call(step, world: ScenarioWorld) -> Any:
    target, op, args = step.target, step.op, dict(step.args)
    logic = world.logic
    if target == "location":
        if op == "getLocation":
            return logic.location.get_location()
        if op == "addProximityAlert":
            logic.location.add_proximity_alert(
                args["latitude"],
                args["longitude"],
                args.get("altitude", 0.0),
                args.get("radius", 500.0),
                args.get("timer", -1),
                _SilentListener(),
            )
            return "registered"
        if op == "getProperty":
            return logic.location.get_property(args["key"])
        if op == "setProperty":
            logic.location.set_property(args["key"], args["value"])
            return "set"
    if target == "http":
        if op == "get":
            return logic.http.get(args["url"])
        if op == "post":
            return logic.http.post(args["url"], args["body"])
    if target == "sms" and op == "sendTextMessage":
        logic.sms.send_text_message(args["number"], args["text"])
        # Message ids are per-platform artifacts; acceptance is canonical.
        return "sent"
    if target == "logic" and op == "reportLocation":
        logic.report_location()
        return "reported"
    if target == "server":
        server = world.bundle.server
        if op == "activityLog":
            return [record.event for record in server.activity_log()]
        if op == "reportCount":
            track = server.track_of(logic.config.agent.agent_id)
            return 0 if track is None else track.report_count
    if target == "probe" and op == "createProxy":
        return world.probe_interface(args["interface"])
    raise AssertionError(f"unhandled call step {target}.{op}")  # pragma: no cover


def _run_burst(step, world: ScenarioWorld) -> Dict[str, Any]:
    runtime = world.runtime
    assert runtime is not None  # validated by the scenario model
    futures = []
    for index in range(step.count):
        if step.op == "get":
            url = f"http://{SERVER_HOST}/api/status?burst={step.step_id}&i={index}"
            futures.append(
                runtime.http_get(
                    world.logic.http,
                    url,
                    coalesce=step.coalesce,
                    tenant=step.tenant,
                )
            )
        else:  # getLocation
            futures.append(
                runtime.get_location(
                    world.logic.location, fresh=True, tenant=step.tenant
                )
            )
    world.drain_runtime()
    results: List[Any] = []
    for future in futures:
        if future.error is not None:
            results.append(future.error.error_code)
        else:
            results.append("ok")
    counts: Dict[str, int] = {}
    for item in results:
        key = str(item)
        counts[key] = counts.get(key, 0) + 1
    return {"results": results, "counts": counts}


def _run_saga(step, world: ScenarioWorld) -> Dict[str, Any]:
    runtime = world.runtime
    assert runtime is not None and runtime.distrib is not None
    distrib = runtime.distrib
    logic = world.logic
    reservations = distrib.table("reservations")
    execution = distrib.sagas.begin(step.saga)
    reservation_key = f"{step.saga}:{execution.saga_id}"
    error_code: Optional[int] = None
    try:
        fix = execution.step("locate", logic.location.get_location)
        payload = execution.step(
            "enrich",
            lambda: encode(
                {
                    "agent": logic.config.agent.agent_id,
                    "latitude": fix.latitude,
                    "longitude": fix.longitude,
                    "timestamp_ms": fix.timestamp_ms,
                }
            ),
        )
        execution.step(
            "reserve",
            lambda: reservations.put(reservation_key, "pending"),
            lambda _result: reservations.delete(reservation_key),
        )
        result = execution.step(
            "post",
            lambda: logic.http.post(
                f"http://{SERVER_HOST}{PATH_REPORT_LOCATION}", payload
            ),
        )
        if result.ok:
            reservations.put(reservation_key, "reported")
            execution.complete()
        else:
            execution.compensate(reason=f"http-{result.status}")
    except ProxyError as exc:
        error_code = exc.error_code
    reserved = reservations.get(reservation_key)
    return {
        "status": execution.status,
        "steps": [saga_step.name for saga_step, _ in execution.completed_steps],
        "error_code": error_code,
        "reservation": canonical_result(reserved),
    }


def _lookup_path(outcome: Dict[str, Any], path: str) -> Any:
    value: Any = outcome
    for part in path.split("."):
        if isinstance(value, dict):
            value = value.get(part)
        elif isinstance(value, list) and part.isdigit():
            index = int(part)
            value = value[index] if index < len(value) else None
        else:
            return None
    return value


def _run_assert(step, outcomes_by_id: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    referenced = outcomes_by_id.get(step.step_ref, {})
    actual = _lookup_path(referenced, step.path)
    if step.op == "equals":
        ok = actual == step.value
    else:  # contains
        ok = isinstance(actual, (list, str)) and step.value in actual
    return {"ok": ok, "actual": actual, "expected": step.value, "op": step.op}


def execute(scenario: Scenario, world: ScenarioWorld) -> List[Dict[str, Any]]:
    """Run every step against ``world``; returns the outcome list."""
    outcomes: List[Dict[str, Any]] = []
    by_id: Dict[str, Dict[str, Any]] = {}
    for step in scenario.steps:
        outcome: Dict[str, Any] = {"step": step.step_id, "kind": step.kind}
        probe = getattr(step, "probe", None)
        if probe is not None:
            outcome["probe"] = probe
        if step.kind == "call":
            outcome.update(_run_call(step, world))
        elif step.kind == "advance":
            world.advance(step.delta_ms)
            outcome["advanced_ms"] = step.delta_ms
        elif step.kind == "callbacks":
            outcome["events"] = world.drain_callbacks()
        elif step.kind == "burst":
            outcome.update(_run_burst(step, world))
        elif step.kind == "saga":
            outcome.update(_run_saga(step, world))
        elif step.kind == "assert":
            outcome.update(_run_assert(step, by_id))
        else:  # pragma: no cover - model validates kinds
            raise AssertionError(f"unhandled step kind {step.kind!r}")
        outcomes.append(outcome)
        by_id[step.step_id] = outcome
    return outcomes


def record(
    scenario: Scenario, platform: Optional[str] = None
) -> ScenarioRecording:
    """Capture one live run of ``scenario`` as a byte-stable recording.

    ``platform`` defaults to the scenario's declared target.  The world
    is built fresh (same seed → same world), executed step by step, and
    torn down with the recording as the only artifact.
    """
    target = platform or scenario.platform
    world = build_world(target, scenario)
    outcomes = execute(scenario, world)
    return ScenarioRecording(
        scenario=scenario.with_platform(scenario.platform),
        platform=target,
        outcomes=tuple(outcomes),
    )
