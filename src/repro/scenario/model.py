"""The declarative scenario model (the record/replay DSL).

A :class:`Scenario` is pure data: a seed, an environment description
(fault-plan windows, resilience profile, optional concurrency-runtime
spec) and an ordered list of steps.  Nothing here touches a platform —
the :mod:`~repro.scenario.driver` builds the world and the
:mod:`~repro.scenario.recorder` executes the steps — so the same
scenario object can be recorded on one platform and replayed on any
other, including one hot-registered mid-run.

Step vocabulary
---------------

* ``call`` — one proxied invocation (``location.getLocation``,
  ``http.get`` …) or an app/server-level probe, with optional
  span-shape capture;
* ``advance`` — run the platform's virtual clock forward;
* ``callbacks`` — drain the app's activity events fired since the last
  capture (proximity callbacks, degraded-operation markers);
* ``burst`` — submit N concurrent requests through the attached
  concurrency runtime and drain, recording per-request outcomes
  (admitted / throttled 1013 / shed 1012 …);
* ``saga`` — run the canonical locate → enrich → post report saga on
  the attached distributed tier;
* ``assert`` — a declarative expectation over an earlier step's
  recorded outcome.

Every step carries a stable ``step_id`` so recordings align during
diffing, and an optional ``probe`` label that keys the declared
divergence table (see :mod:`~repro.scenario.divergence`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan, FaultRule

#: Serialization schema tag for scenario documents.
SCENARIO_SCHEMA = "repro.scenario/v1"

#: Resilience profiles a scenario may request (see the proxy factory).
RESILIENCE_PROFILES = ("default", "chaos", "bare")

#: Call-step targets and the operations each understands.
CALL_TARGETS: Dict[str, Tuple[str, ...]] = {
    "location": (
        "getLocation",
        "addProximityAlert",
        "getProperty",
        "setProperty",
    ),
    "http": ("get", "post"),
    "sms": ("sendTextMessage",),
    "logic": ("reportLocation",),
    "server": ("activityLog", "reportCount"),
    "probe": ("createProxy",),
}

#: Assert operators.
ASSERT_OPS = ("equals", "contains")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class CallStep:
    """One uniform invocation (or probe) against the live world."""

    step_id: str
    target: str
    op: str
    args: Mapping[str, Any] = field(default_factory=dict)
    #: Divergence-table key; defaults to ``step_id`` during diffing.
    probe: Optional[str] = None
    #: Capture the normalized span shape of this call.
    capture_shape: bool = False

    kind = "call"

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", dict(self.args))
        _require(
            self.target in CALL_TARGETS,
            f"unknown call target {self.target!r}; known: {sorted(CALL_TARGETS)}",
        )
        _require(
            self.op in CALL_TARGETS[self.target],
            f"target {self.target!r} has no operation {self.op!r}; "
            f"known: {CALL_TARGETS[self.target]}",
        )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": self.kind,
            "step_id": self.step_id,
            "target": self.target,
            "op": self.op,
        }
        if self.args:
            out["args"] = dict(self.args)
        if self.probe is not None:
            out["probe"] = self.probe
        if self.capture_shape:
            out["capture_shape"] = True
        return out


@dataclass(frozen=True)
class AdvanceStep:
    """Run the world's virtual clock forward by ``delta_ms``."""

    step_id: str
    delta_ms: float

    kind = "advance"

    def __post_init__(self) -> None:
        _require(self.delta_ms > 0, "advance delta_ms must be positive")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "step_id": self.step_id,
            "delta_ms": self.delta_ms,
        }


@dataclass(frozen=True)
class CallbacksStep:
    """Capture the app's activity events fired since the last capture."""

    step_id: str
    probe: Optional[str] = None

    kind = "callbacks"

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind, "step_id": self.step_id}
        if self.probe is not None:
            out["probe"] = self.probe
        return out


@dataclass(frozen=True)
class BurstStep:
    """N concurrent requests through the runtime's dispatcher, drained.

    The recorded outcome is the ordered per-request result list —
    ``"ok"`` or the uniform error code — which makes admission
    decisions (throttle waves, sheds) part of the scenario contract.
    """

    step_id: str
    op: str = "get"
    count: int = 8
    tenant: str = "scenario"
    coalesce: bool = False
    probe: Optional[str] = None

    kind = "burst"

    def __post_init__(self) -> None:
        _require(self.op in ("get", "getLocation"), f"unknown burst op {self.op!r}")
        _require(self.count >= 1, "burst count must be >= 1")

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": self.kind,
            "step_id": self.step_id,
            "op": self.op,
            "count": self.count,
            "tenant": self.tenant,
            "coalesce": self.coalesce,
        }
        if self.probe is not None:
            out["probe"] = self.probe
        return out


@dataclass(frozen=True)
class SagaFlowStep:
    """The canonical multi-step report saga on the distributed tier.

    ``locate`` reads a fix, ``reserve`` writes a reservation row to the
    replicated ``reservations`` table (compensated by deletion),
    ``post`` reports to the server.  A fault window covering ``post``
    turns the recorded status into ``compensated``.
    """

    step_id: str
    saga: str = "report"
    probe: Optional[str] = None

    kind = "saga"

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": self.kind,
            "step_id": self.step_id,
            "saga": self.saga,
        }
        if self.probe is not None:
            out["probe"] = self.probe
        return out


@dataclass(frozen=True)
class AssertStep:
    """A declarative expectation over an earlier step's outcome."""

    step_id: str
    step_ref: str
    path: str
    op: str = "equals"
    value: Any = None

    kind = "assert"

    def __post_init__(self) -> None:
        _require(self.op in ASSERT_OPS, f"unknown assert op {self.op!r}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "step_id": self.step_id,
            "step_ref": self.step_ref,
            "path": self.path,
            "op": self.op,
            "value": self.value,
        }


STEP_KINDS = {
    "call": CallStep,
    "advance": AdvanceStep,
    "callbacks": CallbacksStep,
    "burst": BurstStep,
    "saga": SagaFlowStep,
    "assert": AssertStep,
}


def step_from_dict(payload: Mapping[str, Any]):
    """Rebuild one step from its serialized form."""
    data = dict(payload)
    kind = data.pop("kind", None)
    cls = STEP_KINDS.get(kind)
    _require(cls is not None, f"unknown step kind {kind!r}")
    return cls(**data)


@dataclass(frozen=True)
class RuntimeSpec:
    """Optional concurrency-plane description for a scenario.

    ``admission`` (when given) carries token-bucket knobs —
    ``rate_per_s`` / ``capacity`` / ``initial`` / ``overflow_capacity``
    — the driver turns into an :class:`~repro.runtime.AdmissionConfig`
    (autoscaling stays off: scenario admission outcomes are part of the
    recorded contract and must not depend on control-loop history).
    ``distrib`` carries :class:`~repro.distrib.config.DistribConfig`
    keyword arguments mounting the distributed tier.
    """

    shards: int = 2
    queue_depth: int = 8
    admission: Optional[Mapping[str, Any]] = None
    distrib: Optional[Mapping[str, Any]] = None

    def __post_init__(self) -> None:
        _require(self.shards >= 1, "runtime shards must be >= 1")
        _require(self.queue_depth >= 1, "runtime queue_depth must be >= 1")
        if self.admission is not None:
            object.__setattr__(self, "admission", dict(self.admission))
        if self.distrib is not None:
            distrib = dict(self.distrib)
            if "regions" in distrib:
                distrib["regions"] = tuple(distrib["regions"])
            object.__setattr__(self, "distrib", distrib)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "shards": self.shards,
            "queue_depth": self.queue_depth,
        }
        if self.admission is not None:
            out["admission"] = dict(self.admission)
        if self.distrib is not None:
            distrib = dict(self.distrib)
            if "regions" in distrib:
                distrib["regions"] = list(distrib["regions"])
            out["distrib"] = distrib
        return out


@dataclass(frozen=True)
class ScenarioEnv:
    """The world a scenario runs in: faults, resilience, runtime."""

    #: Fault-plan rules as plain mappings of :class:`FaultRule` fields.
    fault_rules: Tuple[Mapping[str, Any], ...] = ()
    resilience: str = "default"
    runtime: Optional[RuntimeSpec] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "fault_rules", tuple(dict(rule) for rule in self.fault_rules)
        )
        _require(
            self.resilience in RESILIENCE_PROFILES,
            f"resilience must be one of {RESILIENCE_PROFILES}, "
            f"got {self.resilience!r}",
        )
        # Validate rules eagerly: a typo must fail at declaration time,
        # not mid-record.
        for rule in self.fault_rules:
            FaultRule(**rule)

    def fault_plan(self, seed: int) -> Optional[FaultPlan]:
        if not self.fault_rules:
            return None
        return FaultPlan(
            seed=seed, rules=tuple(FaultRule(**rule) for rule in self.fault_rules)
        )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"resilience": self.resilience}
        if self.fault_rules:
            out["fault_rules"] = [dict(rule) for rule in self.fault_rules]
        if self.runtime is not None:
            out["runtime"] = self.runtime.to_dict()
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioEnv":
        runtime = payload.get("runtime")
        return cls(
            fault_rules=tuple(payload.get("fault_rules", ())),
            resilience=payload.get("resilience", "default"),
            runtime=RuntimeSpec(**runtime) if runtime is not None else None,
        )


@dataclass(frozen=True)
class Scenario:
    """One declarative app flow: seed + environment + ordered steps."""

    name: str
    steps: Tuple[Any, ...]
    seed: int = 0
    #: Default platform ``record``/``replay`` target when none is given.
    platform: str = "android"
    description: str = ""
    env: ScenarioEnv = field(default_factory=ScenarioEnv)

    def __post_init__(self) -> None:
        object.__setattr__(self, "steps", tuple(self.steps))
        _require(bool(self.name), "scenario name must be non-empty")
        _require(bool(self.steps), "scenario needs at least one step")
        seen = set()
        for step in self.steps:
            _require(
                step.step_id not in seen,
                f"duplicate step_id {step.step_id!r} in scenario {self.name!r}",
            )
            seen.add(step.step_id)
        for step in self.steps:
            if step.kind == "assert":
                _require(
                    step.step_ref in seen,
                    f"assert step {step.step_id!r} references unknown "
                    f"step {step.step_ref!r}",
                )
        needs_runtime = any(step.kind in ("burst", "saga") for step in self.steps)
        if needs_runtime:
            _require(
                self.env.runtime is not None,
                f"scenario {self.name!r} uses burst/saga steps but "
                "declares no runtime spec",
            )
        if any(step.kind == "saga" for step in self.steps):
            _require(
                self.env.runtime.distrib is not None,
                f"scenario {self.name!r} uses saga steps but its runtime "
                "spec mounts no distributed tier",
            )

    def step(self, step_id: str):
        for candidate in self.steps:
            if candidate.step_id == step_id:
                return candidate
        raise KeyError(step_id)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCENARIO_SCHEMA,
            "name": self.name,
            "seed": self.seed,
            "platform": self.platform,
            "description": self.description,
            "env": self.env.to_dict(),
            "steps": [step.to_dict() for step in self.steps],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Scenario":
        schema = payload.get("schema", SCENARIO_SCHEMA)
        _require(
            schema == SCENARIO_SCHEMA,
            f"unsupported scenario schema {schema!r}",
        )
        return cls(
            name=payload["name"],
            seed=payload.get("seed", 0),
            platform=payload.get("platform", "android"),
            description=payload.get("description", ""),
            env=ScenarioEnv.from_dict(payload.get("env", {})),
            steps=tuple(step_from_dict(step) for step in payload["steps"]),
        )

    def with_platform(self, platform: str) -> "Scenario":
        """The same scenario retargeted at another platform."""
        if platform == self.platform:
            return self
        return Scenario(
            name=self.name,
            steps=self.steps,
            seed=self.seed,
            platform=platform,
            description=self.description,
            env=self.env,
        )
