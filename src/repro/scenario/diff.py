"""Structured diffs between two scenario recordings.

:func:`diff_recordings` aligns two recordings of the same scenario step
by step and compares every outcome field — results, uniform error
codes, normalized span shapes, callback event sequences, admission
ladders, saga statuses.  Each divergence is looked up in the declared
divergence table (:mod:`~repro.scenario.divergence`): a declared one is
reported with its reason and does not fail the diff; an **undeclared**
one does.

The report is deterministic and byte-stable (:meth:`ScenarioDiff.to_json`),
so CI can commit/upload ``SCENARIO_DIFF_*.json`` artifacts and gate on
``python -m repro.obs scenario diff --gate``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.scenario.divergence import (
    DECLARED_DIVERGENCES,
    DeclaredDivergence,
    is_declared,
)
from repro.scenario.recording import ScenarioRecording, round_floats

#: Schema tag for serialized diff documents.
DIFF_SCHEMA = "repro.scenario-diff/v1"

#: Bookkeeping keys never compared as behaviour.
_META_KEYS = ("step", "kind", "probe")


@dataclass(frozen=True)
class StepDivergence:
    """One per-step, per-field behaviour gap between two recordings."""

    step_id: str
    probe: str
    field: str
    base: Any
    other: Any
    declared: bool
    reason: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "step_id": self.step_id,
            "probe": self.probe,
            "field": self.field,
            "base": self.base,
            "other": self.other,
            "declared": self.declared,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class ScenarioDiff:
    """Every divergence between a base recording and another run."""

    scenario: str
    base_platform: str
    other_platform: str
    steps_compared: int
    divergences: Tuple[StepDivergence, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "divergences", tuple(self.divergences))

    @property
    def undeclared(self) -> Tuple[StepDivergence, ...]:
        return tuple(d for d in self.divergences if not d.declared)

    @property
    def declared(self) -> Tuple[StepDivergence, ...]:
        return tuple(d for d in self.divergences if d.declared)

    @property
    def passed(self) -> bool:
        """Zero undeclared divergences (declared ones are sanctioned)."""
        return not self.undeclared

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": DIFF_SCHEMA,
            "scenario": self.scenario,
            "base_platform": self.base_platform,
            "other_platform": self.other_platform,
            "steps_compared": self.steps_compared,
            "passed": self.passed,
            "declared": [d.to_dict() for d in self.declared],
            "undeclared": [d.to_dict() for d in self.undeclared],
        }

    def to_json(self) -> str:
        return (
            json.dumps(round_floats(self.to_dict()), sort_keys=True, indent=2)
            + "\n"
        )

    def render_text(self) -> str:
        lines = [
            f"scenario {self.scenario}: {self.base_platform} vs "
            f"{self.other_platform} — {self.steps_compared} steps, "
            f"{len(self.declared)} declared / "
            f"{len(self.undeclared)} undeclared divergences "
            f"[{'PASS' if self.passed else 'FAIL'}]"
        ]
        for divergence in self.divergences:
            marker = "declared" if divergence.declared else "UNDECLARED"
            lines.append(
                f"  {divergence.step_id} ({divergence.probe}) "
                f"{divergence.field}: {divergence.base!r} -> "
                f"{divergence.other!r} [{marker}]"
            )
            if divergence.reason:
                lines.append(f"    reason: {divergence.reason}")
        return "\n".join(lines)


def _compare_step(
    step_id: str,
    probe: str,
    base_outcome: Dict[str, Any],
    other_outcome: Dict[str, Any],
    base_platform: str,
    other_platform: str,
    registry: Sequence[DeclaredDivergence],
) -> List[StepDivergence]:
    found: List[StepDivergence] = []
    fields = sorted(
        (set(base_outcome) | set(other_outcome)) - set(_META_KEYS)
    )
    for field_name in fields:
        base_value = base_outcome.get(field_name)
        other_value = other_outcome.get(field_name)
        if base_value == other_value:
            continue
        declaration = is_declared(
            probe,
            field_name,
            base_platform,
            base_value,
            other_platform,
            other_value,
            registry,
        )
        found.append(
            StepDivergence(
                step_id=step_id,
                probe=probe,
                field=field_name,
                base=base_value,
                other=other_value,
                declared=declaration is not None,
                reason=declaration.reason if declaration is not None else "",
            )
        )
    return found


def diff_recordings(
    base: ScenarioRecording,
    other: ScenarioRecording,
    registry: Sequence[DeclaredDivergence] = DECLARED_DIVERGENCES,
) -> ScenarioDiff:
    """Per-step structured diff of two runs of the same scenario."""
    if base.scenario.name != other.scenario.name:
        raise ConfigurationError(
            f"cannot diff recordings of different scenarios: "
            f"{base.scenario.name!r} vs {other.scenario.name!r}"
        )
    divergences: List[StepDivergence] = []
    other_by_id = {outcome["step"]: outcome for outcome in other.outcomes}
    compared = 0
    for base_outcome in base.outcomes:
        step_id = base_outcome["step"]
        probe = base_outcome.get("probe", step_id)
        other_outcome = other_by_id.pop(step_id, None)
        if other_outcome is None:
            divergences.append(
                StepDivergence(
                    step_id=step_id,
                    probe=probe,
                    field="presence",
                    base="present",
                    other="missing",
                    declared=False,
                )
            )
            continue
        compared += 1
        divergences.extend(
            _compare_step(
                step_id,
                probe,
                base_outcome,
                other_outcome,
                base.platform,
                other.platform,
                registry,
            )
        )
    for step_id, other_outcome in other_by_id.items():
        divergences.append(
            StepDivergence(
                step_id=step_id,
                probe=other_outcome.get("probe", step_id),
                field="presence",
                base="missing",
                other="present",
                declared=False,
            )
        )
    return ScenarioDiff(
        scenario=base.scenario.name,
        base_platform=base.platform,
        other_platform=other.platform,
        steps_compared=compared,
        divergences=tuple(divergences),
    )
