"""Idempotency-key store: exactly-once substrate writes under retries.

The resilience plane retries transient failures by re-invoking the
binding thunk.  When the substrate applied the side effect but the
acknowledgement was lost (the ``ack_lost`` fault kind), a bare retry
would duplicate the write.  The store closes the gap: the substrate
write site wraps its *apply* step in :meth:`IdempotencyStore.execute`
keyed by the attempt chain (see :mod:`repro.util.idempotency`); a
replayed key skips the apply and returns the recorded result instead,
surfacing the suppression as ``distrib.dedup_hits`` metrics and a
``distrib.dedup`` event on the in-flight resilience span.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Optional

from repro.util.idempotency import ChainContext, chain_context, current_chain

__all__ = [
    "ChainContext",
    "chain_context",
    "current_chain",
    "IdempotencyStore",
]


class IdempotencyStore:
    """Remembers which keys have been applied and what they returned.

    Single-node on purpose — it guards one substrate component
    (one ``SmsCenter``, one ``SimulatedNetwork``), which is where the
    duplicate would happen.  ``capacity`` bounds memory with FIFO
    eviction; ``None`` keeps every key for the run.
    """

    def __init__(
        self,
        metrics=None,
        *,
        capacity: Optional[int] = None,
        label: str = "default",
        region: Optional[str] = None,
    ) -> None:
        self._metrics = metrics
        self._capacity = capacity
        self.label = label
        #: Home region of the guarded component (distrib wiring); adds
        #: a ``region`` attribute to every ``distrib.dedup`` event so
        #: suppressions join the cross-region causal graph.
        self.region = region
        self._results: "OrderedDict[str, Any]" = OrderedDict()

    def bind_metrics(self, metrics) -> None:
        """Late-bind a metrics registry (device wiring convenience)."""
        self._metrics = metrics

    def _count(self, metric: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(metric, store=self.label).inc()

    def seen(self, key: str) -> bool:
        return key in self._results

    def result_of(self, key: str) -> Any:
        return self._results.get(key)

    def record(self, key: str, result: Any = None) -> None:
        """Mark ``key`` applied with ``result`` as its replay value."""
        self._results[key] = result
        if self._capacity is not None:
            while len(self._results) > self._capacity:
                self._results.popitem(last=False)
                self._count("distrib.dedup_evicted")

    def execute(
        self, key: str, thunk: Callable[[], Any], **event_attrs: Any
    ) -> Any:
        """Run ``thunk`` exactly once per ``key``.

        A first call applies the thunk and records its return value; a
        replay skips the thunk and returns the recorded value, counting
        a ``distrib.dedup_hits`` and emitting a ``distrib.dedup`` event
        on the open attempt chain's tracer (inside the in-flight
        resilience span, so trace analysis can attribute the
        suppression to its retry).
        """
        if key in self._results:
            self._count("distrib.dedup_hits")
            chain = current_chain()
            if chain is not None and chain.tracer is not None and (
                chain.tracer.enabled
            ):
                # The raw key embeds a process-global chain ordinal, so it
                # stays out of the event — exports must be byte-identical
                # across same-seed runs within one process too.  The
                # chain *tag* (per-runtime ordinal) is reproducible and
                # makes the suppression joinable in the causal graph.
                extra: Dict[str, Any] = {}
                if chain.tag:
                    extra["chain"] = chain.tag
                if self.region is not None:
                    extra["region"] = self.region
                chain.tracer.event(
                    "distrib.dedup", store=self.label, **extra, **event_attrs
                )
            return self._results[key]
        self._count("distrib.dedup_misses")
        result = thunk()
        self.record(key, result)
        return result

    def __len__(self) -> int:
        return len(self._results)

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic view of recorded keys (insertion order)."""
        return dict(self._results)
