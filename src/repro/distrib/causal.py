"""Cross-region causal context: vector clocks, visibility, audits.

The distributed tier's hops — replication applies, gossip merges,
invalidation fan-out, write-behind flushes, saga steps, dedup hits —
were individually observable after PR 7, but nothing *linked* them: a
write in one region and its visibility in another were two unrelated
spans.  This module adds the causal plumbing:

* :class:`CausalTracker` keeps one vector clock per region, ticked on
  every local causal event and merged (then ticked) when a remote
  message lands.  Every table write is remembered as a
  :class:`CausalStamp` — its vector clock, origin span reference and
  per-region first-visibility times — so each downstream hop can stamp
  ``causal.origin`` / ``causal.vc`` span attributes and the tracker can
  set the per-``(table, region)`` ``distrib.lag_ms`` gauge the
  time-series sampler tracks.
* :class:`CausalMonitor` is the happens-before audit: it flags a read
  served from an L1 slot that predates a *delivered* invalidation, and
  an LWW merge where the overwritten value's vector clock strictly
  dominates the winner's (causality inverted by the version order).
  Each violation increments ``distrib.causal_violations``, lands as a
  ``causal.violation`` span event, and triggers a FlightRecorder
  incident dump.

Healthy seeded runs are audit-clean by construction: table versions are
minted from a per-table monotone counter, so a later write's vector
clock can never be dominated by an earlier one's, and invalidation
delivery pops the L1 slot it targets.  The checks exist for the same
reason assertions do — injected faults, future refactors and forged
states (the regression suite) must be *caught*, not silently absorbed.

Determinism: the tracker and monitor hold plain dicts keyed by region
and version tuples, mutated only from virtual-clock callbacks — their
state (and the export in ``DistribRuntime.export_state``) is a pure
function of the seeded scenario.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability

__all__ = [
    "CausalMonitor",
    "CausalStamp",
    "CausalTracker",
    "decode_vc",
    "encode_vc",
    "vc_dominates",
]

#: A vector clock: region → event count (zero entries are implicit).
VectorClock = Dict[str, int]


def encode_vc(vc: VectorClock) -> str:
    """Compact span-attribute form: ``"region:count,..."`` sorted by
    region, zero components elided (``""`` for the empty clock)."""
    return ",".join(
        f"{region}:{count}" for region, count in sorted(vc.items()) if count
    )


def decode_vc(text: str) -> VectorClock:
    """Inverse of :func:`encode_vc` (used by the trace analyzer)."""
    vc: VectorClock = {}
    for part in text.split(","):
        if not part:
            continue
        region, _, count = part.rpartition(":")
        vc[region] = int(count)
    return vc


def _normalize(vc: VectorClock) -> VectorClock:
    return {region: count for region, count in vc.items() if count}


def vc_dominates(a: VectorClock, b: VectorClock) -> bool:
    """Strict domination: ``a`` ≥ ``b`` component-wise and ``a`` ≠ ``b``
    — the happens-before relation on vector clocks."""
    a, b = _normalize(a), _normalize(b)
    if a == b:
        return False
    return all(a.get(region, 0) >= count for region, count in b.items())


class CausalStamp:
    """One write's causal identity: its vector clock at the origin, the
    ``write:<table>`` span it was minted under, and the virtual time
    each region first saw it (origin included, at lag zero)."""

    __slots__ = ("table", "key", "version", "region", "vc", "t_ms",
                 "span_ref", "visible")

    def __init__(
        self,
        table: str,
        key: str,
        version: Tuple[int, str],
        region: str,
        vc: VectorClock,
        t_ms: float,
        span_ref: Optional[str] = None,
    ) -> None:
        self.table = table
        self.key = key
        self.version = version
        self.region = region
        self.vc = dict(vc)
        self.t_ms = t_ms
        #: ``"<trace_id>:<span_id>"`` of the origin write span, the
        #: ``causal.origin`` attribute downstream hops carry.
        self.span_ref = span_ref
        #: region → virtual time the write first became visible there.
        self.visible: Dict[str, float] = {region: t_ms}

    @property
    def version_label(self) -> str:
        """The ``"<counter>@<region>"`` form span attributes use."""
        return f"{self.version[0]}@{self.version[1]}"


class CausalTracker:
    """Per-region vector clocks plus per-write visibility bookkeeping.

    One tracker serves a whole :class:`~repro.distrib.runtime.DistribRuntime`
    — every table and cache shares it, so the clocks order events across
    components, not just within one table.
    """

    def __init__(
        self, regions: Sequence[str], *, metrics=None
    ) -> None:
        self.regions = tuple(regions)
        self._metrics = metrics
        self._clocks: Dict[str, VectorClock] = {
            region: {} for region in self.regions
        }
        self._writes: Dict[Tuple[str, str, Tuple[int, str]], CausalStamp] = {}

    def bind_metrics(self, metrics) -> None:
        self._metrics = metrics

    # -- clocks ---------------------------------------------------------------

    def clock(self, region: str) -> VectorClock:
        """A copy of the region's current vector clock."""
        return dict(self._clocks[region])

    def clocks(self) -> Dict[str, VectorClock]:
        """All regions' clocks (copies, deterministic iteration)."""
        return {region: dict(self._clocks[region]) for region in self.regions}

    def tick(self, region: str) -> VectorClock:
        """One local causal event at ``region``; returns the new clock."""
        clock = self._clocks[region]
        clock[region] = clock.get(region, 0) + 1
        return dict(clock)

    def observe(self, region: str, vc: VectorClock) -> VectorClock:
        """A remote message carrying ``vc`` landed at ``region``:
        component-wise max merge, then a local tick (the delivery is
        itself an event)."""
        clock = self._clocks[region]
        for other, count in vc.items():
            if count > clock.get(other, 0):
                clock[other] = count
        return self.tick(region)

    # -- write bookkeeping ----------------------------------------------------

    def note_write(
        self,
        table: str,
        key: str,
        version: Tuple[int, str],
        region: str,
        t_ms: float,
        *,
        span_ref: Optional[str] = None,
        vc: Optional[VectorClock] = None,
    ) -> CausalStamp:
        """Record a table write at its origin; ticks the origin clock.

        ``vc`` overrides the minted clock — the regression suite forges
        stamps with it to prove the monitor catches inversions.
        """
        stamp_vc = dict(vc) if vc is not None else self.tick(region)
        stamp = CausalStamp(
            table, key, tuple(version), region, stamp_vc, t_ms, span_ref
        )
        self._writes[(table, key, stamp.version)] = stamp
        return stamp

    def lookup(
        self, table: str, key: str, version: Tuple[int, str]
    ) -> Optional[CausalStamp]:
        return self._writes.get((table, key, tuple(version)))

    def note_visible(
        self,
        table: str,
        key: str,
        version: Tuple[int, str],
        region: str,
        t_ms: float,
    ) -> Optional[float]:
        """The write became visible at ``region`` (replication apply or
        gossip merge): merge its clock into the region's, record the
        *first* visibility time, and set the ``distrib.lag_ms`` gauge.
        Returns the lag for a first sighting, ``None`` otherwise."""
        stamp = self.lookup(table, key, version)
        if stamp is None:
            return None
        self.observe(region, stamp.vc)
        if region in stamp.visible:
            return None
        stamp.visible[region] = t_ms
        lag_ms = t_ms - stamp.t_ms
        if self._metrics is not None:
            self._metrics.gauge(
                "distrib.lag_ms", table=table, region=region
            ).set(lag_ms)
        return lag_ms

    def stamps(self) -> List[CausalStamp]:
        """Every recorded write stamp, in write order."""
        return list(self._writes.values())


class CausalMonitor:
    """The happens-before audit: flags causality violations.

    Two detectors:

    * **stale read after delivered invalidation** — a tiered-cache L1
      hit whose slot was cached *before* an invalidation for that key
      was delivered to the same region.  Delivery pops the slot, so
      this firing means the popped state was resurrected (a bug, or a
      forged test fixture).  Each delivered invalidation flags at most
      once per (cache, key, region).
    * **LWW causality inversion** — an LWW merge whose winner's vector
      clock is strictly dominated by the value it overwrote: the
      version order (the tiebreak the table actually applies) inverted
      happens-before.

    Each violation is recorded on :attr:`violations`, counted as
    ``distrib.causal_violations`` (labels ``kind`` / ``region``),
    emitted as a ``causal.violation`` span event (under the in-flight
    span, or a dedicated zero-duration ``causal.audit`` span outside
    one) and handed to the FlightRecorder as an incident dump.
    """

    def __init__(self, *, observability: Optional["Observability"] = None) -> None:
        self._observability = observability
        #: Violation records, in detection order.
        self.violations: List[Dict[str, Any]] = []
        #: (cache, key, region) → (delivered-at ms, origin region).
        self._delivered: Dict[Tuple[str, str, str], Tuple[float, str]] = {}
        self._flagged: set = set()

    @property
    def clean(self) -> bool:
        """Whether the run has been violation-free so far."""
        return not self.violations

    # -- invalidation bookkeeping --------------------------------------------

    def invalidation_delivered(
        self, cache: str, key: str, region: str, origin: str, t_ms: float
    ) -> None:
        """An invalidation for (cache, key) landed at ``region``."""
        self._delivered[(cache, key, region)] = (t_ms, origin)

    # -- detectors ------------------------------------------------------------

    def check_cache_read(
        self,
        cache: str,
        key: str,
        region: str,
        cached_at_ms: float,
        t_ms: float,
    ) -> Optional[Dict[str, Any]]:
        """Audit an L1 hit: the slot must postdate every delivered
        invalidation for its key."""
        delivered = self._delivered.get((cache, key, region))
        if delivered is None:
            return None
        delivered_ms, origin = delivered
        if not (cached_at_ms < delivered_ms <= t_ms):
            return None
        fingerprint = ("stale_read", cache, key, region, delivered_ms)
        if fingerprint in self._flagged:
            return None
        self._flagged.add(fingerprint)
        return self._flag(
            "stale_read_after_invalidation",
            t_ms,
            cache=cache,
            key=key,
            region=region,
            origin=origin,
            cached_at_ms=cached_at_ms,
            invalidated_at_ms=delivered_ms,
        )

    def check_lww(
        self,
        table: str,
        key: str,
        region: str,
        incoming: Optional[CausalStamp],
        prior: Optional[CausalStamp],
        t_ms: float,
    ) -> Optional[Dict[str, Any]]:
        """Audit an applied LWW merge: the overwritten value's clock
        must not strictly dominate the winner's."""
        if incoming is None or prior is None:
            return None
        if not vc_dominates(prior.vc, incoming.vc):
            return None
        fingerprint = ("lww", table, key, region, incoming.version)
        if fingerprint in self._flagged:
            return None
        self._flagged.add(fingerprint)
        return self._flag(
            "lww_causality_inversion",
            t_ms,
            table=table,
            key=key,
            region=region,
            winner=incoming.version_label,
            overwritten=prior.version_label,
            winner_vc=encode_vc(incoming.vc),
            overwritten_vc=encode_vc(prior.vc),
        )

    # -- emission -------------------------------------------------------------

    def _flag(self, kind: str, t_ms: float, **attributes: Any) -> Dict[str, Any]:
        record: Dict[str, Any] = {"kind": kind, "t_ms": t_ms}
        record.update(attributes)
        self.violations.append(record)
        hub = self._observability
        if hub is not None:
            hub.metrics.counter(
                "distrib.causal_violations",
                kind=kind,
                region=str(attributes.get("region", "unknown")),
            ).inc()
            tracer = hub.tracer
            if tracer.enabled:
                if tracer.current_span is not None:
                    tracer.event("causal.violation", kind=kind, **attributes)
                else:
                    # Events outside any span are dropped; anchor the
                    # violation under a zero-duration audit span so it
                    # always reaches the export.
                    with tracer.span("causal.audit", kind=kind):
                        tracer.event(
                            "causal.violation", kind=kind, **attributes
                        )
            if hub.flight is not None:
                hub.flight.trigger("causal.violation", kind=kind, **attributes)
        return record

    def export_state(self) -> List[Dict[str, Any]]:
        """Violations in a canonical (sorted-key) form for exports."""
        return [
            {key: record[key] for key in sorted(record)}
            for record in self.violations
        ]
