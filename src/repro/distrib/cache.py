"""Tiered caches: region-local L1 over a replicated backing store.

:class:`TieredCache` promotes the runtime's single-node caches to a
two-tier design.  Each region keeps an L1 slot map (value, cached-at
stamp, backing version); misses read through to the backing
:class:`~repro.distrib.replication.ReplicatedTable`, writes buffer in a
write-behind queue flushed after ``write_behind_delay_ms``, and every
write fans an invalidation out to the *other* regions' L1s after the
inter-region delay — dropped when a partition cuts the pair, which is
exactly when ``distrib.cache_stale_reads`` starts counting: a read
served from an L1 slot whose version is older than what the backing
store already knows is a *stale* hit, and the counter quantifies the
staleness the tier trades for latency.

Two adapters keep the runtime API unchanged:
:class:`TieredLocationFixCache` mirrors ``LocationFixCache`` (get/put/
invalidate/hits/misses), :class:`TieredPropertyReadCache` subclasses
``PropertyReadCache`` so proxy attachment and setProperty invalidation
keep working, with writes mirrored into the tier and invalidations
fanned out cross-region.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.runtime.coalesce import PropertyReadCache
from repro.util.clock import Scheduler

from repro.distrib.causal import CausalMonitor, CausalTracker, encode_vc
from repro.distrib.config import DistribConfig
from repro.distrib.replication import PartitionMap, ReplicatedTable


class _L1Slot:
    __slots__ = ("value", "cached_at_ms", "version")

    def __init__(self, value: Any, cached_at_ms: float, version) -> None:
        self.value = value
        self.cached_at_ms = cached_at_ms
        self.version = version


class TieredCache:
    """Read-through / write-behind cache over a replicated table.

    ``loader`` (optional) supplies the value on a full miss — the
    read-through source of truth (e.g. the GPS receiver); without one a
    miss returns ``None`` and the caller populates via :meth:`put`.
    """

    def __init__(
        self,
        name: str,
        config: DistribConfig,
        scheduler: Scheduler,
        backing: ReplicatedTable,
        partitions: PartitionMap,
        *,
        loader: Optional[Callable[[str], Any]] = None,
        observability=None,
        causal: Optional[CausalTracker] = None,
        monitor: Optional[CausalMonitor] = None,
    ) -> None:
        self.name = name
        self.config = config
        self._scheduler = scheduler
        self.backing = backing
        self._partitions = partitions
        self._loader = loader
        self._observability = observability
        self._metrics = observability.metrics if observability else None
        self.causal = causal
        self.monitor = monitor
        self._l1: Dict[str, Dict[str, _L1Slot]] = {
            region: {} for region in config.regions
        }
        self._pending: Dict[Tuple[str, str], Any] = {}

    def _count(self, metric: str, **labels: Any) -> None:
        if self._metrics is not None:
            self._metrics.counter(metric, cache=self.name, **labels).inc()

    @property
    def _tracer(self):
        tracer = (
            self._observability.tracer if self._observability else None
        )
        return tracer if tracer is not None and tracer.enabled else None

    # -- reads ----------------------------------------------------------------

    def get(self, key: str, *, region: Optional[str] = None) -> Any:
        """The freshest value the region can see without blocking.

        Order: fresh L1 slot (stale-hit accounting against the backing
        version) → backing replica → read-through loader → ``None``.
        """
        target = region if region is not None else self.config.home_region
        now = self._scheduler.clock.now_ms
        slot = self._l1[target].get(key)
        if slot is not None and now - slot.cached_at_ms <= (
            self.config.cache_staleness_ms
        ):
            backing_version = self.backing.version_of(key, region=target)
            if backing_version is not None and (
                slot.version is None or slot.version < backing_version
            ):
                self._count("distrib.cache_stale_reads", region=target)
            if self.monitor is not None:
                self.monitor.check_cache_read(
                    self.name, key, target, slot.cached_at_ms, now
                )
            self._count("distrib.cache_hits", region=target)
            return slot.value
        self._count("distrib.cache_misses", region=target)
        value = self.backing.get(key, region=target)
        if value is not None:
            version = self.backing.version_of(key, region=target)
            self._l1[target][key] = _L1Slot(value, now, version)
            return value
        if self._loader is not None:
            value = self._loader(key)
            if value is not None:
                self.put(key, value, region=target)
            return value
        return None

    # -- writes ---------------------------------------------------------------

    def put(self, key: str, value: Any, *, region: Optional[str] = None) -> None:
        """Write into the region's L1 now; the backing write happens
        ``write_behind_delay_ms`` later (coalescing rapid re-writes),
        and the other regions' L1 slots are invalidated after the
        inter-region delay."""
        target = region if region is not None else self.config.home_region
        now = self._scheduler.clock.now_ms
        if self.causal is not None:
            self.causal.tick(target)
        self._l1[target][key] = _L1Slot(value, now, None)
        pending_key = (target, key)
        first_buffer = pending_key not in self._pending
        self._pending[pending_key] = value
        if first_buffer:
            self._scheduler.call_later(
                self.config.write_behind_delay_ms,
                lambda: self._flush(target, key),
                name=f"distrib:{self.name}:write-behind",
            )
        self._fan_out_invalidation(key, origin=target)

    def _flush(self, region: str, key: str) -> None:
        value = self._pending.pop((region, key), None)
        if value is None:
            return
        self._count("distrib.cache_flushes", region=region)
        tracer = self._tracer
        if tracer is not None:
            # The backing write's `write:<table>` span (with its causal
            # stamp) nests under the flush span.
            with tracer.span(
                f"flush:{self.name}", cache=self.name, key=key, region=region
            ):
                version = self.backing.put(key, value, region=region)
        else:
            version = self.backing.put(key, value, region=region)
        slot = self._l1[region].get(key)
        if slot is not None and slot.value == value:
            slot.version = version

    def flush_pending(self) -> int:
        """Flush every buffered write now (shutdown / test aid)."""
        flushed = 0
        for region, key in sorted(self._pending):
            self._flush(region, key)
            flushed += 1
        return flushed

    def _fan_out_invalidation(self, key: str, *, origin: str) -> None:
        # The causal context travels with the message: the origin
        # region's clock at send time, plus the span the send happened
        # under (the invalidation's ``causal.origin``).
        vc = self.causal.clock(origin) if self.causal is not None else None
        tracer = self._tracer
        current = tracer.current_span if tracer is not None else None
        origin_ref = (
            f"{current.trace_id}:{current.span_id}"
            if current is not None
            else None
        )
        for peer in self.config.regions:
            if peer == origin:
                continue
            if not self._partitions.connected(origin, peer):
                self._count("distrib.cache_invalidations_dropped", region=peer)
                continue
            self._count("distrib.cache_invalidations_sent", region=peer)
            self._scheduler.call_later(
                self.config.replication_delay_ms,
                lambda peer=peer: self._apply_invalidation(
                    peer, key, origin, vc=vc, origin_ref=origin_ref
                ),
                name=f"distrib:{self.name}:invalidate:{peer}",
            )

    def _apply_invalidation(
        self,
        region: str,
        key: str,
        origin: str,
        *,
        vc=None,
        origin_ref: Optional[str] = None,
    ) -> None:
        if not self._partitions.connected(origin, region):
            self._count("distrib.cache_invalidations_dropped", region=region)
            return
        now = self._scheduler.clock.now_ms
        if self.causal is not None and vc:
            self.causal.observe(region, vc)
        applied = self._l1[region].pop(key, None) is not None
        if self.monitor is not None:
            self.monitor.invalidation_delivered(
                self.name, key, region, origin, now
            )
        if applied:
            self._count("distrib.cache_invalidations_applied", region=region)
        tracer = self._tracer
        if tracer is not None:
            attributes = {
                "cache": self.name,
                "key": key,
                "region": region,
                "origin": origin,
                "applied": applied,
            }
            if vc:
                attributes["causal.vc"] = encode_vc(vc)
            if origin_ref is not None:
                attributes["causal.origin"] = origin_ref
            with tracer.span(f"invalidate:{self.name}", **attributes):
                pass

    def invalidate(self, key: str, *, region: Optional[str] = None) -> None:
        """Drop the region's L1 slot and fan the invalidation out."""
        target = region if region is not None else self.config.home_region
        self._l1[target].pop(key, None)
        self._pending.pop((target, key), None)
        self._fan_out_invalidation(key, origin=target)

    def l1_slot(self, key: str, *, region: Optional[str] = None) -> Optional[Any]:
        """The raw L1 value (``None`` when absent) — test aid."""
        target = region if region is not None else self.config.home_region
        slot = self._l1[target].get(key)
        return slot.value if slot is not None else None


class TieredLocationFixCache:
    """``LocationFixCache``-shaped adapter over a :class:`TieredCache`.

    The runtime swaps this in per proxy when distrib is configured; the
    fix lives under ``fix:<label>`` in the tier's home region, so other
    regions converge on the latest fix through the backing table.
    """

    def __init__(
        self,
        tier: TieredCache,
        *,
        label: str = "location",
        metrics=None,
        staleness_ms: Optional[float] = None,
    ) -> None:
        self._tier = tier
        self._key = f"fix:{label}"
        self.staleness_ms = (
            staleness_ms
            if staleness_ms is not None
            else tier.config.cache_staleness_ms
        )
        if metrics is None:
            from repro.obs import MetricsRegistry

            metrics = MetricsRegistry()
        self._hits = metrics.counter("runtime.location_cache_hits", source=label)
        self._misses = metrics.counter(
            "runtime.location_cache_misses", source=label
        )

    def get(self) -> Any:
        fix = self._tier.get(self._key)
        if fix is not None:
            self._hits.inc()
            return fix
        self._misses.inc()
        return None

    def put(self, fix: Any) -> None:
        self._tier.put(self._key, fix)

    def invalidate(self) -> None:
        self._tier.invalidate(self._key)

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value


class TieredPropertyReadCache(PropertyReadCache):
    """``PropertyReadCache`` whose writes mirror into the tier and whose
    setProperty invalidations fan out cross-region.

    The memoisation itself stays per-proxy/in-process (proxy identity
    does not replicate); what the tier adds is a replicated shadow of
    the latest property values under ``prop:<n>:<key>`` and the
    cross-region invalidation path, so a remote region observing the
    shadow never reads a value the origin already invalidated — modulo
    the replication delay the staleness counters account for.
    """

    def __init__(self, tier: TieredCache, metrics=None, *, label: str = (
            "properties")) -> None:
        super().__init__(metrics, label=label)
        self._tier = tier
        self._labels: Dict[int, int] = {}

    def _shadow_key(self, proxy_id: int, key: str) -> str:
        ordinal = self._labels.setdefault(proxy_id, len(self._labels))
        return f"prop:{ordinal}:{key}"

    def get(self, proxy, key: str) -> Any:
        value = super().get(proxy, key)
        shadow = self._shadow_key(id(proxy), key)
        if self._tier.l1_slot(shadow) != value:
            self._tier.put(shadow, value)
        return value

    def _invalidate(self, proxy_id: int, key: str) -> None:
        super()._invalidate(proxy_id, key)
        self._tier.invalidate(self._shadow_key(proxy_id, key))
