"""Replicated tables: per-key versioned writes, gossip, partitions.

The tier simulates N regions as in-process :class:`ReplicaState` maps.
Every write is stamped with a totally-ordered version ``(counter,
origin-region)`` — a last-writer-wins register per key.  The origin
region applies the write immediately; each peer receives it after the
configured one-way replication delay on the shared virtual-time
scheduler.  Replication messages can be cut two ways: an active
:class:`PartitionMap` edge between the regions, or an injected
``distrib.replication``/``drop`` fault from the device's
:class:`~repro.faults.injector.FaultInjector`.  Anything cut is *not*
retried in flight — the periodic anti-entropy sweep
(:meth:`ReplicatedTable.anti_entropy_sweep`) pulls missing entries
peer-to-peer until every replica holds the same state, which is the
eventual-consistency contract the property suite checks.

Determinism: merges compare version tuples only, peers are visited in
sorted-region order, and gossip peer selection draws from a per-table
RNG stream seeded ``"distrib:{seed}:{table}"``.  Same seed, same
scenario ⇒ byte-identical :meth:`ReplicatedTable.export_state`.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import ProxyReplicaUnavailableError
from repro.util.clock import Scheduler

from repro.distrib.causal import CausalMonitor, CausalTracker, encode_vc
from repro.distrib.config import DistribConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultInjector
    from repro.obs import Observability

#: A version stamp: (table-global write counter, origin region).  Tuple
#: comparison gives a total order; the region breaks counter ties that
#: cannot happen within one table but keeps the type self-describing.
Version = Tuple[int, str]


@dataclass(frozen=True)
class VersionedEntry:
    """One replicated key/value pair with its version stamp.

    ``value`` must be JSON-serialisable; ``None`` is the tombstone (a
    deleted key still replicates so deletes win over stale writes).
    """

    key: str
    value: Any
    version: Version
    updated_at_ms: float


class ReplicaState:
    """One region's copy of a table: a key → entry map with LWW merge."""

    def __init__(self, region: str) -> None:
        self.region = region
        self._entries: Dict[str, VersionedEntry] = {}

    def get(self, key: str) -> Optional[VersionedEntry]:
        return self._entries.get(key)

    def merge(self, entry: VersionedEntry) -> bool:
        """Apply ``entry`` iff its version is newer; True when applied."""
        existing = self._entries.get(entry.key)
        if existing is not None and existing.version >= entry.version:
            return False
        self._entries[entry.key] = entry
        return True

    def entries(self) -> List[VersionedEntry]:
        return [self._entries[key] for key in sorted(self._entries)]

    def content_hash(self) -> str:
        """Deterministic digest of the replica's full state.

        Non-JSON values (a ``Location`` dataclass in the tiered caches)
        hash by ``repr`` — deterministic for the simulation's frozen
        dataclasses, which never embed object identities.
        """
        canonical = json.dumps(
            {
                key: [list(entry.version), entry.value]
                for key, entry in sorted(self._entries.items())
            },
            sort_keys=True,
            separators=(",", ":"),
            default=repr,
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def __len__(self) -> int:
        return len(self._entries)


class PartitionMap:
    """Which region pairs are currently cut from each other.

    Edges are symmetric; a partitioned pair drops replication and
    invalidation messages in both directions until healed.
    """

    def __init__(self) -> None:
        self._cut: Set[FrozenSet[str]] = set()

    def partition(self, a: str, b: str) -> None:
        if a == b:
            return
        self._cut.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        self._cut.discard(frozenset((a, b)))

    def heal_all(self) -> None:
        self._cut.clear()

    def connected(self, a: str, b: str) -> bool:
        return a == b or frozenset((a, b)) not in self._cut

    @property
    def active(self) -> bool:
        return bool(self._cut)

    def edges(self) -> List[Tuple[str, str]]:
        return sorted(tuple(sorted(pair)) for pair in self._cut)


class ReplicatedTable:
    """A named LWW table replicated across the configured regions.

    All timing rides the shared virtual-time ``scheduler``; all
    randomness (gossip peer choice) comes from a per-table stream, so
    the table is a pure function of (config, scenario, seed).
    """

    def __init__(
        self,
        name: str,
        config: DistribConfig,
        scheduler: Scheduler,
        partitions: PartitionMap,
        *,
        observability: Optional["Observability"] = None,
        injector: Optional["FaultInjector"] = None,
        causal: Optional[CausalTracker] = None,
        monitor: Optional[CausalMonitor] = None,
    ) -> None:
        self.name = name
        self.config = config
        self._scheduler = scheduler
        self._partitions = partitions
        self._observability = observability
        self._injector = injector
        self.causal = causal
        self.monitor = monitor
        self._replicas: Dict[str, ReplicaState] = {
            region: ReplicaState(region) for region in config.regions
        }
        self._counter = 0
        self._rng = random.Random(f"distrib:{config.seed}:{name}")

    # -- wiring ---------------------------------------------------------------

    def bind_injector(self, injector: Optional["FaultInjector"]) -> None:
        self._injector = injector

    @property
    def _metrics(self):
        return self._observability.metrics if self._observability else None

    @property
    def _tracer(self):
        tracer = self._observability.tracer if self._observability else None
        return tracer if tracer is not None and tracer.enabled else None

    def _count(self, metric: str, **labels: Any) -> None:
        metrics = self._metrics
        if metrics is not None:
            metrics.counter(metric, table=self.name, **labels).inc()

    # -- writes ---------------------------------------------------------------

    def put(self, key: str, value: Any, *, region: Optional[str] = None) -> Version:
        """Write ``key`` at ``region`` (home region by default).

        Raises :class:`~repro.errors.ProxyReplicaUnavailableError`
        (code 1014) when the origin cannot reach ``write_quorum``
        replicas (itself included) through the current partitions.
        """
        origin = region if region is not None else self.config.home_region
        if origin not in self._replicas:
            raise KeyError(f"unknown region {origin!r} for table {self.name!r}")
        reachable = sum(
            1
            for peer in self.config.regions
            if self._partitions.connected(origin, peer)
        )
        if reachable < self.config.write_quorum:
            self._count("distrib.quorum_failures", region=origin)
            raise ProxyReplicaUnavailableError(
                f"table {self.name!r}: write of {key!r} at {origin} reaches "
                f"{reachable}/{self.config.write_quorum} replicas",
                context={
                    "table": self.name,
                    "region": origin,
                    "key": key,
                    "quorum": self.config.write_quorum,
                    "reachable": reachable,
                },
            )
        self._counter += 1
        entry = VersionedEntry(
            key=key,
            value=value,
            version=(self._counter, origin),
            updated_at_ms=self._scheduler.clock.now_ms,
        )
        stamp = None
        if self.causal is not None:
            stamp = self.causal.note_write(
                self.name, key, entry.version, origin, entry.updated_at_ms
            )
        tracer = self._tracer
        if tracer is not None:
            attributes = {
                "table": self.name,
                "key": key,
                "region": origin,
                "version": f"{entry.version[0]}@{origin}",
            }
            if stamp is not None:
                attributes["causal.vc"] = encode_vc(stamp.vc)
            with tracer.span(f"write:{self.name}", **attributes) as span:
                pass
            if stamp is not None:
                stamp.span_ref = f"{span.trace_id}:{span.span_id}"
        self._replicas[origin].merge(entry)
        self._count("distrib.writes", region=origin)
        for peer in self.config.regions:
            if peer != origin:
                self._send(entry, origin, peer)
        return entry.version

    def delete(self, key: str, *, region: Optional[str] = None) -> Version:
        """Tombstone ``key`` (replicates like any write)."""
        return self.put(key, None, region=region)

    def _send(self, entry: VersionedEntry, origin: str, peer: str) -> None:
        if not self._partitions.connected(origin, peer):
            self._count("distrib.replication_deferred", region=peer)
            return
        if self._injector is not None and self._injector.active:
            fault = self._injector.decide("distrib.replication")
            if fault is not None and fault.kind == "drop":
                self._count("distrib.replication_dropped", region=peer)
                return
        self._scheduler.call_later(
            self.config.replication_delay_ms,
            lambda: self._apply(entry, origin, peer),
            name=f"distrib:{self.name}:replicate:{peer}",
        )

    def _apply(self, entry: VersionedEntry, origin: str, peer: str) -> None:
        # A partition raised while the message was in flight cuts it too;
        # anti-entropy repairs the gap after the heal.
        if not self._partitions.connected(origin, peer):
            self._count("distrib.replication_deferred", region=peer)
            return
        prior = self._replicas[peer].get(entry.key)
        if not self._replicas[peer].merge(entry):
            self._count("distrib.replication_stale", region=peer)
            return
        now = self._scheduler.clock.now_ms
        lag_ms = now - entry.updated_at_ms
        self._count("distrib.replication_applied", region=peer)
        metrics = self._metrics
        if metrics is not None:
            metrics.histogram(
                "distrib.replication_lag_ms", table=self.name, region=peer
            ).observe(lag_ms)
        stamp = self._audit_merge(entry, prior, peer, now)
        tracer = self._tracer
        if tracer is not None:
            attributes = {
                "table": self.name,
                "key": entry.key,
                "origin": origin,
                "region": peer,
                "lag_ms": lag_ms,
                "version": f"{entry.version[0]}@{entry.version[1]}",
            }
            if stamp is not None:
                attributes["causal.vc"] = encode_vc(stamp.vc)
                if stamp.span_ref is not None:
                    attributes["causal.origin"] = stamp.span_ref
            with tracer.span(f"replicate:{self.name}", **attributes):
                pass

    def _audit_merge(self, entry, prior, region: str, now: float):
        """Happens-before audit + visibility bookkeeping for one applied
        merge; returns the incoming write's stamp (or ``None``)."""
        causal = self.causal
        if causal is None:
            return None
        stamp = causal.lookup(self.name, entry.key, entry.version)
        if self.monitor is not None and prior is not None:
            self.monitor.check_lww(
                self.name,
                entry.key,
                region,
                incoming=stamp,
                prior=causal.lookup(self.name, entry.key, prior.version),
                t_ms=now,
            )
        causal.note_visible(self.name, entry.key, entry.version, region, now)
        return stamp

    # -- reads ----------------------------------------------------------------

    def get(self, key: str, *, region: Optional[str] = None) -> Any:
        """The value visible at ``region`` (home by default); tombstoned
        or absent keys read as ``None``."""
        target = region if region is not None else self.config.home_region
        entry = self._replicas[target].get(key)
        return entry.value if entry is not None else None

    def version_of(self, key: str, *, region: Optional[str] = None) -> Optional[Version]:
        target = region if region is not None else self.config.home_region
        entry = self._replicas[target].get(key)
        return entry.version if entry is not None else None

    def entries_in(self, region: str) -> List[VersionedEntry]:
        return self._replicas[region].entries()

    # -- anti-entropy ---------------------------------------------------------

    def anti_entropy_sweep(self) -> int:
        """One gossip round: every region pulls from ``gossip_fanout``
        seeded-sampled peers, merging whatever is newer.  Returns the
        number of entries merged; partitions block the pull.

        The ``gossip:<table>`` span opens *before* the merges so each
        applied merge can attach a ``gossip.merge`` event (with the
        origin write's causal stamp) to it; the merge count lands as a
        span attribute just before the span closes.
        """
        tracer = self._tracer
        span = (
            tracer.start_span(
                f"gossip:{self.name}",
                table=self.name,
                partitioned=self._partitions.active,
            )
            if tracer is not None
            else None
        )
        merges = 0
        merges_by_region: Dict[str, int] = {}
        regions = list(self.config.regions)
        for region in regions:
            peers = [peer for peer in regions if peer != region]
            if not peers:
                continue
            fanout = min(self.config.gossip_fanout, len(peers))
            for peer in self._rng.sample(peers, fanout):
                if not self._partitions.connected(region, peer):
                    self._count("distrib.gossip_blocked", region=region)
                    continue
                replica = self._replicas[region]
                for entry in self._replicas[peer].entries():
                    prior = replica.get(entry.key)
                    if not replica.merge(entry):
                        continue
                    merges += 1
                    merges_by_region[region] = (
                        merges_by_region.get(region, 0) + 1
                    )
                    now = self._scheduler.clock.now_ms
                    stamp = self._audit_merge(entry, prior, region, now)
                    if tracer is not None:
                        attributes = {
                            "table": self.name,
                            "key": entry.key,
                            "region": region,
                            "origin": peer,
                            "version": f"{entry.version[0]}@{entry.version[1]}",
                        }
                        if stamp is not None:
                            attributes["causal.vc"] = encode_vc(stamp.vc)
                            if stamp.span_ref is not None:
                                attributes["causal.origin"] = stamp.span_ref
                        tracer.event("gossip.merge", **attributes)
        self._count("distrib.gossip_sweeps")
        metrics = self._metrics
        if metrics is not None:
            for region in sorted(merges_by_region):
                metrics.counter(
                    "distrib.gossip_merges", table=self.name, region=region
                ).inc(merges_by_region[region])
        if span is not None:
            span.set_attribute("merges", merges)
            tracer.end_span(span)
        return merges

    # -- inspection -----------------------------------------------------------

    @property
    def converged(self) -> bool:
        """Whether every replica currently holds identical state."""
        hashes = {replica.content_hash() for replica in self._replicas.values()}
        return len(hashes) <= 1

    def content_hashes(self) -> Dict[str, str]:
        return {
            region: self._replicas[region].content_hash()
            for region in self.config.regions
        }

    def export_state(self) -> Dict[str, Any]:
        """Deterministic snapshot of every replica (sorted keys)."""
        return {
            region: {
                entry.key: {
                    "value": entry.value,
                    "version": list(entry.version),
                    "updated_at_ms": entry.updated_at_ms,
                }
                for entry in self._replicas[region].entries()
            }
            for region in self.config.regions
        }
